"""The §II adaptive-adversary attack, two ways.

1. **Model checking**: the parameterized schema checker finds the CB2
   binding violation of MMR14 and emits a parameterized, replayed
   counterexample — the paper's Table II "CE" row (ByMC needed ~10 s;
   our pure-Python pipeline is slower but finds the same violation).
   The explicit checker reproduces it exhaustively at n=4, t=f=1.
2. **Execution**: the attack scheduler starves real MMR14 processes
   forever, while Miller18/ABY22 decide under the identical adversary.
"""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.checker.parameterized import ParameterizedChecker
from repro.protocols import miller18, mmr14
from repro.sim import (
    ABY22Process,
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    Miller18Process,
    MMR14Process,
    Simulation,
    run,
)
from repro.spec.properties import PropertyLibrary

VAL = {"n": 4, "t": 1, "f": 1}


def test_cb2_explicit_counterexample(benchmark, run_once):
    model = mmr14.refined_model()

    def check():
        checker = ExplicitChecker(model, VAL)
        return checker.check_reach(PropertyLibrary(model).cb(2))

    result = run_once(benchmark, check)
    assert result.violated
    assert result.counterexample is not None


def test_cb2_parameterized_counterexample(benchmark, run_once):
    model = mmr14.refined_model()

    def check():
        checker = ParameterizedChecker(model)
        return checker.check_reach(PropertyLibrary(model).cb(2))

    result = run_once(benchmark, check)
    assert result.violated
    benchmark.extra_info["ce_parameters"] = result.counterexample.valuation
    benchmark.extra_info["nschemas"] = result.nschemas


def test_cb2_holds_for_miller18_explicit(benchmark, run_once):
    model = miller18.refined_model()

    def check():
        checker = ExplicitChecker(model, VAL, max_states=900_000)
        return checker.check_reach(PropertyLibrary(model).cb(2))

    result = run_once(benchmark, check)
    assert result.holds


def _starve(cls, expect_decision):
    sim = Simulation(cls, n=4, t=1, inputs=[0, 0, 1], coin_seed=7)
    byzantine = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, AdaptiveCoinAttack(byzantine), max_steps=15_000)
    decided = any(v is not None for v in result.decided.values())
    assert decided == expect_decision
    return result


def test_attack_starves_mmr14(benchmark, run_once):
    result = run_once(benchmark, _starve, MMR14Process, False)
    benchmark.extra_info["rounds_survived"] = result.rounds_reached
    assert result.rounds_reached > 50


@pytest.mark.parametrize(
    "cls", [Miller18Process, ABY22Process], ids=lambda c: c.__name__
)
def test_attack_fails_on_fixed_protocols(benchmark, run_once, cls):
    result = run_once(benchmark, _starve, cls, True)
    assert result.agreement and result.validity
