"""Parameterized (schema) checking — the ByMC-replacement pipeline.

Times the full parameterized verification of the safety invariants for
the small-automaton protocols (the ones the paper verifies in seconds)
and the schema-count computation for the big ones.  The category-C
protocols' full parameterized sweeps are the paper's 10-hour MPI runs;
per DESIGN.md they are cross-checked exhaustively by the explicit
checker instead (see bench_table2_verification).
"""

import pytest

from repro.checker.milestones import CombinedModel, extract_milestones, precedence_order
from repro.checker.parameterized import ParameterizedChecker
from repro.checker.schemas import count_schemas
from repro.protocols import benchmark as protocol_benchmark
from repro.spec.properties import PropertyLibrary

SMALL = ("rabin83", "cc85a", "cc85b", "fmr05", "ks16")
ENTRIES = {e.name: e for e in protocol_benchmark()}


@pytest.mark.parametrize("name", SMALL)
def test_parameterized_validity(benchmark, run_once, name):
    """Inv2 for both values, verified for ALL admissible parameters."""
    model = ENTRIES[name].model()

    def check():
        checker = ParameterizedChecker(model)
        lib = PropertyLibrary(model)
        return [checker.check_reach(lib.inv2(v)) for v in (0, 1)]

    results = run_once(benchmark, check)
    assert all(r.holds for r in results)
    benchmark.extra_info["nschemas"] = sum(r.nschemas for r in results)


@pytest.mark.parametrize("name", SMALL)
def test_parameterized_agreement(benchmark, run_once, name):
    """Inv1 (value 0) under a bounded node budget.

    Agreement's two temporal events make its schema tree the largest of
    the safety queries; the budget keeps the bench bounded — protocols
    whose tree fits verify outright, the rest report ``unknown`` (and
    are covered by the explicit checker in bench_table2).  A
    ``violated`` verdict would be a real bug either way.
    """
    model = ENTRIES[name].model()

    def check():
        checker = ParameterizedChecker(model, node_budget=6_000)
        lib = PropertyLibrary(model)
        return checker.check_reach(lib.inv1(0))

    result = run_once(benchmark, check)
    assert not result.violated
    benchmark.extra_info["nschemas"] = result.nschemas
    benchmark.extra_info["verdict"] = result.verdict


@pytest.mark.parametrize("name", ("mmr14", "miller18", "aby22"))
def test_schema_counting_category_c(benchmark, name):
    """The analytic nschemas column for the big automata (Table II)."""
    entry = ENTRIES[name]
    model = entry.verification_model().single_round()

    def count():
        combined = CombinedModel(model)
        milestones = extract_milestones(combined)
        predecessors = precedence_order(milestones, model)
        lib = PropertyLibrary(model)
        return count_schemas(milestones, predecessors, len(lib.inv1(0).events))

    total = benchmark(count)
    benchmark.extra_info["nschemas_inv1"] = total
    assert total > 10_000  # category C: combinatorial explosion
