"""Expected decision rounds under fair random scheduling (§II folklore).

The MMR14 termination argument promises ~4 expected rounds against a
*non-adaptive* adversary; the fixed protocols keep the same constant
expectation.  We measure the mean decision round over seeded runs and
assert the constant-round shape (well below any n-dependent bound).
"""

import pytest

from repro.sim import (
    ABY22Process,
    Miller18Process,
    MMR14Process,
    expected_rounds,
)

PROTOCOLS = {
    "mmr14": MMR14Process,
    "miller18": Miller18Process,
    "aby22": ABY22Process,
}


@pytest.mark.parametrize("name", list(PROTOCOLS))
def test_expected_rounds_mixed_inputs(benchmark, run_once, name):
    mean = run_once(
        benchmark,
        expected_rounds,
        PROTOCOLS[name],
        4,
        1,
        [0, 0, 1],
        runs=25,
    )
    benchmark.extra_info["expected_rounds"] = mean
    assert mean < 8.0


@pytest.mark.parametrize("name", list(PROTOCOLS))
def test_expected_rounds_uniform_inputs(benchmark, run_once, name):
    """Uniform proposals decide in ~2 expected rounds (coin match)."""
    mean = run_once(
        benchmark,
        expected_rounds,
        PROTOCOLS[name],
        4,
        1,
        [1, 1, 1],
        runs=25,
    )
    benchmark.extra_info["expected_rounds"] = mean
    assert mean < 4.0
