"""Ablation: the solver stack behind the schema checker.

DESIGN.md calls out three design choices worth quantifying:

1. **float-LP pruning** (HiGHS) vs. the exact Fraction simplex for
   prefix feasibility — the reason the schema DFS is tractable;
2. **vertex rounding** vs. exact branch & bound at SAT leaves;
3. the cost of exact branch & bound itself on schema-sized systems.

The workload is a real encoding: prefixes of the MMR14 CB2 schema tree.
"""

import pytest

from repro.checker.encoder import SchemaEncoder
from repro.checker.milestones import (
    CombinedModel,
    extract_milestones,
    precedence_order,
)
from repro.checker.schemas import EventItem
from repro.protocols import mmr14
from repro.solver.floatlp import float_feasible, rounded_integer_model
from repro.solver.ilp import ilp_feasible
from repro.solver.simplex import lp_feasible
from repro.spec.properties import PropertyLibrary


@pytest.fixture(scope="module")
def workload():
    """A feasible mid-depth schema prefix of refined MMR14."""
    model = mmr14.refined_model().single_round()
    combined = CombinedModel(model)
    encoder = SchemaEncoder(combined)
    milestones = extract_milestones(combined)
    by_name = {str(m): m for m in milestones}
    prefix = [
        by_name["[b0 reaches -f + t + 1]"],
        by_name["[b1 reaches -f + t + 1]"],
        by_name["[b0 reaches -f + 2*t + 1]"],
        by_name["[b1 reaches -f + 2*t + 1]"],
    ]
    query = PropertyLibrary(mmr14.refined_model()).cb(2)
    encoded = encoder.encode(prefix, query)
    return encoded.problem


def test_float_lp_prefix_feasibility(benchmark, workload):
    feasible = benchmark(float_feasible, workload)
    assert feasible is True


def test_exact_lp_prefix_feasibility(benchmark, workload):
    result = benchmark(lp_feasible, workload)
    assert result.feasible


def test_vertex_rounding_fast_path(benchmark, workload):
    model = benchmark(rounded_integer_model, workload)
    assert model is not None
    assert workload.check(model)


def test_exact_branch_and_bound(benchmark, run_once, workload):
    result = run_once(benchmark, ilp_feasible, workload)
    assert result.is_sat
