#!/usr/bin/env python
"""State-engine throughput benchmark (states/sec trajectory).

Measures the three hot loops of the explicit-state engine on the
MMR14 refined model at the paper's cross-check valuation ``n=4, t=1,
f=1``:

* ``check_reach`` — BFS over (config, mask) pairs (A-queries CB0/CB1);
* ``check_game``  — game-graph construction + attractor (E-queries
  C2'(0)/C2'(1));
* ``frontier_batch`` — cold successor-expansion kernel, scalar
  (``successor_groups``) vs frontier-batched
  (:class:`repro.counter.batch.BatchExpander`), over the recorded BFS
  level frontiers of the reach space with caches cleared per pass;
* ``mdp_sample``  — Markov-chain path sampling under a random
  adversary (steps/sec);
* ``sim_fleet``   — message-level Monte Carlo instances/sec: a
  sequential loop vs the asyncio-interleaved fleet (plus the 2-worker
  pooled path in full mode), with bit-identical records asserted;
* ``sweep``       — tasks/sec over a protocol × valuation × target
  matrix, cold (shared program/system caches cleared per task,
  emulating per-task compilation) vs warm (process-wide
  ``ProtocolProgram`` + bound-system caches shared, as a persistent
  sharded sweep worker sees them);
* ``store_sweep`` — the same matrix against the persistent state-graph
  store: first run cold (populating the store, paying the writes),
  second run warm **from disk** with every in-process cache dropped —
  the speedup a fresh process gets from a previous process's work;
* ``store_backends`` — an incremental-exploration workload (the same
  keys revisited under growing state budgets) against each store
  backend (``dir``, ``sqlite``) plus the PR 4 whole-graph-snapshot
  emulation: bytes written by delta flushes vs snapshot rewrites, and
  warm-from-storage second-run times per backend.

Every run appends one labelled entry to ``BENCH_state_engine.json`` so
the file accumulates a perf *trajectory* across PRs; regressions show
up as a drop against the previous entry.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_state_engine.py --label my-change
    PYTHONPATH=src python benchmarks/bench_state_engine.py --quick  # CI smoke

The first recorded entry (label ``seed``) is the nested-tuple /
quadratic-attractor implementation this engine replaced; the
acceptance bar for the flat interned engine was >= 3x states/sec on
``check_reach`` and >= 5x on ``check_game`` against it.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.checker.explicit import ExplicitChecker
from repro.counter.adversary import RandomAdversary
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols import mmr14
from repro.spec.properties import PropertyLibrary

VALUATION = {"n": 4, "t": 1, "f": 1}


def bench_check_reach(checker: ExplicitChecker, repeats: int, warmup: bool) -> dict:
    lib = PropertyLibrary(checker.model)
    queries = [lib.cb(0), lib.cb(1), lib.inv1(0), lib.inv1(1)]
    if warmup:
        # One untimed pass: the smoke run then measures warm
        # steady-state throughput, comparable to the multi-repeat full
        # run (whose average is dominated by warm repeats) — that is
        # what the CI regression gate diffs against the recorded entry.
        for query in queries:
            checker.check_reach(query)
    states = 0
    elapsed = 0.0
    verdicts = []
    for _ in range(repeats):
        verdicts = []
        for query in queries:
            t0 = time.perf_counter()
            result = checker.check_reach(query)
            elapsed += time.perf_counter() - t0
            states += result.states_explored
            verdicts.append((query.name, result.verdict))
    return {
        "states": states,
        "seconds": elapsed,
        "states_per_sec": states / elapsed if elapsed else 0.0,
        "verdicts": verdicts,
    }


def bench_check_game(checker: ExplicitChecker, repeats: int, warmup: bool) -> dict:
    lib = PropertyLibrary(checker.model)
    queries = [lib.c2prime(0), lib.c2prime(1)]
    if warmup:
        for query in queries:
            checker.check_game(query)
    states = 0
    elapsed = 0.0
    verdicts = []
    for _ in range(repeats):
        verdicts = []
        for query in queries:
            t0 = time.perf_counter()
            result = checker.check_game(query)
            elapsed += time.perf_counter() - t0
            states += result.states_explored
            verdicts.append((query.name, result.verdict))
    return {
        "states": states,
        "seconds": elapsed,
        "states_per_sec": states / elapsed if elapsed else 0.0,
        "verdicts": verdicts,
    }


def _sweep_matrix(quick: bool):
    """The protocol × valuation × target task list both sweep benches use."""
    from repro import api
    from repro.protocols.registry import benchmark

    if quick:
        entries = [e for e in benchmark() if e.name in ("cc85a", "ks16", "fmr05")]
        deltas, targets, cap = (0, 1), ("validity",), 4_000
    else:
        entries = list(benchmark())
        deltas, targets, cap = (0, 1, 2), ("agreement", "validity"), 10_000
    tasks = []
    for entry in entries:
        for delta in deltas:
            valuation = dict(entry.small_valuation)
            valuation["n"] += delta
            for target in targets:
                tasks.append(api.VerificationTask(
                    protocol=entry.name, valuation=valuation,
                    targets=(target,), limits=api.Limits(max_states=cap),
                ))
    return tasks


def _stable_results(results):
    return [
        (r.task_id, r.verdict, tuple(
            (o.target,
             tuple((q.query, q.verdict, q.states_explored) for q in o.queries),
             tuple(sorted(o.side_conditions.items())))
            for o in r.obligations
        ))
        for r in results
    ]


def bench_sweep(quick: bool) -> dict:
    """Cold vs warm tasks/sec over a protocol × valuation × target matrix.

    The cross-validation workload: every registry protocol checked at
    several ``n`` with per-target tasks (the shape a sharded sweep
    shard executes).  The cold pass clears the process-wide program and
    system caches before *every* task — exactly the per-task
    recompilation cost the pre-program engine paid; the warm pass runs
    the same matrix against shared caches.  ``max_states`` bounds every
    task deterministically, and the two passes must agree bit-for-bit.
    """
    from repro.api.sweep import run_task
    from repro.counter.system import clear_shared_caches

    tasks = _sweep_matrix(quick)
    stable = _stable_results

    t0 = time.perf_counter()
    cold = []
    for task in tasks:
        clear_shared_caches()
        cold.append(run_task(task))
    cold_seconds = time.perf_counter() - t0

    clear_shared_caches()
    t0 = time.perf_counter()
    warm = [run_task(task) for task in tasks]
    warm_seconds = time.perf_counter() - t0

    if stable(cold) != stable(warm):
        raise AssertionError("cold and warm sweep passes disagree")
    return {
        "tasks": len(tasks),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_tasks_per_sec": len(tasks) / cold_seconds if cold_seconds else 0.0,
        "warm_tasks_per_sec": len(tasks) / warm_seconds if warm_seconds else 0.0,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
    }


def bench_store_sweep(quick: bool) -> dict:
    """Second-run (warm-from-disk) speedup with the persistent graph store.

    The cross-process story of the store: the *first* sweep starts from
    nothing and persists every explored graph (paying the writes); the
    process-wide caches are then dropped wholesale — the second sweep
    sees exactly what a fresh process would — and re-runs the matrix
    warm from disk.  Reports must agree bit-for-bit; the acceptance
    bar for the store is >= 1.2x on the second run.
    """
    import shutil
    import tempfile

    from repro import api
    from repro.counter.system import clear_shared_caches

    tasks = _sweep_matrix(quick)
    store_dir = tempfile.mkdtemp(prefix="repro-graph-bench-")
    try:
        clear_shared_caches()
        t0 = time.perf_counter()
        first = api.sweep(tasks, graph_store=store_dir)
        cold_seconds = time.perf_counter() - t0

        clear_shared_caches()  # a fresh process, as far as the engine knows
        t0 = time.perf_counter()
        second = api.sweep(tasks, graph_store=store_dir)
        warm_seconds = time.perf_counter() - t0
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    if _stable_results(first.results) != _stable_results(second.results):
        raise AssertionError("warm-from-disk sweep diverged from cold")
    return {
        "tasks": len(tasks),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_tasks_per_sec": len(tasks) / cold_seconds if cold_seconds else 0.0,
        "warm_tasks_per_sec": len(tasks) / warm_seconds if warm_seconds else 0.0,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
    }


def bench_store_backends(quick: bool) -> dict:
    """Delta-flush bytes + warm-from-storage time, per store backend.

    The workload the delta segments were built for: the same
    ``(protocol, valuation)`` keys revisited by consecutive tasks under
    *growing* ``max_states`` budgets, so each task extends the stored
    graph a little.  Whole-graph snapshot flushes (the PR 4 behaviour,
    emulated by ``snapshot_mode=True``) rewrite the entire graph at
    every growth step; delta flushes append only the increment.  Both
    shipped backends run the matrix twice (cold then warm-from-storage
    with every in-process cache dropped) and must agree with each
    other — and with the snapshot emulation — bit for bit.
    """
    import shutil
    import tempfile

    from repro import api
    from repro.api.sweep import run_task
    from repro.counter.store import (
        activate_graph_store,
        active_graph_store,
        deactivate_graph_store,
    )
    from repro.counter.system import clear_shared_caches, flush_shared_graphs

    # Budgets sized against the actual reach spaces (cc85a fully
    # explores within ~2k (config, mask) states at n=4): each step must
    # genuinely deepen the stored graph or the comparison is vacuous.
    if quick:
        protocols = ("cc85a", "ks16")
        budgets = (100, 400, 2_000)
    else:
        protocols = ("cc85a", "ks16", "fmr05")
        budgets = (100, 400, 2_000, 20_000)
    tasks = [
        api.VerificationTask(protocol=protocol, targets=(target,),
                             limits=api.Limits(max_states=budget))
        for protocol in protocols
        for budget in budgets
        for target in ("validity", "agreement")
    ]

    def run_with_store(spec, snapshot_mode):
        clear_shared_caches()
        previous = activate_graph_store(spec, snapshot_mode=snapshot_mode)
        t0 = time.perf_counter()
        try:
            results = [run_task(task) for task in tasks]
            flush_shared_graphs()
            store = active_graph_store()
            measured = {
                "seconds": time.perf_counter() - t0,
                "bytes_written": store.bytes_written,
                "load_hits": store.load_hits,
            }
        finally:
            deactivate_graph_store(previous)
        return results, measured

    out = {"tasks": len(tasks)}
    base = tempfile.mkdtemp(prefix="repro-store-backend-bench-")
    reference = None
    try:
        variants = {
            "dir": (str(Path(base) / "graphs"), False),
            "sqlite": (f"sqlite:{Path(base) / 'graphs.db'}", False),
            "snapshot": (str(Path(base) / "snapshots"), True),
        }
        for name, (spec, snapshot_mode) in variants.items():
            first, cold = run_with_store(spec, snapshot_mode)
            second, warm = run_with_store(spec, snapshot_mode)
            for results in (first, second):
                if reference is None:
                    reference = _stable_results(results)
                elif _stable_results(results) != reference:
                    raise AssertionError(
                        f"store backend {name!r} diverged from reference"
                    )
            out[name] = {
                "cold_seconds": cold["seconds"],
                "warm_seconds": warm["seconds"],
                "cold_bytes_written": cold["bytes_written"],
                "warm_bytes_written": warm["bytes_written"],
                "warm_load_hits": warm["load_hits"],
                "warm_speedup": (
                    cold["seconds"] / warm["seconds"]
                    if warm["seconds"] else 0.0
                ),
            }
    finally:
        shutil.rmtree(base, ignore_errors=True)
    snapshot_bytes = out["snapshot"]["cold_bytes_written"]
    out["delta_vs_snapshot_cold_bytes"] = (
        out["dir"]["cold_bytes_written"] / snapshot_bytes
        if snapshot_bytes else 0.0
    )
    return out


def bench_frontier_batch(quick: bool) -> dict:
    """Cold frontier-expansion throughput: scalar vs batched kernel.

    The PR 8 tentpole measurement.  The warm ``check_reach`` /
    ``check_game`` sections above hit the successor cache and cannot
    see the expansion engine at all, so this section isolates the cold
    kernel: the MMR14-refined reach space is first explored once to
    record its genuine BFS level frontiers, then each engine expands
    those frontiers level by level against *cleared* caches — the
    scalar pass through ``successor_groups``, the batched pass through
    ``BatchExpander.expand_frontier`` — and the two cached group
    tables are asserted identical before any rate is reported.
    ``states`` counts the ``(action, successor)`` entries materialized
    into the cache; the GC is paused inside the timed region (both
    passes alike) so collection pauses don't decide the comparison.
    """
    import gc

    from repro.counter.batch import batch_available
    from repro.counter.system import clear_shared_caches

    if not batch_available():
        return {"skipped": "numpy unavailable"}

    cap = 20_000 if quick else 60_000
    clear_shared_caches()
    scout = CounterSystem(mmr14.refined_model(), VALUATION)
    levels = []
    frontier = list(scout.initial_configs())
    seen = set(frontier)
    while frontier and len(seen) < cap:
        levels.append(frontier)
        successors = []
        for config in frontier:
            for group in scout.successor_groups(config):
                for _action, succ in group:
                    if succ not in seen:
                        seen.add(succ)
                        successors.append(succ)
        frontier = successors

    def timed(run):
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()
        states = run()
        elapsed = time.perf_counter() - t0
        gc.enable()
        return states, elapsed

    def flattened(system, level_lists, sample):
        return [
            [(a.rule, a.round, a.branch, succ.data)
             for group in system._succ_cache[config]
             for a, succ in group]
            for level in level_lists
            for config in level[:sample]
        ]

    clear_shared_caches()
    scalar_system = CounterSystem(mmr14.refined_model(), VALUATION)
    scalar_levels = [
        [scalar_system.intern(c) for c in level] for level in levels
    ]

    def run_scalar():
        states = 0
        for level in scalar_levels:
            for config in level:
                for group in scalar_system.successor_groups(config):
                    states += len(group)
        return states

    scalar_states, scalar_seconds = timed(run_scalar)
    reference = flattened(scalar_system, scalar_levels, sample=200)

    clear_shared_caches()
    batched_system = CounterSystem(mmr14.refined_model(), VALUATION)
    batched_levels = [
        [batched_system.intern(c) for c in level] for level in levels
    ]
    expander = batched_system.batch_expander()

    def run_batched():
        for level in batched_levels:
            expander.expand_frontier(iter(level))
        return sum(
            len(group)
            for level in batched_levels
            for config in level
            for group in batched_system._succ_cache[config]
        )

    batched_states, batched_seconds = timed(run_batched)
    if batched_states != scalar_states:
        raise AssertionError(
            f"batched kernel produced {batched_states} successors, "
            f"scalar produced {scalar_states}"
        )
    if flattened(batched_system, batched_levels, sample=200) != reference:
        raise AssertionError("batched successor groups diverge from scalar")

    return {
        "model": "mmr14-refined",
        "levels": len(levels),
        "frontier_configs": sum(len(level) for level in levels),
        "states": scalar_states,
        "scalar": {
            "seconds": scalar_seconds,
            "states_per_sec": (
                scalar_states / scalar_seconds if scalar_seconds else 0.0
            ),
        },
        "batched": {
            "seconds": batched_seconds,
            "states_per_sec": (
                batched_states / batched_seconds if batched_seconds else 0.0
            ),
        },
        "speedup": (
            scalar_seconds / batched_seconds if batched_seconds else 0.0
        ),
    }


def bench_sim_fleet(quick: bool) -> dict:
    """Monte Carlo fleet throughput: sequential loop vs concurrent fleet.

    Drives the same MMR14 seed list twice — a plain one-at-a-time loop
    over the fleet's run generator (the pre-fleet shape) and the
    asyncio-interleaved ``run_fleet`` engine — and asserts the two
    record lists are bit-identical before reporting either rate (the
    fleet's seed-reproducibility contract).  The full mode also shards
    the same fleet across two pool workers to measure the multi-core
    path, pool spawn cost included.
    """
    from repro.sim.fleet import _drive, run_fleet
    from repro.sim.registry import sim_by_name

    protocol, max_steps = "mmr14", 20_000
    runs = 200 if quick else 1000
    proto = sim_by_name(protocol)

    def sequential():
        records = []
        for seed in range(runs):
            stepper = _drive(proto, "perfect", "random", seed, max_steps,
                             True, max_steps + 1)
            while True:
                try:
                    next(stepper)
                except StopIteration as finished:
                    records.append(finished.value)
                    break
        return records

    t0 = time.perf_counter()
    sequential_records = sequential()
    sequential_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = run_fleet(protocol, runs=runs, max_steps=max_steps)
    fleet_seconds = time.perf_counter() - t0
    if report.records != sequential_records:
        raise AssertionError("fleet records diverge from the sequential loop")

    out = {
        "protocol": protocol,
        "runs": runs,
        "completion": report.completion,
        "sequential": {
            "seconds": sequential_seconds,
            "instances_per_sec": (
                runs / sequential_seconds if sequential_seconds else 0.0
            ),
        },
        "fleet": {
            "seconds": fleet_seconds,
            "instances_per_sec": (
                runs / fleet_seconds if fleet_seconds else 0.0
            ),
        },
    }
    if not quick:
        t0 = time.perf_counter()
        pooled = run_fleet(protocol, runs=runs, max_steps=max_steps,
                           processes=2)
        pooled_seconds = time.perf_counter() - t0
        if pooled.records != sequential_records:
            raise AssertionError("pooled fleet diverges from the "
                                 "sequential loop")
        out["pooled"] = {
            "processes": 2,
            "seconds": pooled_seconds,
            "instances_per_sec": (
                runs / pooled_seconds if pooled_seconds else 0.0
            ),
        }
    return out


def bench_mdp_sample(
    checker: ExplicitChecker, paths: int, max_steps: int, warmup: bool
) -> dict:
    system = CounterSystem(checker.model, VALUATION)
    config = next(system.initial_configs())
    if warmup:
        # Enough untimed paths to warm the rule-option/successor caches
        # to steady state: the full run's 1000-path average is
        # warm-dominated, and the gate compares the smoke run to it.
        for seed in range(50):
            sample_path(system, config, RandomAdversary(seed=seed),
                        random.Random(seed), max_steps=max_steps)
    steps = 0
    t0 = time.perf_counter()
    for seed in range(paths):
        adversary = RandomAdversary(seed=seed)
        rng = random.Random(seed)
        path = sample_path(system, config, adversary, rng, max_steps=max_steps)
        steps += len(path)
    elapsed = time.perf_counter() - t0
    return {
        "steps": steps,
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed if elapsed else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="dev", help="trajectory entry label")
    parser.add_argument(
        "--quick", action="store_true",
        help="single repetition / few paths with an untimed warm-up "
             "pass, i.e. warm steady-state throughput (CI smoke run)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent
                            / "BENCH_state_engine.json"),
        help="trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else 3
    # 1000 paths in BOTH modes: the sampler exhausts MMR14-refined
    # paths in ~22 steps, so the old 200/20-path samples measured tens
    # of milliseconds — pure timer noise, far too jittery for the CI
    # regression gate.  22k steps cost ~0.1s, trivial even for the
    # smoke run.  steps/sec is a rate, so entries stay comparable.
    paths = 1000
    max_steps = 400

    checker = ExplicitChecker(mmr14.refined_model(), VALUATION)
    entry = {
        "label": args.label,
        "valuation": VALUATION,
        "model": "mmr14-refined",
        "quick": args.quick,
        "check_reach": bench_check_reach(checker, repeats, warmup=args.quick),
        "check_game": bench_check_game(checker, repeats, warmup=args.quick),
        "frontier_batch": bench_frontier_batch(args.quick),
        "mdp_sample": bench_mdp_sample(checker, paths, max_steps,
                                       warmup=args.quick),
        "sim_fleet": bench_sim_fleet(args.quick),
        "sweep": bench_sweep(args.quick),
        "store_sweep": bench_store_sweep(args.quick),
        "store_backends": bench_store_backends(args.quick),
    }

    out = Path(args.out)
    trajectory = []
    if out.exists():
        trajectory = json.loads(out.read_text()).get("trajectory", [])
    trajectory.append(entry)
    out.write_text(json.dumps({"trajectory": trajectory}, indent=2) + "\n")

    print(json.dumps(entry, indent=2))
    print(f"\nappended entry {args.label!r} to {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
