#!/usr/bin/env python
"""State-engine throughput benchmark (states/sec trajectory).

Measures the three hot loops of the explicit-state engine on the
MMR14 refined model at the paper's cross-check valuation ``n=4, t=1,
f=1``:

* ``check_reach`` — BFS over (config, mask) pairs (A-queries CB0/CB1);
* ``check_game``  — game-graph construction + attractor (E-queries
  C2'(0)/C2'(1));
* ``mdp_sample``  — Markov-chain path sampling under a random
  adversary (steps/sec).

Every run appends one labelled entry to ``BENCH_state_engine.json`` so
the file accumulates a perf *trajectory* across PRs; regressions show
up as a drop against the previous entry.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_state_engine.py --label my-change
    PYTHONPATH=src python benchmarks/bench_state_engine.py --quick  # CI smoke

The first recorded entry (label ``seed``) is the nested-tuple /
quadratic-attractor implementation this engine replaced; the
acceptance bar for the flat interned engine was >= 3x states/sec on
``check_reach`` and >= 5x on ``check_game`` against it.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.checker.explicit import ExplicitChecker
from repro.counter.adversary import RandomAdversary
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols import mmr14
from repro.spec.properties import PropertyLibrary

VALUATION = {"n": 4, "t": 1, "f": 1}


def bench_check_reach(checker: ExplicitChecker, repeats: int) -> dict:
    lib = PropertyLibrary(checker.model)
    queries = [lib.cb(0), lib.cb(1), lib.inv1(0), lib.inv1(1)]
    states = 0
    elapsed = 0.0
    verdicts = []
    for _ in range(repeats):
        verdicts = []
        for query in queries:
            t0 = time.perf_counter()
            result = checker.check_reach(query)
            elapsed += time.perf_counter() - t0
            states += result.states_explored
            verdicts.append((query.name, result.verdict))
    return {
        "states": states,
        "seconds": elapsed,
        "states_per_sec": states / elapsed if elapsed else 0.0,
        "verdicts": verdicts,
    }


def bench_check_game(checker: ExplicitChecker, repeats: int) -> dict:
    lib = PropertyLibrary(checker.model)
    queries = [lib.c2prime(0), lib.c2prime(1)]
    states = 0
    elapsed = 0.0
    verdicts = []
    for _ in range(repeats):
        verdicts = []
        for query in queries:
            t0 = time.perf_counter()
            result = checker.check_game(query)
            elapsed += time.perf_counter() - t0
            states += result.states_explored
            verdicts.append((query.name, result.verdict))
    return {
        "states": states,
        "seconds": elapsed,
        "states_per_sec": states / elapsed if elapsed else 0.0,
        "verdicts": verdicts,
    }


def bench_mdp_sample(checker: ExplicitChecker, paths: int, max_steps: int) -> dict:
    system = CounterSystem(checker.model, VALUATION)
    config = next(system.initial_configs())
    steps = 0
    t0 = time.perf_counter()
    for seed in range(paths):
        adversary = RandomAdversary(seed=seed)
        rng = random.Random(seed)
        path = sample_path(system, config, adversary, rng, max_steps=max_steps)
        steps += len(path)
    elapsed = time.perf_counter() - t0
    return {
        "steps": steps,
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed if elapsed else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="dev", help="trajectory entry label")
    parser.add_argument(
        "--quick", action="store_true",
        help="single repetition / few paths (CI smoke run)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent
                            / "BENCH_state_engine.json"),
        help="trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else 3
    paths = 20 if args.quick else 200
    max_steps = 400

    checker = ExplicitChecker(mmr14.refined_model(), VALUATION)
    entry = {
        "label": args.label,
        "valuation": VALUATION,
        "model": "mmr14-refined",
        "quick": args.quick,
        "check_reach": bench_check_reach(checker, repeats),
        "check_game": bench_check_game(checker, repeats),
        "mdp_sample": bench_mdp_sample(checker, paths, max_steps),
    }

    out = Path(args.out)
    trajectory = []
    if out.exists():
        trajectory = json.loads(out.read_text()).get("trajectory", [])
    trajectory.append(entry)
    out.write_text(json.dumps({"trajectory": trajectory}, indent=2) + "\n")

    print(json.dumps(entry, indent=2))
    print(f"\nappended entry {args.label!r} to {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
