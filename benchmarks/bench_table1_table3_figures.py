"""Tables I & III and the automaton figures (Figs. 3-6): cheap artifacts.

These regenerate the *descriptive* artifacts of the paper — the MMR14
rule table, the property-formula table, and the automaton diagrams —
and double as micro-benchmarks of model construction and the
single-round / refinement transformations.
"""

from repro.analysis.render import ascii_summary, to_dot
from repro.core.transforms import refine_bca, single_round
from repro.harness.tables import table1, table3
from repro.protocols import mmr14, naive_voting


def test_table1_mmr14_rules(benchmark):
    text = benchmark(table1)
    # Every numbered rule of Table I appears.
    for rule in ("r3", "r7", "r21", "r27"):
        assert rule in text


def test_table3_formulas(benchmark):
    text = benchmark(table3)
    assert "A F (EX{D0}) → G (¬EX{E1, D1})" in text  # (Inv1)
    assert "A F (EX{M0}) → G (¬EX{M1})" in text      # (CB0)


def test_fig3_naive_voting(benchmark):
    text = benchmark(lambda: ascii_summary(naive_voting.automaton()))
    assert "v0" in text and "D0" in text


def test_fig4_mmr14_model_build(benchmark):
    model = benchmark(mmr14.model)
    assert model.paper_size() == (17, 29)


def test_fig4_dot_rendering(benchmark):
    dot = benchmark(lambda: to_dot(mmr14.model().process, "Fig4a"))
    assert dot.startswith("digraph")
    assert '"M0" -> "D0"' in dot


def test_fig5_single_round_transform(benchmark):
    rd = benchmark(lambda: single_round(mmr14.automaton()))
    rd.check_single_round_form()


def test_fig6_binding_refinement(benchmark):
    refined = benchmark(
        lambda: refine_bca(mmr14.automaton(), "r21", "a0", "a1")
    )
    assert refined.has_location("N0")
    assert refined.has_location("Nbot")
