"""Table II — the verification benchmark, one timing per protocol/property.

Regenerates the paper's central table: for each of the 8 protocols,
verify Agreement, Validity and Almost-Sure Termination and record the
wall-clock time (the ``nschemas`` column is the analytic count reported
by the harness).  Expected outcomes (asserted):

* every protocol satisfies Agreement and Validity;
* termination verifies for all protocols except **MMR14**, whose
  binding conditions CB2/CB3 yield the adaptive-attack counterexample.

Run with ``pytest benchmarks/bench_table2_verification.py --benchmark-only``.
"""

import pytest

from repro.checker.result import HOLDS, VIOLATED
from repro.harness.tables import _check_target
from repro.protocols import benchmark as protocol_benchmark
from repro.protocols.registry import by_name

ENTRIES = {entry.name: entry for entry in protocol_benchmark()}
SAFETY_TARGETS = ("agreement", "validity")


def _bench_id(name, target):
    return f"{name}-{target}"


@pytest.mark.parametrize("name", list(ENTRIES))
@pytest.mark.parametrize("target", SAFETY_TARGETS)
def test_safety(benchmark, run_once, name, target):
    entry = ENTRIES[name]
    use_param = entry.category in ("A", "B")
    cell, _ce = run_once(benchmark, _check_target, entry, target, use_param)
    assert cell.verdict == HOLDS
    benchmark.extra_info["nschemas"] = cell.nschemas
    benchmark.extra_info["verdict"] = cell.verdict


@pytest.mark.parametrize("name", list(ENTRIES))
def test_termination(benchmark, run_once, name):
    entry = ENTRIES[name]
    cell, ce_text = run_once(benchmark, _check_target, entry, "termination", False)
    if entry.paper_termination_ce:
        assert cell.verdict == VIOLATED
        assert ce_text is not None
    else:
        assert cell.verdict == HOLDS
    benchmark.extra_info["nschemas"] = cell.nschemas
    benchmark.extra_info["verdict"] = cell.verdict
