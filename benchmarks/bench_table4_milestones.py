"""Table IV — milestone count vs. maximum schema count.

For the five same-size ABY22 variants, compute the analytic schema
counts of the (CB0) and (Inv2) formulas and assert the paper's law:
each dropped milestone shrinks the count by a combinatorial factor
(the paper observes ~5-10x per milestone; so do we).
"""

import pytest

from repro.analysis.milestone_table import schema_count_for
from repro.protocols import aby22
from repro.spec.properties import PropertyLibrary

LEVELS = list(range(5))


def _count(level: int, formula: str) -> tuple:
    model = aby22.variant(level)
    lib = PropertyLibrary(model)
    query = lib.cb(0) if formula == "cb0" else lib.inv2(0)
    return schema_count_for(model, query)


@pytest.mark.parametrize("formula", ["cb0", "inv2"])
@pytest.mark.parametrize("level", LEVELS)
def test_schema_count(benchmark, level, formula):
    milestones, nschemas = benchmark(_count, level, formula)
    benchmark.extra_info["milestones"] = milestones
    benchmark.extra_info["max_nschemas"] = nschemas
    assert nschemas > 0


@pytest.mark.parametrize("formula", ["cb0", "inv2"])
def test_counts_shrink_per_milestone(benchmark, formula):
    def sweep():
        return [_count(level, formula) for level in LEVELS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = [nschemas for _m, nschemas in results]
    # Strictly decreasing, by a super-constant factor (paper: ~5-10x).
    for larger, smaller in zip(counts, counts[1:]):
        assert larger > smaller * 3
