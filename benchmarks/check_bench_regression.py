#!/usr/bin/env python
"""Bench regression gate: fresh smoke run vs the recorded trajectory.

Compares the last entry of a freshly-produced trajectory file (the CI
``--quick`` smoke of ``bench_state_engine.py``) against the last
*labelled* entry committed in ``BENCH_state_engine.json`` and fails on
a >30% drop in any state-engine throughput metric
(``check_reach``/``check_game`` states/sec, the ``frontier_batch``
batched kernel states/sec and its scalar-vs-batched speedup,
``mdp_sample`` steps/sec).  Metrics absent from the baseline entry
(sections newer than the recorded baseline) are skipped with a note.
The sweep and sim_fleet sections are informational only — quick and
full runs use different matrices / fleet sizes, so their rates are not
comparable.

Usage::

    python benchmarks/check_bench_regression.py /tmp/bench_ci.json \
        BENCH_state_engine.json [--threshold 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric path within an entry -> human label.  Paths may be nested;
#: a metric missing from the baseline entry (sections added after the
#: baseline was recorded, e.g. ``frontier_batch``) is skipped with a
#: note rather than failing the gate.
METRICS = {
    ("check_reach", "states_per_sec"): "check_reach states/sec",
    ("check_game", "states_per_sec"): "check_game states/sec",
    ("frontier_batch", "batched", "states_per_sec"):
        "frontier_batch batched states/sec",
    ("frontier_batch", "speedup"): "frontier_batch speedup",
    ("mdp_sample", "steps_per_sec"): "mdp_sample steps/sec",
}


def metric_at(entry: dict, path: tuple):
    """The metric at a (possibly nested) path, or ``None`` if absent."""
    node = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


#: Labels that never serve as a baseline: the bench default and the CI
#: smoke label are transient local/runner measurements, not records.
TRANSIENT_LABELS = ("dev", "ci-smoke")


def last_entry(path: Path, labelled_full_only: bool = False) -> dict:
    """Last trajectory entry; optionally the last *labelled full* one.

    The baseline side skips ``--quick`` entries (different repeat
    counts — not comparable) and transiently-labelled ones (``dev``,
    ``ci-smoke``), so a stray local smoke run appended to the committed
    file cannot silently become the regression baseline.
    """
    trajectory = json.loads(path.read_text())["trajectory"]
    if labelled_full_only:
        trajectory = [
            entry for entry in trajectory
            if not entry.get("quick") and entry["label"] not in TRANSIENT_LABELS
        ]
    if not trajectory:
        raise SystemExit(f"{path}: no usable trajectory entry")
    return trajectory[-1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path,
                        help="trajectory JSON written by the smoke run")
    parser.add_argument("baseline", type=Path,
                        help="committed trajectory JSON (BENCH_state_engine.json)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop (default 0.30)")
    args = parser.parse_args(argv)

    fresh = last_entry(args.fresh)
    baseline = last_entry(args.baseline, labelled_full_only=True)
    print(f"gate: {fresh['label']!r} (fresh) vs {baseline['label']!r} (baseline), "
          f"threshold {args.threshold:.0%}")

    failed = False
    for path, label in METRICS.items():
        got = metric_at(fresh, path)
        want = metric_at(baseline, path)
        if got is None or want is None:
            side = "fresh" if got is None else "baseline"
            print(f"  {label:34s} skipped (absent from {side} entry)")
            continue
        floor = want * (1.0 - args.threshold)
        ratio = got / want if want else float("inf")
        status = "ok" if got >= floor else "REGRESSION"
        print(f"  {label:34s} {got:12,.2f} vs {want:12,.2f} "
              f"({ratio:5.2f}x, floor {floor:,.2f}) {status}")
        if got < floor:
            failed = True

    fleet = fresh.get("sim_fleet")
    if fleet:
        pooled = fleet.get("pooled")
        pooled_note = (
            f", pooled×{pooled['processes']} "
            f"{pooled['instances_per_sec']:.1f}/s" if pooled else ""
        )
        print(f"  sim_fleet (informational)    sequential "
              f"{fleet['sequential']['instances_per_sec']:.1f}/s -> fleet "
              f"{fleet['fleet']['instances_per_sec']:.1f}/s over "
              f"{fleet['runs']} runs{pooled_note}")
    sweep = fresh.get("sweep")
    if sweep:
        print(f"  sweep (informational)        cold {sweep['cold_tasks_per_sec']:.2f} "
              f"-> warm {sweep['warm_tasks_per_sec']:.2f} tasks/sec "
              f"({sweep['warm_speedup']:.2f}x warm speedup)")
    store = fresh.get("store_sweep")
    if store:
        print(f"  store_sweep (informational)  cold {store['cold_tasks_per_sec']:.2f} "
              f"-> warm-from-disk {store['warm_tasks_per_sec']:.2f} tasks/sec "
              f"({store['warm_speedup']:.2f}x second-run speedup)")
    backends = fresh.get("store_backends")
    if backends:
        ratio = backends.get("delta_vs_snapshot_cold_bytes", 0.0)
        print(f"  store_backends (informational)  delta flushes wrote "
              f"{backends['dir']['cold_bytes_written']:,} bytes vs "
              f"{backends['snapshot']['cold_bytes_written']:,} snapshot "
              f"bytes ({ratio:.2f}x); warm runs "
              f"dir {backends['dir']['warm_seconds']:.2f}s / "
              f"sqlite {backends['sqlite']['warm_seconds']:.2f}s / "
              f"snapshot {backends['snapshot']['warm_seconds']:.2f}s")

    if failed:
        print("bench regression gate FAILED", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
