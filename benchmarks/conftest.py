"""Shared fixtures for the benchmark harness."""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight benchmark exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
