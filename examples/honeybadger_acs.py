#!/usr/bin/env python3
"""Composition demo: parallel binary agreements à la HoneyBadger/Dumbo.

The paper's conclusion points at HoneyBadger and Dumbo, which run one
asynchronous binary agreement (ABA) *per proposer* to agree on the set
of transaction batches to commit — the Asynchronous Common Subset
(ACS) pattern.  This example composes ``n`` independent ABY22
instances (the binding-safe ABA verified in this repository) into a
miniature ACS:

* every party proposes a batch; ABA instance ``i`` decides whether
  party ``i``'s batch enters the committed set (input 1 = "I received
  party i's batch");
* all parties end with the *same* bit vector, hence the same set of
  committed batches — agreement of the composition follows from the
  agreement of every instance.

Each instance gets its own network/coin (independent randomness), as
in HoneyBadger; a real deployment multiplexes one transport, which
changes nothing for the consensus layer.

Run: ``python examples/honeybadger_acs.py``
"""

from repro.sim import (
    ABY22Process,
    EquivocatingByzantine,
    RandomScheduler,
    Simulation,
    run,
)

N, T = 4, 1
PARTIES = N - T  # correct parties simulated explicitly


def aba_instance(index: int, inputs, seed: int):
    """One ABY22 instance deciding slot ``index`` of the ACS vector."""
    sim = Simulation(ABY22Process, n=N, t=T, inputs=inputs, coin_seed=seed)
    scheduler = RandomScheduler(seed=seed * 31 + index)
    scheduler.byzantine = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, scheduler, max_steps=60_000)
    assert result.all_decided and result.agreement, f"instance {index} failed"
    return result


def main() -> None:
    batches = {pid: f"batch-from-P{pid}" for pid in range(N)}
    # Which batches did each correct party receive in time?  (Slot N-1
    # belongs to the Byzantine party: opinions genuinely differ.)
    received = {
        0: [1, 1, 1, 0],
        1: [1, 1, 1, 1],
        2: [1, 1, 1, 0],
    }

    committed_vector = []
    rounds_used = []
    for slot in range(N):
        inputs = [received[party][slot] for party in range(PARTIES)]
        result = aba_instance(slot, inputs, seed=slot + 1)
        (decision,) = set(result.decided.values())
        committed_vector.append(decision)
        rounds_used.append(max(result.decision_rounds.values()) + 1)
        print(f"ABA[{slot}] inputs={inputs} -> decide {decision} "
              f"(rounds: {max(result.decision_rounds.values()) + 1})")

    committed = [batches[i] for i, bit in enumerate(committed_vector) if bit]
    print(f"\nACS vector: {committed_vector}")
    print(f"committed set (identical at every correct party): {committed}")
    print(f"max ABA rounds: {max(rounds_used)} — the constant-expected-round "
          f"property of the common coin is what makes this composition "
          f"O(1) rounds overall")

    # ACS validity sanity: every unanimously-received batch committed.
    for slot in range(N):
        inputs = [received[party][slot] for party in range(PARTIES)]
        if all(inputs):
            assert committed_vector[slot] == 1
    print("ACS validity check passed.")


if __name__ == "__main__":
    main()
