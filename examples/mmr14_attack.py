#!/usr/bin/env python3
"""Reproduce the adaptive-adversary attack on MMR14 (§II + Table II).

Three independent reproductions of the same bug:

1. **Explicit model checking** — the binding condition CB2 is violated
   on the Fig. 6-refined MMR14 model at n=4, t=f=1; the counterexample
   schedule is printed and replayed.
2. **Parameterized model checking** — the schema checker finds a
   parameterized witness (its own choice of n, t, f) and validates it
   by concrete replay, mirroring the paper's ByMC counterexample
   (n=193, t=64).
3. **Execution** — the attack scheduler starves three correct MMR14
   processes for hundreds of rounds, while Miller18 and ABY22 decide
   under the *identical* adversary.

Both checker reproductions run the same :mod:`repro.api` task — only
the engine differs.

Run: ``python examples/mmr14_attack.py``  (takes a few minutes — the
parameterized search is the slow part; pass --quick to skip it)
"""

import sys

from repro import api
from repro.protocols import miller18, mmr14
from repro.sim import (
    ABY22Process,
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    Miller18Process,
    MMR14Process,
    Simulation,
    run,
)
from repro.spec import PropertyLibrary


def checker_counterexample() -> None:
    print("=" * 70)
    print("1. explicit engine: CB2 on refined MMR14 (n=4, t=1, f=1)")
    model = mmr14.refined_model()
    result = api.verify(
        model=model,
        valuation={"n": 4, "t": 1, "f": 1},
        queries=(PropertyLibrary(model).cb(2),),
    ).queries[0]
    print(f"   verdict: {result.verdict} "
          f"({result.states_explored} states explored)")
    print(f"   schedule: {result.counterexample}")

    print("\n   ... and the same condition HOLDS for Miller18:")
    fixed = miller18.refined_model()
    result = api.verify(
        model=fixed,
        valuation={"n": 4, "t": 1, "f": 1},
        queries=(PropertyLibrary(fixed).cb(2),),
        limits=api.Limits(max_states=900_000),
    ).queries[0]
    print(f"   miller18 cb2: {result.verdict}")


def parameterized_counterexample() -> None:
    print("=" * 70)
    print("2. parameterized engine: CB2 violation for all-parameters MMR14")
    model = mmr14.refined_model()
    result = api.verify(
        model=model,
        queries=(PropertyLibrary(model).cb(2),),
        engine="parameterized",
    ).queries[0]
    print(f"   verdict: {result.verdict}  (schema universe: {result.nschemas})")
    print(f"   witness parameters: {result.counterexample.valuation}")
    print(f"   (paper's ByMC reported n=193, t=64 — any admissible "
          f"valuation demonstrates the bug)")


def simulated_attack() -> None:
    print("=" * 70)
    print("3. executable attack (3 correct + 1 Byzantine, inputs 0,0,1)")
    sim = Simulation(MMR14Process, n=4, t=1, inputs=[0, 0, 1], coin_seed=7)
    byz = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, AdaptiveCoinAttack(byz), max_steps=20_000)
    print(f"   MMR14:    decided={result.decided}  "
          f"rounds survived={result.rounds_reached}  (livelock)")
    for cls in (Miller18Process, ABY22Process):
        sim = Simulation(cls, n=4, t=1, inputs=[0, 0, 1], coin_seed=7)
        byz = EquivocatingByzantine(list(sim.byzantine))
        result = run(sim, AdaptiveCoinAttack(byz), max_steps=20_000)
        print(f"   {cls.__name__:9s} decided={result.decided}  "
              f"in rounds {result.decision_rounds}")


def main() -> None:
    checker_counterexample()
    if "--quick" not in sys.argv:
        parameterized_counterexample()
    simulated_attack()


if __name__ == "__main__":
    main()
