#!/usr/bin/env python3
"""Quickstart: model a protocol, verify it through ``repro.api``.

Builds the paper's motivating example — naive majority voting (Fig. 2/3)
— with the public builder API, then drives everything through the one
verification front end, :mod:`repro.api`:

1. finds the agreement counterexample that one Byzantine process
   enables (the reason randomized consensus exists at all);
2. confirms agreement holds with f = 0;
3. verifies it *parametrically* — for every admissible (n, f) at once —
   by switching the task to the ``parameterized`` engine;
4. verifies a real benchmark protocol (MMR14 validity) by registry name;
5. runs a small parallel sweep and round-trips its ``RunReport``
   through JSON.

Run: ``python examples/quickstart.py``
"""

import json

from repro import api
from repro.core import AutomatonBuilder, SystemModel, ge, gt, params, standard_environment
from repro.spec import PropertyLibrary


def build_naive_voting() -> SystemModel:
    """Fig. 3, built from scratch with the public API."""
    n, f = params("n f")
    b = AutomatonBuilder("naive-voting")
    b.shared("v0", "v1")
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S")
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)
    # Fig. 3's rules: broadcast your vote, decide on a majority.
    b.rule("r1", "I0", "S", update={"v0": 1})
    b.rule("r2", "I1", "S", update={"v1": 1})
    b.rule("r3", "S", "D0", guard=b.var("v0") + b.var("v0") >= n + 1 - 2 * f)
    b.rule("r4", "S", "D1", guard=b.var("v1") + b.var("v1") >= n + 1 - 2 * f)
    automaton = b.build(check="canonical")
    env = standard_environment(
        resilience=(gt(n, 2 * f), ge(f, 0)),
        parameters="n f",
        num_processes=n - f,
        num_coins=0,
    )
    return SystemModel("naive-voting", env, automaton)


def main() -> None:
    model = build_naive_voting()
    print(f"model: {model}")

    # 1. One Byzantine process breaks agreement (explicit check, n=3, f=1).
    result = api.verify(model=model, valuation={"n": 3, "f": 1},
                        target="agreement")
    print(f"\nagreement with f=1: {result.verdict}")
    print(f"counterexample: {result.counterexample}")

    # 2. Without faults the protocol is fine.
    clean = api.verify(model=model, valuation={"n": 3, "f": 0},
                       target="agreement")
    print(f"agreement with f=0: {clean.verdict}")

    # 3. The same question, parametrically (for ALL admissible n, f):
    #    same task shape, different engine.
    lib = PropertyLibrary(model)
    parametric = api.verify(model=model, queries=(lib.inv1(0),),
                            engine="parameterized")
    inv1 = parametric.queries[0]
    print(
        f"\nparameterized inv1[0]: {inv1.verdict} "
        f"(schemas: {inv1.nschemas}, witness: "
        f"{inv1.counterexample.valuation if inv1.counterexample else None})"
    )

    # 4. A real benchmark protocol, by registry name.
    mmr = api.verify("mmr14", valuation={"n": 4, "t": 1, "f": 1},
                     target="validity")
    print(f"\nMMR14 validity (explicit, n=4): {mmr.verdict}")

    # 5. A 2-process sweep over two protocols; the RunReport is plain
    #    data — JSON out, JSON in, nothing lost.
    report = api.sweep(protocols=("cc85a", "ks16"), targets=("validity",),
                       processes=2)
    print(f"\nsweep of cc85a+ks16 validity:\n{report.summary()}")
    restored = api.RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert restored == report, "RunReport must round-trip through JSON"
    print("RunReport JSON round-trip: ok")


if __name__ == "__main__":
    main()
