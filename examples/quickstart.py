#!/usr/bin/env python3
"""Quickstart: model a protocol, check its properties, read the verdict.

Builds the paper's motivating example — naive majority voting (Fig. 2/3)
— with the public builder API, then:

1. finds the agreement counterexample that one Byzantine process
   enables (the reason randomized consensus exists at all);
2. confirms agreement holds with f = 0;
3. verifies it *parametrically* — for every admissible (n, f) at once —
   with the schema-based checker;
4. runs the same pipeline on MMR14's validity as a taste of the real
   benchmark.

Run: ``python examples/quickstart.py``
"""

from repro.checker import ExplicitChecker
from repro.checker.parameterized import ParameterizedChecker
from repro.core import AutomatonBuilder, SystemModel, ge, gt, params, standard_environment
from repro.protocols import mmr14
from repro.spec import PropertyLibrary


def build_naive_voting() -> SystemModel:
    """Fig. 3, built from scratch with the public API."""
    n, f = params("n f")
    b = AutomatonBuilder("naive-voting")
    b.shared("v0", "v1")
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S")
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)
    # Fig. 3's rules: broadcast your vote, decide on a majority.
    b.rule("r1", "I0", "S", update={"v0": 1})
    b.rule("r2", "I1", "S", update={"v1": 1})
    b.rule("r3", "S", "D0", guard=b.var("v0") + b.var("v0") >= n + 1 - 2 * f)
    b.rule("r4", "S", "D1", guard=b.var("v1") + b.var("v1") >= n + 1 - 2 * f)
    automaton = b.build(check="canonical")
    env = standard_environment(
        resilience=(gt(n, 2 * f), ge(f, 0)),
        parameters="n f",
        num_processes=n - f,
        num_coins=0,
    )
    return SystemModel("naive-voting", env, automaton)


def main() -> None:
    model = build_naive_voting()
    print(f"model: {model}")

    # 1. One Byzantine process breaks agreement (explicit check, n=3, f=1).
    checker = ExplicitChecker(model, {"n": 3, "f": 1})
    report = checker.check_target("agreement")
    print(f"\nagreement with f=1: {report.verdict}")
    print(f"counterexample: {report.counterexample}")

    # 2. Without faults the protocol is fine.
    clean = ExplicitChecker(model, {"n": 3, "f": 0})
    print(f"agreement with f=0: {clean.check_target('agreement').verdict}")

    # 3. The same question, parametrically (for ALL admissible n, f).
    parametric = ParameterizedChecker(model)
    lib = PropertyLibrary(model)
    result = parametric.check_reach(lib.inv1(0))
    print(
        f"\nparameterized inv1[0]: {result.verdict} "
        f"(schemas: {result.nschemas}, witness: "
        f"{result.counterexample.valuation if result.counterexample else None})"
    )

    # 4. A real benchmark protocol: MMR14 validity holds parametrically?
    mmr = mmr14.model()
    explicit = ExplicitChecker(mmr, {"n": 4, "t": 1, "f": 1})
    print(f"\nMMR14 validity (explicit, n=4): "
          f"{explicit.check_target('validity').verdict}")


if __name__ == "__main__":
    main()
