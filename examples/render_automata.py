#!/usr/bin/env python3
"""Render the paper's automata figures (Figs. 3, 4, 5/6) as text + DOT.

Writes ``<name>.dot`` files next to this script (feed them to Graphviz:
``dot -Tpdf fig4a_mmr14.dot -o fig4a.pdf``) and prints the ASCII rule
tables.

Run: ``python examples/render_automata.py``
"""

import pathlib

from repro.analysis import ascii_summary, to_dot
from repro.core.transforms import single_round
from repro.protocols import mmr14, naive_voting

HERE = pathlib.Path(__file__).resolve().parent


def emit(name: str, dot: str) -> None:
    path = HERE / f"{name}.dot"
    path.write_text(dot)
    print(f"wrote {path}")


def main() -> None:
    # Fig. 3: naive voting.
    print(ascii_summary(naive_voting.automaton()))
    emit("fig3_naive_voting", to_dot(naive_voting.automaton(), "Fig3"))

    # Fig. 4(a): the multi-round MMR14 process automaton.
    model = mmr14.model()
    print()
    print(ascii_summary(model.process))
    emit("fig4a_mmr14", to_dot(model.process, "Fig4a-MMR14"))

    # Fig. 4(b): the common-coin automaton.
    print()
    print(ascii_summary(model.coin))
    emit("fig4b_coin", to_dot(model.coin, "Fig4b-CommonCoin"))

    # Fig. 5-ish: the single-round construction (Definition 3).
    emit("fig5_single_round", to_dot(single_round(model.process), "SingleRound"))

    # Fig. 6: the binding refinement.
    refined = mmr14.refined_model()
    print()
    print(ascii_summary(refined.process))
    emit("fig6_refined", to_dot(refined.process, "Fig6-Refined"))


if __name__ == "__main__":
    main()
