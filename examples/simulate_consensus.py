#!/usr/bin/env python3
"""Run the executable protocols under fair random scheduling.

Measures the §II folklore numbers: with a strong common coin the
MMR14-family protocols decide in a small constant number of expected
rounds, independent of the adversary's (fair) delivery order and of
Byzantine equivocation.  Also demonstrates a run trace and an ε-Good
(biased) coin.

Run: ``python examples/simulate_consensus.py``
"""

from repro.sim import (
    ABY22Process,
    CommonCoin,
    EquivocatingByzantine,
    Miller18Process,
    MMR14Process,
    RandomScheduler,
    Simulation,
    expected_rounds,
    run,
)

PROTOCOLS = (MMR14Process, Miller18Process, ABY22Process)


def one_trace() -> None:
    print("one MMR14 run (n=4, t=1, inputs 0,0,1, seed 3):")
    sim = Simulation(MMR14Process, n=4, t=1, inputs=[0, 0, 1], coin_seed=3)
    scheduler = RandomScheduler(seed=3)
    scheduler.byzantine = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, scheduler)
    print(f"  decisions:       {result.decided}")
    print(f"  decision rounds: {result.decision_rounds}")
    print(f"  agreement={result.agreement} validity={result.validity} "
          f"deliveries={result.steps}")
    for r in range(result.rounds_reached):
        if sim.coin.revealed(r):
            print(f"  coin[{r}] = {sim.coin.peek(r)} "
                  f"(first read by P{sim.coin.first_accessor(r)})")


def round_statistics() -> None:
    print("\nexpected decision rounds (25 seeded runs each):")
    print(f"  {'protocol':12s} {'mixed 0,0,1':>12s} {'uniform 1,1,1':>14s}")
    for cls in PROTOCOLS:
        mixed = expected_rounds(cls, 4, 1, [0, 0, 1], runs=25)
        uniform = expected_rounds(cls, 4, 1, [1, 1, 1], runs=25)
        print(f"  {cls.__name__:12s} {mixed:12.2f} {uniform:14.2f}")


def biased_coin() -> None:
    print("\nε-Good coin (ε = 0.1): termination still almost-sure, "
          "just slower on the unlucky side:")
    decided_rounds = []
    for seed in range(10):
        sim = Simulation(MMR14Process, n=4, t=1, inputs=[1, 1, 0],
                         coin_seed=seed, epsilon=0.1)
        scheduler = RandomScheduler(seed=seed)
        scheduler.byzantine = EquivocatingByzantine(list(sim.byzantine))
        result = run(sim, scheduler, max_steps=100_000)
        if result.all_decided:
            decided_rounds.append(max(result.decision_rounds.values()) + 1)
    mean = sum(decided_rounds) / len(decided_rounds)
    print(f"  decided {len(decided_rounds)}/10 runs, "
          f"mean decision round {mean:.2f}")


def main() -> None:
    one_trace()
    round_statistics()
    biased_coin()


if __name__ == "__main__":
    main()
