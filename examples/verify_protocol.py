#!/usr/bin/env python3
"""Verify any benchmark protocol end to end (the Table II pipeline).

Usage::

    python examples/verify_protocol.py                 # list protocols
    python examples/verify_protocol.py cc85a           # verify one
    python examples/verify_protocol.py mmr14 --params n=4,t=1,f=1

For the chosen protocol this runs the full §V obligation bundle —
Inv1/Inv2 for Agreement/Validity, and the category-specific termination
conditions (C1/C2/C2′ or the binding conditions CB0-CB4) — on the
explicit checker, and the safety invariants on the parameterized
checker when the automaton is small (categories A/B).
"""

import sys

from repro.checker import ExplicitChecker
from repro.checker.parameterized import ParameterizedChecker
from repro.protocols import benchmark, by_name
from repro.spec import obligations_for


def parse_params(arg: str):
    result = {}
    for pair in arg.split(","):
        key, value = pair.split("=")
        result[key.strip()] = int(value)
    return result


def main(argv) -> int:
    if len(argv) < 2:
        print("protocols:")
        for entry in benchmark():
            print(f"  {entry.name:10s} category {entry.category}  "
                  f"(paper |L|/|R| = {entry.paper_size[0]}/{entry.paper_size[1]})")
        return 0

    entry = by_name(argv[1])
    valuation = dict(entry.small_valuation)
    for index, arg in enumerate(argv):
        if arg == "--params":
            valuation = parse_params(argv[index + 1])

    print(f"protocol {entry.name} (category {entry.category}), "
          f"parameters {valuation}")

    for target in ("agreement", "validity", "termination"):
        model = (
            entry.verification_model() if target == "termination" else entry.model()
        )
        checker = ExplicitChecker(model, valuation, max_states=900_000)
        report = checker.check_obligations(obligations_for(model, target))
        print(f"\n{target}: {report.verdict} "
              f"({report.states_explored} states, {report.time_seconds:.1f}s)")
        for result in report.results:
            print(f"  {result}")
        if report.counterexample is not None:
            print(f"  CE: {report.counterexample}")

    if entry.category in ("A", "B"):
        print("\nparameterized safety check (all admissible parameters):")
        model = entry.model()
        checker = ParameterizedChecker(model)
        for target in ("agreement", "validity"):
            report = checker.check_obligations(obligations_for(model, target))
            print(f"  {target}: {report.verdict} "
                  f"(nschemas={report.nschemas}, {report.time_seconds:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
