#!/usr/bin/env python3
"""Verify any benchmark protocol end to end (the Table II pipeline).

Usage::

    python examples/verify_protocol.py                 # list protocols
    python examples/verify_protocol.py cc85a           # verify one
    python examples/verify_protocol.py mmr14 --params n=4,t=1,f=1

For the chosen protocol this runs the full §V obligation bundle —
Inv1/Inv2 for Agreement/Validity, and the category-specific termination
conditions (C1/C2/C2′ or the binding conditions CB0-CB4) — on the
explicit engine, and the safety invariants on the parameterized engine
when the automaton is small (categories A/B).  Everything goes through
:mod:`repro.api`; the same pipeline is scriptable as
``python -m repro.harness verify <protocol>``.
"""

import sys

from repro import api
from repro.protocols import benchmark, by_name


def parse_params(arg: str):
    result = {}
    for pair in arg.split(","):
        key, value = pair.split("=")
        result[key.strip()] = int(value)
    return result


def main(argv) -> int:
    if len(argv) < 2:
        print("protocols:")
        for entry in benchmark():
            print(f"  {entry.name:10s} category {entry.category}  "
                  f"(paper |L|/|R| = {entry.paper_size[0]}/{entry.paper_size[1]})")
        return 0

    entry = by_name(argv[1])
    valuation = dict(entry.small_valuation)
    for index, arg in enumerate(argv):
        if arg == "--params":
            valuation = parse_params(argv[index + 1])

    print(f"protocol {entry.name} (category {entry.category}), "
          f"parameters {valuation}")

    result = api.verify(
        entry.name,
        valuation=valuation,
        limits=api.Limits(max_states=900_000),
    )
    for outcome in result.obligations:
        print(f"\n{outcome.target}: {outcome.verdict} "
              f"({outcome.states_explored} states, "
              f"{outcome.time_seconds:.1f}s)")
        for query in outcome.queries:
            print(f"  {query}")
        if outcome.counterexample is not None:
            print(f"  CE: {outcome.counterexample}")

    if entry.category in ("A", "B"):
        print("\nparameterized safety check (all admissible parameters):")
        parametric = api.verify(
            entry.name,
            targets=("agreement", "validity"),
            engine="parameterized",
        )
        for outcome in parametric.obligations:
            print(f"  {outcome.target}: {outcome.verdict} "
                  f"(nschemas={outcome.nschemas}, "
                  f"{outcome.time_seconds:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
