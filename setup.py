"""Shim so editable installs work on environments without the wheel package."""

from setuptools import setup

setup()
