"""repro — verifying randomized consensus protocols with common coins.

A from-scratch reproduction of *"Verifying Randomized Consensus
Protocols with Common Coins"* (Gao, Zhan, Wu, Zhang — DSN 2024):

* :mod:`repro.core` — threshold automata extended with common coins;
* :mod:`repro.counter` — counter-system semantics, adversaries and the
  round-rigid reduction theorems;
* :mod:`repro.spec` — the LTL−X property fragment and the paper's proof
  obligations (Inv1/Inv2, C1/C2/C2′, CB0–CB4);
* :mod:`repro.solver` — exact linear integer arithmetic solving (the
  SMT backend substitute);
* :mod:`repro.checker` — explicit-state and schema-based parameterized
  model checking (the ByMC substitute);
* :mod:`repro.protocols` — the 8 benchmark protocols of the paper;
* :mod:`repro.sim` — an executable asynchronous message-passing
  substrate reproducing the MMR14 adaptive-adversary attack;
* :mod:`repro.analysis`, :mod:`repro.harness` — table/figure
  regeneration (Tables I–IV).

Quickstart::

    from repro.protocols import naive_voting
    from repro.checker import ExplicitChecker
    model = naive_voting.model()
    checker = ExplicitChecker(model, {"n": 3, "f": 1})
    print(checker.check_agreement())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
