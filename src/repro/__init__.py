"""repro — verifying randomized consensus protocols with common coins.

A from-scratch reproduction of *"Verifying Randomized Consensus
Protocols with Common Coins"* (Gao, Zhan, Wu, Zhang — DSN 2024):

* :mod:`repro.core` — threshold automata extended with common coins;
* :mod:`repro.counter` — counter-system semantics, adversaries and the
  round-rigid reduction theorems;
* :mod:`repro.spec` — the LTL−X property fragment and the paper's proof
  obligations (Inv1/Inv2, C1/C2/C2′, CB0–CB4);
* :mod:`repro.solver` — exact linear integer arithmetic solving (the
  SMT backend substitute);
* :mod:`repro.checker` — explicit-state and schema-based parameterized
  model checking (the ByMC substitute);
* :mod:`repro.protocols` — the 8 benchmark protocols of the paper;
* :mod:`repro.sim` — an executable asynchronous message-passing
  substrate reproducing the MMR14 adaptive-adversary attack;
* :mod:`repro.api` — the public verification facade: tasks, pluggable
  engines, JSON-serializable reports and the parallel sweep runner;
* :mod:`repro.analysis`, :mod:`repro.harness` — table/figure
  regeneration (Tables I–IV) and the ``verify``/``sweep`` CLI.

Quickstart::

    from repro import api
    result = api.verify("mmr14", valuation={"n": 4, "t": 1, "f": 1})
    print(result.verdict)          # "violated" — the paper's §II bug
    report = api.sweep(processes=4)  # the whole Table II benchmark
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
