"""Analysis utilities: automaton rendering and milestone/schema studies."""

from repro.analysis.milestone_table import (
    MilestoneRow,
    schema_count_for,
    table_iv_rows,
)
from repro.analysis.render import ascii_summary, to_dot

__all__ = [
    "MilestoneRow",
    "ascii_summary",
    "schema_count_for",
    "table_iv_rows",
    "to_dot",
]
