"""Table IV: maximum schema counts vs. milestone counts.

The paper modifies ABY22 into five same-size automata with decreasing
milestone counts and *computes* (not checks) the maximum number of
schemas for the (CB0) and (Inv2) formulas.  This module regenerates the
table with our analytic counter (:func:`repro.checker.schemas.
count_schemas`): the reproduction target is the qualitative law —
every lost milestone shrinks the schema count combinatorially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.checker.milestones import CombinedModel, extract_milestones, precedence_order
from repro.checker.schemas import count_schemas
from repro.protocols import aby22
from repro.spec.properties import PropertyLibrary


@dataclass(frozen=True)
class MilestoneRow:
    """One row of Table IV."""

    name: str
    formula: str
    milestones: int
    max_nschemas: int


def schema_count_for(model, query) -> Tuple[int, int]:
    """(milestone count, analytic schema count) for a model and query."""
    rd = model.single_round()
    combined = CombinedModel(rd)
    milestones = extract_milestones(combined)
    predecessors = precedence_order(milestones, rd)
    return len(milestones), count_schemas(
        milestones, predecessors, len(query.events)
    )


def table_iv_rows(levels: range = range(5)) -> List[MilestoneRow]:
    """The CB0 block followed by the Inv2 block, as in the paper."""
    rows: List[MilestoneRow] = []
    for formula_name in ("cb0", "inv2"):
        for level in levels:
            model = aby22.variant(level)
            lib = PropertyLibrary(model)
            query = lib.cb(0) if formula_name == "cb0" else lib.inv2(0)
            n_milestones, n_schemas = schema_count_for(model, query)
            suffix = "" if level == 0 else f"-{level}"
            rows.append(
                MilestoneRow(
                    name=f"ABY22{suffix}",
                    formula=f"({formula_name.upper() if formula_name == 'cb0' else 'Inv2'})",
                    milestones=n_milestones,
                    max_nschemas=n_schemas,
                )
            )
    return rows
