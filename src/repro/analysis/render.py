"""Rendering threshold automata (the paper's Figs. 3–6) as text/DOT.

:func:`ascii_summary` prints the automaton as a structured rule table
(the form Table I uses); :func:`to_dot` emits Graphviz for the actual
figures.  Both cover process automata and coin automata (probabilistic
branches annotated with their probabilities).
"""

from __future__ import annotations

from typing import List, Union

from repro.core.automaton import ThresholdAutomaton
from repro.core.coin import CoinAutomaton
from repro.core.locations import LocKind

Automaton = Union[ThresholdAutomaton, CoinAutomaton]

_KIND_MARK = {
    LocKind.BORDER: "B",
    LocKind.INITIAL: "I",
    LocKind.INTERMEDIATE: " ",
    LocKind.FINAL: "F",
    LocKind.BORDER_COPY: "B'",
}


def ascii_summary(automaton: Automaton) -> str:
    """A Table-I-style listing: locations, then rules with guards/updates."""
    lines: List[str] = [f"automaton {automaton.name}"]
    lines.append(
        f"  shared: {', '.join(automaton.shared_vars) or '-'} | "
        f"coins: {', '.join(automaton.coin_vars) or '-'}"
    )
    lines.append("  locations:")
    for loc in automaton.locations:
        mark = _KIND_MARK[loc.kind]
        value = f" value={loc.value}" if loc.value is not None else ""
        decision = " decision" if getattr(loc, "decision", False) else ""
        lines.append(f"    [{mark:2s}] {loc.name}{value}{decision}")
    lines.append("  rules:")
    for rule in automaton.rules:
        lines.append(f"    {rule}")
    return "\n".join(lines)


def to_dot(automaton: Automaton, title: str = "") -> str:
    """Graphviz digraph reproducing the figure layout conventions:
    border locations as diamonds, decisions as double circles, round
    switches dashed, probabilistic branches labelled with probabilities.
    """
    lines = [f'digraph "{title or automaton.name}" {{', "  rankdir=LR;"]
    for loc in automaton.locations:
        shape = "circle"
        if loc.kind in (LocKind.BORDER, LocKind.BORDER_COPY):
            shape = "diamond"
        elif getattr(loc, "decision", False):
            shape = "doublecircle"
        elif loc.kind is LocKind.FINAL:
            shape = "Mcircle"
        lines.append(f'  "{loc.name}" [shape={shape}];')
    if isinstance(automaton, CoinAutomaton):
        for rule in automaton.rules:
            for target, prob in rule.branches:
                label = rule.name if rule.is_dirac else f"{rule.name} p={prob}"
                lines.append(
                    f'  "{rule.source}" -> "{target}" [label="{label}"];'
                )
    else:
        switch = set(automaton.round_switch_rules)
        for rule in automaton.rules:
            style = ', style=dashed' if rule in switch else ""
            guard = " & ".join(str(g) for g in rule.guard)
            label = rule.name if not guard else f"{rule.name}: {guard}"
            lines.append(
                f'  "{rule.source}" -> "{rule.target}" '
                f'[label="{label}"{style}];'
            )
    lines.append("}")
    return "\n".join(lines)
