"""``repro.api`` — the one entry point for all verification.

The paper's workflow is "pick a protocol, pick obligations, check them
under one or many parameter valuations, compare engines".  This package
is that workflow as a library:

* :class:`VerificationTask` — what to check: a registry protocol (or a
  custom model), a valuation, an obligation selection, an engine and a
  uniform resource :class:`Limits`;
* :class:`Engine` / :class:`ExplicitEngine` / :class:`ParameterizedEngine`
  — pluggable backends wrapping the explicit and schema checkers;
* :class:`TaskResult` / :class:`RunReport` — JSON-round-trippable
  results (``to_dict`` / ``from_dict``);
* :class:`SweepRunner` — a protocol × valuation × engine matrix fanned
  out over a ``multiprocessing`` pool, with deterministic result
  ordering and an optional on-disk cache.

Quickstart::

    from repro import api

    # one protocol, one valuation, all three consensus properties
    result = api.verify("mmr14", valuation={"n": 4, "t": 1, "f": 1})
    print(result.verdict)               # "violated" — the §II bug
    print(result.counterexample)        # the replayable schedule

    # the whole benchmark, four ways in parallel, cached on disk
    report = api.sweep(processes=4, cache_dir=".repro-cache")
    print(report.summary())

Everything downstream (the CLI ``python -m repro.harness verify|sweep``,
the Table II harness, the examples) goes through this module; nothing
outside engine internals constructs a checker directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import CheckError
from repro.protocols.registry import benchmark, by_name
from repro.api.engines import (
    ENGINES,
    Engine,
    ExplicitEngine,
    ParameterizedEngine,
    engine_for,
    engine_names,
    register_engine,
)
from repro.api.report import (
    CounterexampleData,
    ObligationOutcome,
    QueryOutcome,
    RunReport,
    TaskResult,
    worst_verdict,
)
from repro.api.journal import RunJournal
from repro.api.supervisor import RetryPolicy, SupervisedPool
from repro.api.sweep import ResultCache, SweepRunner, code_version, run_task
from repro.api.task import TARGETS, Limits, VerificationTask
from repro.counter.store import GraphStore
from repro.testing import FaultPlan

__all__ = [
    "CounterexampleData",
    "ENGINES",
    "Engine",
    "ExplicitEngine",
    "FaultPlan",
    "GraphStore",
    "Limits",
    "ObligationOutcome",
    "ParameterizedEngine",
    "QueryOutcome",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "RunReport",
    "SupervisedPool",
    "SweepRunner",
    "TARGETS",
    "TaskResult",
    "VerificationTask",
    "code_version",
    "engine_for",
    "engine_names",
    "register_engine",
    "run_task",
    "sweep",
    "task_matrix",
    "verify",
    "worst_verdict",
]


def verify(
    protocol: Optional[str] = None,
    *,
    model=None,
    valuation=None,
    target: Optional[str] = None,
    targets: Optional[Sequence[str]] = None,
    queries: Sequence = (),
    engine: str = "explicit",
    limits: Optional[Limits] = None,
    coin=None,
    cache_dir: Optional[str] = None,
) -> TaskResult:
    """Verify one protocol (or custom model) and return its result.

    The blocking single-task facade: builds a
    :class:`VerificationTask` and runs it on the requested engine in
    this process.  Engine errors propagate as exceptions (use
    :func:`sweep` / :func:`run_task` for error-capturing behaviour).

    Args:
        protocol: registry name (``"mmr14"``, …) — or pass ``model=``.
        model: a :class:`~repro.core.system.SystemModel` or factory.
        valuation: concrete parameters for the explicit engine;
            registry tasks default to their smallest admissible one.
        target: a single obligation target; ``targets`` for several.
            Omitting both checks agreement, validity and termination.
        queries: extra explicit :class:`~repro.spec.queries.ReachQuery`
            / ``GameQuery`` objects, reported under target "custom".
        engine: ``"explicit"`` | ``"parameterized"`` (or registered).
            ``"explicit-batch"`` / ``"explicit-scalar"`` pin the
            explicit engine's expansion path (frontier-batched numpy
            vs per-config); plain ``"explicit"`` follows the process
            default — batched when numpy is importable, unless
            ``REPRO_ENGINE_BATCH=0``.  Verdicts and
            ``states_explored`` are bit-identical across the three.
        limits: uniform resource budget (:class:`Limits`).
        coin: the :class:`~repro.core.coinspec.CoinSpec` (or spec
            string like ``"biased:1/4"``) the registry models are built
            under; None / ``"perfect"`` is the default fair coin and
            keeps the task's identity byte-identical to a coin-free
            one.  Registry tasks only.
        cache_dir: the sweep runner's on-disk :class:`ResultCache`
            directory; a previously-computed identical task (same
            protocol, valuation, targets, engine, limits *and* code
            version) is served from disk with ``cached=True`` instead
            of re-exploring, and a fresh cacheable verdict is stored
            for later ``verify`` and ``sweep`` runs alike.  Custom
            models / ad-hoc queries always run (no stable identity).
    """
    if target is not None and targets is not None:
        raise CheckError("pass either target= or targets=, not both")
    selected = (target,) if target is not None else tuple(targets or ())
    task = VerificationTask(
        protocol=protocol,
        model=model,
        valuation=dict(valuation) if valuation is not None else None,
        targets=selected,
        queries=tuple(queries),
        engine=engine,
        limits=limits or Limits(),
        coin=coin,
    )
    cache = ResultCache(cache_dir) if cache_dir else None
    key = cache.key_for(task) if cache is not None else None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = engine_for(task.engine).run(task)
    if key is not None and SweepRunner._cacheable(result):
        cache.put(key, result)
    return result


def task_matrix(
    protocols: Optional[Sequence[str]] = None,
    valuations: Optional[Sequence[dict]] = None,
    engines: Sequence[str] = ("explicit",),
    targets: Sequence[str] = TARGETS,
    limits: Optional[Limits] = None,
    coins: Sequence = (None,),
) -> list:
    """The protocol × coin × valuation × engine cross product as tasks.

    ``protocols=None`` means all 8 registry protocols;
    ``valuations=None`` uses each protocol's smallest admissible
    valuation.  Order is deterministic: protocol-major, then coin, then
    valuation, then engine — the order results appear in the sweep's
    report.  The default ``coins=(None,)`` (one axis point: the perfect
    coin) leaves the matrix exactly as it was before coin models
    existed.  The parameterized engine quantifies over *all*
    valuations, so it contributes one task per protocol × coin
    regardless of how many valuations the explicit tasks fan out over.
    """
    entries = (
        benchmark()
        if protocols is None
        else tuple(by_name(name) for name in protocols)
    )
    matrix = []
    for entry in entries:
        for coin in coins:
            candidates = valuations if valuations is not None else (None,)
            for position, valuation in enumerate(candidates):
                for engine in engines:
                    chosen = valuation
                    if engine == "parameterized":
                        if position:
                            continue  # valuation-independent: once is enough
                        chosen = None
                    matrix.append(
                        VerificationTask(
                            protocol=entry.name,
                            valuation=dict(chosen) if chosen else None,
                            targets=tuple(targets),
                            engine=engine,
                            limits=limits or Limits(),
                            coin=coin,
                        )
                    )
    return matrix


def sweep(
    tasks: Optional[Sequence[VerificationTask]] = None,
    *,
    protocols: Optional[Sequence[str]] = None,
    valuations: Optional[Sequence[dict]] = None,
    engines: Sequence[str] = ("explicit",),
    targets: Sequence[str] = TARGETS,
    limits: Optional[Limits] = None,
    coins: Optional[Sequence] = None,
    processes: int = 1,
    cache_dir: Optional[str] = None,
    scheduling: str = "flat",
    graph_store: Optional[str] = None,
    task_timeout: Optional[float] = None,
    retry=None,
    journal: Optional[str] = None,
    resume: bool = False,
    fault_plan=None,
) -> RunReport:
    """Run a sweep and return its :class:`RunReport`.

    Either pass an explicit ``tasks`` list, or let the keyword matrix
    arguments build one via :func:`task_matrix`.  ``processes > 1``
    fans tasks out over a *supervised* worker pool: a crashed worker is
    respawned and its tasks retried, a task hung past ``task_timeout``
    seconds is killed from outside, and transient failures (crashes,
    timeouts, ``max_seconds`` trips, I/O errors) retry under ``retry``
    (a :class:`RetryPolicy`, a max-attempts int, or None for the
    default bounded backoff-with-jitter policy) — no worker failure
    aborts the sweep.  Results keep task order either way, so reports
    are bit-identical across pool sizes.
    ``scheduling="sharded"`` groups tasks by protocol and runs each
    shard on one persistent warm worker (compiled program + engine
    caches shared across the shard's valuations) — same report, less
    recompilation; best for protocol × many-valuation matrices.
    ``graph_store=`` selects the persistent state-graph store: a
    directory path (per-file layout) or ``sqlite:<path>`` (single-file
    shared corpus for a whole sweep fleet).  Explored successor graphs
    are flushed there as delta segments per task and reloaded by later
    runs (fresh processes included), which speeds the tasks the result
    cache cannot skip — results stay bit-identical either way.
    With a ``cache_dir`` (or explicit ``journal=`` path) every
    completed task is appended to a sweep journal; ``resume=True``
    finishes an interrupted identical sweep by re-running only tasks
    without a journaled result.  ``fault_plan=`` installs a
    :class:`~repro.testing.faults.FaultPlan` in pool workers (chaos
    testing).
    """
    if tasks is None:
        tasks = task_matrix(
            protocols=protocols,
            valuations=valuations,
            engines=engines,
            targets=targets,
            limits=limits,
            coins=tuple(coins) if coins is not None else (None,),
        )
    return SweepRunner(
        processes=processes,
        cache_dir=cache_dir,
        scheduling=scheduling,
        graph_store_dir=graph_store,
        task_timeout=task_timeout,
        retry=retry,
        journal=journal,
        resume=resume,
        fault_plan=fault_plan,
    ).run(tasks)
