"""Pluggable verification engines.

An :class:`Engine` turns a :class:`~repro.api.task.VerificationTask`
into a :class:`~repro.api.report.TaskResult`.  Two adapters wrap the
existing checkers:

* :class:`ExplicitEngine` — exhaustive explicit-state checking at the
  task's concrete valuation (:class:`~repro.checker.explicit.
  ExplicitChecker`).  Handles every query shape and the Theorem 2 side
  conditions.
* :class:`ParameterizedEngine` — schema-based checking over *all*
  admissible valuations (:class:`~repro.checker.parameterized.
  ParameterizedChecker`).  A-queries only: game queries are reported
  ``unknown`` (explicit-only by Lemma 2's game reduction), and the
  Theorem 2 side conditions are *omitted* from the outcome — as in the
  paper's ByMC workflow, a parametric ``holds`` covers the A-queries
  alone and the side conditions are discharged on the explicit engine.

Both honour the same :class:`~repro.api.task.Limits` and record which
limit tripped per query.  New engines (remote backends, sharded
explicit search, …) plug in through :func:`register_engine` without
touching any caller.

Engines are deliberately stateless: all cross-run warmth lives in the
process-wide caches below them.  The checkers bind their models through
:func:`~repro.counter.program.shared_program` /
:func:`~repro.counter.system.shared_system`, so within one task the
agreement and validity targets share a bound system (termination uses
the refined model's own), and across tasks a persistent sharded-sweep
worker reuses the compiled program for every valuation of its shard.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.checker.explicit import ExplicitChecker
from repro.checker.parameterized import ParameterizedChecker
from repro.checker.result import UNKNOWN, CheckResult
from repro.errors import CheckError
from repro.spec.obligations import obligations_for
from repro.spec.queries import ReachQuery
from repro.api.report import ObligationOutcome, QueryOutcome, TaskResult
from repro.api.task import VerificationTask

__all__ = [
    "Engine",
    "ExplicitEngine",
    "ParameterizedEngine",
    "ENGINES",
    "engine_for",
    "engine_names",
    "register_engine",
]

#: Default budgets applied when a task's Limits leave a field None.
DEFAULT_MAX_STATES = 400_000
DEFAULT_MAX_NODES = 100_000


class Engine(Protocol):
    """The engine interface: run one task, return its result."""

    name: str

    def run(self, task: VerificationTask) -> TaskResult:
        """Check every target (and custom query) of ``task``."""
        ...


def _result(task: VerificationTask, outcomes, started: float) -> TaskResult:
    return TaskResult(
        task_id=task.task_id,
        protocol=task.protocol_name,
        engine=task.engine,
        valuation=task.resolved_valuation(strict=False),
        obligations=tuple(outcomes),
        time_seconds=time.perf_counter() - started,
    )


class ExplicitEngine:
    """Exhaustive explicit-state verification at one valuation.

    ``expansion`` pins the state-expansion path: ``"batch"`` (the
    frontier-batched vectorized engine), ``"scalar"`` (per-config
    expansion), or ``None`` for the process default (batch when numpy
    is importable and ``REPRO_ENGINE_BATCH`` is not ``0``).  Verdicts
    and ``states_explored`` are bit-identical across all three — the
    registered ``explicit-batch`` / ``explicit-scalar`` engine names
    exist so sweeps can pin and differential tests can compare them.
    """

    name = "explicit"

    def __init__(self, expansion: Optional[str] = None):
        self.expansion = expansion
        if expansion is not None:
            self.name = f"explicit-{expansion}"

    def run(self, task: VerificationTask) -> TaskResult:
        started = time.perf_counter()
        valuation = task.resolved_valuation()
        limits = task.limits
        outcomes: List[ObligationOutcome] = []
        for target in task.targets:
            # One checker per target; targets on the same model
            # structure (agreement/validity) share their bound system
            # and explored graph through shared_system underneath.
            checker = ExplicitChecker(
                task.model_for_target(target),
                valuation,
                max_states=(
                    limits.max_states
                    if limits.max_states is not None
                    else DEFAULT_MAX_STATES
                ),
                max_seconds=limits.max_seconds,
                expansion=self.expansion,
            )
            report = checker.check_obligations(
                obligations_for(checker.model, target)
            )
            outcomes.append(ObligationOutcome.from_report(report))
        if task.queries:
            outcomes.append(self._custom_queries(task, valuation))
        return _result(task, outcomes, started)

    def _custom_queries(self, task: VerificationTask, valuation) -> ObligationOutcome:
        limits = task.limits
        t0 = time.perf_counter()
        checker = ExplicitChecker(
            task.model_for_target(task.targets[0] if task.targets else "agreement"),
            valuation,
            max_states=(
                limits.max_states
                if limits.max_states is not None
                else DEFAULT_MAX_STATES
            ),
            max_seconds=limits.max_seconds,
            expansion=self.expansion,
        )
        with checker.shared_deadline():
            results = [checker.check(query) for query in task.queries]
        return ObligationOutcome(
            target="custom",
            queries=tuple(QueryOutcome.from_check_result(r) for r in results),
            time_seconds=time.perf_counter() - t0,
        )


class ParameterizedEngine:
    """Schema-based verification over all admissible valuations."""

    name = "parameterized"

    def run(self, task: VerificationTask) -> TaskResult:
        started = time.perf_counter()
        outcomes: List[ObligationOutcome] = []
        for target in task.targets:
            model = task.model_for_target(target)
            checker = self._checker(task, model)
            obligations = obligations_for(checker.model, target)
            t0 = time.perf_counter()
            # shared_deadline: the wall-clock budget covers the whole
            # bundle, matching the explicit engine's semantics.
            with checker.shared_deadline():
                results = [
                    checker.check_reach(query)
                    for query in obligations.reach_queries
                ]
            results.extend(
                self._unsupported(query.name) for query in obligations.game_queries
            )
            outcomes.append(
                ObligationOutcome(
                    target=target,
                    queries=tuple(
                        QueryOutcome.from_check_result(r) for r in results
                    ),
                    time_seconds=time.perf_counter() - t0,
                )
            )
        if task.queries:
            outcomes.append(self._custom_queries(task))
        return _result(task, outcomes, started)

    def _checker(self, task: VerificationTask, model) -> ParameterizedChecker:
        limits = task.limits
        return ParameterizedChecker(
            model,
            node_budget=(
                limits.max_nodes
                if limits.max_nodes is not None
                else DEFAULT_MAX_NODES
            ),
            max_seconds=limits.max_seconds,
        )

    @staticmethod
    def _unsupported(name: str) -> CheckResult:
        return CheckResult(
            query=name,
            verdict=UNKNOWN,
            detail="game queries require the explicit engine",
        )

    def _custom_queries(self, task: VerificationTask) -> ObligationOutcome:
        t0 = time.perf_counter()
        model = task.model_for_target(
            task.targets[0] if task.targets else "agreement"
        )
        checker = self._checker(task, model)
        results = []
        with checker.shared_deadline():
            for query in task.queries:
                if isinstance(query, ReachQuery):
                    results.append(checker.check_reach(query))
                else:
                    results.append(self._unsupported(query.name))
        return ObligationOutcome(
            target="custom",
            queries=tuple(QueryOutcome.from_check_result(r) for r in results),
            time_seconds=time.perf_counter() - t0,
        )


def _explicit_batch() -> ExplicitEngine:
    return ExplicitEngine(expansion="batch")


def _explicit_scalar() -> ExplicitEngine:
    return ExplicitEngine(expansion="scalar")


#: Engine registry; extended at runtime via :func:`register_engine`.
#: ``explicit`` follows the process default expansion (batched when
#: numpy is importable, unless ``REPRO_ENGINE_BATCH=0``); the
#: ``explicit-batch`` / ``explicit-scalar`` names pin one path — same
#: verdicts and ``states_explored``, different hot loop.
ENGINES: Dict[str, Callable[[], Engine]] = {
    ExplicitEngine.name: ExplicitEngine,
    ParameterizedEngine.name: ParameterizedEngine,
    "explicit-batch": _explicit_batch,
    "explicit-scalar": _explicit_scalar,
}

#: Engines available in a freshly-imported worker process.  Runtime
#: registrations only exist in the registering process, so the sweep
#: runner keeps tasks on non-builtin engines inline.
BUILTIN_ENGINES = frozenset(ENGINES)


def register_engine(name: str, factory: Callable[[], Engine]) -> None:
    """Add (or override) an engine under ``name``."""
    ENGINES[name] = factory


def engine_names() -> Tuple[str, ...]:
    return tuple(sorted(ENGINES))


def engine_for(name: str) -> Engine:
    try:
        factory = ENGINES[name]
    except KeyError:
        raise CheckError(
            f"unknown engine {name!r}; registered: {', '.join(engine_names())}"
        ) from None
    return factory()
