"""Append-only sweep journal: resume an interrupted sweep where it died.

The :class:`~repro.api.sweep.ResultCache` already persists *cacheable*
results across runs, but an interrupted sweep still re-runs everything
the cache refuses to hold (error results, ``max_seconds`` trips, tasks
with unpicklable custom models).  The journal closes that gap: the
sweep supervisor appends one JSON line per **completed** task — the
full :class:`~repro.api.report.TaskResult` payload plus its attempt
count — and a ``resume=True`` run serves journaled results verbatim,
re-executing only tasks with no (or only *error*) records.  Because
replay happens by input index against an identical task list, a
resumed report stays input-ordered and bit-identical to what the
uninterrupted run would have produced.

File format — one JSON object per line:

* line 1, the header: ``{"magic", "format", "digest", "version"}``
  where ``digest`` fingerprints the sweep (the ordered task identity
  list + code version, see :func:`sweep_digest`).  A resume against a
  journal whose header doesn't match the current sweep **discards**
  the journal and starts fresh — stale journals must never leak
  results into a different sweep;
* each following line: ``{"index", "key", "result", "attempts",
  "timed_out"}``.  The ``key`` double-checks the task at that index.

The journal tolerates the crashes it exists for: a torn final line
(the supervisor died mid-append) is skipped, and duplicate records for
one index resolve last-wins.  Everything here is supervisor-side only;
workers never touch the journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.version import stable_digest

__all__ = ["JournalRecord", "RunJournal", "sweep_digest"]

_MAGIC = "repro-sweep-journal"
_FORMAT = 1


def sweep_digest(tasks: Sequence, version: str) -> str:
    """Fingerprint a sweep: the ordered task identities + code version.

    Uses each task's :attr:`~repro.api.task.VerificationTask.journal_key`
    (task id + resource limits), so editing *any* task of the sweep —
    or reordering them — invalidates old journals, while re-invoking
    the same sweep command reuses them.
    """
    return stable_digest(json.dumps(
        {"tasks": [task.journal_key for task in tasks], "version": version},
        sort_keys=True,
    ))


@dataclass(frozen=True)
class JournalRecord:
    """One completed task as journaled (``result`` is a to_dict payload)."""

    index: int
    key: str
    result: dict
    attempts: int = 1
    timed_out: bool = False

    @property
    def is_error(self) -> bool:
        return bool(self.result.get("error"))

    def to_line(self) -> str:
        return json.dumps(
            {
                "index": self.index,
                "key": self.key,
                "result": self.result,
                "attempts": self.attempts,
                "timed_out": self.timed_out,
            },
            sort_keys=True,
        )


class RunJournal:
    """The journal file for one sweep (see the module doc).

    Usage: construct with the sweep's digest, call :meth:`load` once
    (``resume=False`` truncates; ``resume=True`` returns the replayable
    records), then :meth:`append` each completed task and
    :meth:`close` when the sweep finishes.
    """

    def __init__(self, path, digest: str, version: str):
        self.path = Path(path)
        self.digest = digest
        self.version = version
        self._handle = None

    # -- reading -------------------------------------------------------
    def load(self, resume: bool) -> Dict[int, JournalRecord]:
        """Return replayable records by index; prepare for appending.

        Without ``resume`` (or when the existing journal's header does
        not match this sweep) any existing journal is discarded and a
        fresh one is started.  Error records are *not* replayable —
        resume exists to finish a sweep, not to pin its failures — so
        they are dropped here and their tasks re-execute.
        """
        records: Dict[int, JournalRecord] = {}
        lines: List[str] = []
        if resume and self.path.exists():
            try:
                lines = self.path.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
        if lines and self._header_matches(lines[0]):
            for line in lines[1:]:
                record = self._parse(line)
                if record is not None and not record.is_error:
                    records[record.index] = record
            self._open(fresh=False)
        else:
            records.clear()
            self._open(fresh=True)
        return records

    def _header_matches(self, line: str) -> bool:
        try:
            header = json.loads(line)
        except (json.JSONDecodeError, ValueError):
            return False
        return (
            isinstance(header, dict)
            and header.get("magic") == _MAGIC
            and header.get("format") == _FORMAT
            and header.get("digest") == self.digest
            and header.get("version") == self.version
        )

    @staticmethod
    def _parse(line: str) -> Optional[JournalRecord]:
        try:
            payload = json.loads(line)
            return JournalRecord(
                index=int(payload["index"]),
                key=str(payload["key"]),
                result=dict(payload["result"]),
                attempts=int(payload.get("attempts", 1)),
                timed_out=bool(payload.get("timed_out", False)),
            )
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            return None  # torn/corrupt line — exactly what resume tolerates

    # -- writing -------------------------------------------------------
    def _open(self, fresh: bool) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if fresh or not self.path.exists():
                header = json.dumps(
                    {
                        "magic": _MAGIC,
                        "format": _FORMAT,
                        "digest": self.digest,
                        "version": self.version,
                    },
                    sort_keys=True,
                )
                self._handle = open(self.path, "w", encoding="utf-8")
                self._handle.write(header + "\n")
                self._handle.flush()
            else:
                self._handle = open(self.path, "a", encoding="utf-8")
        except OSError:
            self._handle = None  # journaling is best-effort, like the cache

    def append(self, record: JournalRecord) -> None:
        """Persist one completed task (best-effort, crash-tolerant).

        Flushed to the OS per record — that survives the failure mode
        resume exists for (the sweep process dying); a per-record
        ``fsync`` would tax every task for machine-crash durability the
        journal doesn't promise (a torn tail is tolerated on load).
        """
        if self._handle is None:
            return
        try:
            self._handle.write(record.to_line() + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
