"""JSON-serializable verification reports.

This is the data side of the public API: everything a verification run
produces is captured in a small hierarchy of frozen dataclasses —

``RunReport`` (one sweep)
  └── ``TaskResult`` (one :class:`~repro.api.task.VerificationTask`)
        └── ``ObligationOutcome`` (one target: agreement / validity / …)
              └── ``QueryOutcome`` (one A- or E-query)
                    └── ``CounterexampleData`` (a replayable witness)

Every level round-trips through ``to_dict`` / ``from_dict`` (plain JSON
types only), so reports can be cached on disk, shipped across process
boundaries, diffed between engine versions, and compared with ``==``
after a round trip.  These supersede the checker-internal
:class:`~repro.checker.result.ObligationReport` at call sites: the
harness, the CLI and the examples consume *these* objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.checker.result import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    Counterexample,
    ObligationReport,
)
from repro.counter.actions import Action

__all__ = [
    "CounterexampleData",
    "QueryOutcome",
    "ObligationOutcome",
    "TaskResult",
    "RunReport",
    "worst_verdict",
]

#: Severity order for aggregation: any violation dominates, any unknown
#: taints, otherwise everything holds.
_SEVERITY = {VIOLATED: 3, "error": 2, UNKNOWN: 1, HOLDS: 0}


def worst_verdict(verdicts) -> str:
    """Aggregate verdict: violated > error > unknown > holds."""
    worst = HOLDS
    for verdict in verdicts:
        if _SEVERITY.get(verdict, 1) > _SEVERITY[worst]:
            worst = verdict
    return worst


@dataclass(frozen=True)
class CounterexampleData:
    """A serializable counterexample: valuation + placement + schedule.

    ``schedule`` stores each action as ``(rule, round, branch)`` so the
    witness can be rebuilt into :class:`~repro.counter.actions.Action`
    objects and replayed on the explicit semantics.
    """

    valuation: Dict[str, int]
    initial_placement: Dict[str, int]
    schedule: Tuple[Tuple[str, int, Optional[str]], ...]
    description: str = ""

    @classmethod
    def from_counterexample(cls, ce: Counterexample) -> "CounterexampleData":
        return cls(
            valuation=dict(ce.valuation),
            initial_placement=dict(ce.initial_placement),
            schedule=tuple(
                (action.rule, action.round, action.branch)
                for action in ce.schedule
            ),
            description=ce.description,
        )

    def actions(self) -> Tuple[Action, ...]:
        """The schedule as replayable actions."""
        return tuple(Action(rule, rnd, branch) for rule, rnd, branch in self.schedule)

    def to_dict(self) -> dict:
        return {
            "valuation": dict(self.valuation),
            "initial_placement": dict(self.initial_placement),
            "schedule": [list(step) for step in self.schedule],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CounterexampleData":
        return cls(
            valuation={k: int(v) for k, v in data["valuation"].items()},
            initial_placement={
                k: int(v) for k, v in data["initial_placement"].items()
            },
            schedule=tuple(
                (rule, int(rnd), branch)
                for rule, rnd, branch in data["schedule"]
            ),
            description=data.get("description", ""),
        )

    def __str__(self) -> str:
        steps = " ".join(
            f"({rule}{'@' + branch if branch is not None else ''}, {rnd})"
            for rule, rnd, branch in self.schedule
        )
        placement = ", ".join(
            f"{name}={count}"
            for name, count in self.initial_placement.items()
            if count
        )
        return (
            f"parameters {self.valuation}; start [{placement}]; "
            f"schedule: {steps}"
        )


@dataclass(frozen=True)
class QueryOutcome:
    """Outcome of one query (mirrors the checker's ``CheckResult``)."""

    query: str
    verdict: str
    states_explored: int = 0
    nschemas: int = 0
    time_seconds: float = 0.0
    #: which resource limit forced an ``unknown``:
    #: ``"max_states"`` | ``"max_nodes"`` | ``"max_seconds"`` | ``""``
    limit_tripped: str = ""
    detail: str = ""
    counterexample: Optional[CounterexampleData] = None

    @classmethod
    def from_check_result(cls, result: CheckResult) -> "QueryOutcome":
        ce = result.counterexample
        return cls(
            query=result.query,
            verdict=result.verdict,
            states_explored=result.states_explored,
            nschemas=result.nschemas,
            time_seconds=result.time_seconds,
            limit_tripped=result.limit,
            detail=result.detail,
            counterexample=(
                CounterexampleData.from_counterexample(ce) if ce else None
            ),
        )

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "verdict": self.verdict,
            "states_explored": self.states_explored,
            "nschemas": self.nschemas,
            "time_seconds": self.time_seconds,
            "limit_tripped": self.limit_tripped,
            "detail": self.detail,
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryOutcome":
        ce = data.get("counterexample")
        return cls(
            query=data["query"],
            verdict=data["verdict"],
            states_explored=int(data.get("states_explored", 0)),
            nschemas=int(data.get("nschemas", 0)),
            time_seconds=float(data.get("time_seconds", 0.0)),
            limit_tripped=data.get("limit_tripped", ""),
            detail=data.get("detail", ""),
            counterexample=CounterexampleData.from_dict(ce) if ce else None,
        )

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.query}: {self.verdict}{extra}"


@dataclass(frozen=True)
class ObligationOutcome:
    """Aggregated outcome over one target's obligation bundle."""

    target: str
    queries: Tuple[QueryOutcome, ...] = ()
    side_conditions: Dict[str, bool] = field(default_factory=dict)
    time_seconds: float = 0.0
    #: side conditions cut off by a resource budget, mapped to the
    #: limit that cut them ("max_seconds" | "max_states") — neither
    #: failed nor established.
    skipped_side_conditions: Dict[str, str] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        verdict = worst_verdict(q.verdict for q in self.queries)
        if verdict == HOLDS and (
            not all(self.side_conditions.values())
            or self.skipped_side_conditions
        ):
            return UNKNOWN
        return verdict

    @property
    def counterexample(self) -> Optional[CounterexampleData]:
        for query in self.queries:
            if query.counterexample is not None:
                return query.counterexample
        return None

    @property
    def states_explored(self) -> int:
        return sum(q.states_explored for q in self.queries)

    @property
    def nschemas(self) -> int:
        return sum(q.nschemas for q in self.queries)

    @property
    def limit_tripped(self) -> str:
        for limit in self.limits_tripped:
            return limit
        return ""

    @property
    def limits_tripped(self) -> Tuple[str, ...]:
        """*Every* limit that tripped in this bundle (no masking)."""
        limits = [q.limit_tripped for q in self.queries if q.limit_tripped]
        limits.extend(self.skipped_side_conditions.values())
        return tuple(limits)

    @classmethod
    def from_report(cls, report: ObligationReport) -> "ObligationOutcome":
        return cls(
            target=report.target,
            queries=tuple(
                QueryOutcome.from_check_result(r) for r in report.results
            ),
            side_conditions=dict(report.side_conditions),
            time_seconds=report.time_seconds,
            skipped_side_conditions=dict(report.skipped_side_conditions),
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "queries": [q.to_dict() for q in self.queries],
            "side_conditions": dict(self.side_conditions),
            "time_seconds": self.time_seconds,
            "skipped_side_conditions": dict(self.skipped_side_conditions),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObligationOutcome":
        return cls(
            target=data["target"],
            queries=tuple(QueryOutcome.from_dict(q) for q in data["queries"]),
            side_conditions={
                k: bool(v) for k, v in data.get("side_conditions", {}).items()
            },
            time_seconds=float(data.get("time_seconds", 0.0)),
            skipped_side_conditions=dict(
                data.get("skipped_side_conditions", {})
            ),
        )

    def __str__(self) -> str:
        lines = [f"{self.target}: {self.verdict}"]
        for query in self.queries:
            lines.append(f"  {query}")
        for name, ok in self.side_conditions.items():
            lines.append(f"  [side] {name}: {'ok' if ok else 'FAILED'}")
        for name, limit in self.skipped_side_conditions.items():
            lines.append(f"  [side] {name}: skipped ({limit})")
        return "\n".join(lines)


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one verification task (all its targets)."""

    task_id: str
    protocol: str
    engine: str
    valuation: Dict[str, int] = field(default_factory=dict)
    obligations: Tuple[ObligationOutcome, ...] = ()
    time_seconds: float = 0.0
    #: served from the sweep runner's on-disk cache
    cached: bool = False
    #: non-empty when the engine raised instead of returning a verdict
    error: str = ""
    #: dispatch attempts the supervised pool spent on this task (1 =
    #: first try succeeded; >1 = retried after a crash/timeout/transient)
    attempts: int = 1
    #: the supervisor's wall-clock ``task_timeout`` killed this task at
    #: least once (the final result may still be a success via retry)
    timed_out: bool = False
    #: served by collapsing onto another request's identical in-flight
    #: task (the verification service's dedup; this request never
    #: triggered a computation of its own)
    deduped: bool = False

    @property
    def verdict(self) -> str:
        if self.error:
            return "error"
        return worst_verdict(o.verdict for o in self.obligations)

    @property
    def counterexample(self) -> Optional[CounterexampleData]:
        for outcome in self.obligations:
            if outcome.counterexample is not None:
                return outcome.counterexample
        return None

    @property
    def queries(self) -> Tuple[QueryOutcome, ...]:
        return tuple(q for o in self.obligations for q in o.queries)

    @property
    def states_explored(self) -> int:
        return sum(o.states_explored for o in self.obligations)

    @property
    def nschemas(self) -> int:
        return sum(o.nschemas for o in self.obligations)

    @property
    def limit_tripped(self) -> str:
        for outcome in self.obligations:
            if outcome.limit_tripped:
                return outcome.limit_tripped
        return ""

    def outcome(self, target: str) -> ObligationOutcome:
        for candidate in self.obligations:
            if candidate.target == target:
                return candidate
        raise KeyError(f"task {self.task_id!r} has no target {target!r}")

    def as_cached(self) -> "TaskResult":
        return replace(self, cached=True)

    def as_deduped(self) -> "TaskResult":
        return replace(self, deduped=True)

    def to_dict(self) -> dict:
        data = {
            "task_id": self.task_id,
            "protocol": self.protocol,
            "engine": self.engine,
            "valuation": dict(self.valuation),
            "verdict": self.verdict,
            "obligations": [o.to_dict() for o in self.obligations],
            "time_seconds": self.time_seconds,
            "cached": self.cached,
            "error": self.error,
        }
        # Emitted only when non-default: payloads from undisturbed runs
        # stay byte-identical to pre-supervisor ones (cache entries,
        # golden fixtures, cross-pool-size determinism).
        if self.attempts != 1:
            data["attempts"] = self.attempts
        if self.timed_out:
            data["timed_out"] = True
        if self.deduped:
            data["deduped"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TaskResult":
        return cls(
            task_id=data["task_id"],
            protocol=data["protocol"],
            engine=data["engine"],
            valuation={k: int(v) for k, v in data.get("valuation", {}).items()},
            obligations=tuple(
                ObligationOutcome.from_dict(o) for o in data.get("obligations", [])
            ),
            time_seconds=float(data.get("time_seconds", 0.0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error", ""),
            attempts=int(data.get("attempts", 1)),
            timed_out=bool(data.get("timed_out", False)),
            deduped=bool(data.get("deduped", False)),
        )

    def __str__(self) -> str:
        header = f"{self.task_id}: {self.verdict}"
        if self.error:
            return f"{header} [{self.error}]"
        lines = [header]
        for outcome in self.obligations:
            lines.extend(f"  {line}" for line in str(outcome).splitlines())
        return "\n".join(lines)


@dataclass(frozen=True)
class RunReport:
    """Outcome of a whole sweep, in deterministic task order."""

    results: Tuple[TaskResult, ...]
    processes: int = 1
    code_version: str = ""
    time_seconds: float = 0.0
    cache_hits: int = 0
    #: pool workers respawned after a crash or supervisor timeout
    worker_restarts: int = 0
    #: tasks served verbatim from the sweep journal (``--resume``)
    resumed: int = 0
    #: the serving daemon's id for this request ("" = a local run)
    request_id: str = ""
    #: tasks served by collapsing onto another request's in-flight
    #: computation (the verification service's dedup)
    deduped: int = 0

    @property
    def verdict(self) -> str:
        return worst_verdict(r.verdict for r in self.results)

    def result_for(self, task_id: str) -> TaskResult:
        for result in self.results:
            if result.task_id == task_id:
                return result
        raise KeyError(f"no result for task {task_id!r}")

    def to_dict(self) -> dict:
        data = {
            "results": [r.to_dict() for r in self.results],
            "processes": self.processes,
            "code_version": self.code_version,
            "time_seconds": self.time_seconds,
            "cache_hits": self.cache_hits,
        }
        # Same non-default rule as TaskResult.to_dict: undisturbed runs
        # serialize exactly as they did before supervised dispatch.
        if self.worker_restarts:
            data["worker_restarts"] = self.worker_restarts
        if self.resumed:
            data["resumed"] = self.resumed
        if self.request_id:
            data["request_id"] = self.request_id
        if self.deduped:
            data["deduped"] = self.deduped
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            results=tuple(TaskResult.from_dict(r) for r in data["results"]),
            processes=int(data.get("processes", 1)),
            code_version=data.get("code_version", ""),
            time_seconds=float(data.get("time_seconds", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            worker_restarts=int(data.get("worker_restarts", 0)),
            resumed=int(data.get("resumed", 0)),
            request_id=data.get("request_id", ""),
            deduped=int(data.get("deduped", 0)),
        )

    def summary(self) -> str:
        """One line per task: id, verdict, states, wall clock."""
        lines = []
        for result in self.results:
            flags = []
            if result.cached:
                flags.append("cached")
            if result.limit_tripped:
                flags.append(f"limit:{result.limit_tripped}")
            if result.attempts > 1:
                flags.append(f"attempts:{result.attempts}")
            if result.timed_out:
                flags.append("timed-out")
            if result.deduped:
                flags.append("deduped")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"{result.task_id:48s} {result.verdict:9s} "
                f"{result.states_explored:>9d} states "
                f"{result.time_seconds:7.2f}s{suffix}"
            )
        tail = (
            f"-- {len(self.results)} tasks, verdict {self.verdict}, "
            f"{self.cache_hits} cache hits, {self.processes} processes, "
            f"{self.time_seconds:.2f}s wall clock"
        )
        if self.resumed:
            tail += f", {self.resumed} resumed"
        if self.worker_restarts:
            tail += f", {self.worker_restarts} worker restarts"
        if self.deduped:
            tail += f", {self.deduped} deduped"
        if self.request_id:
            tail += f" (request {self.request_id})"
        lines.append(tail)
        return "\n".join(lines)
