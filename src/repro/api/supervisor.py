"""Supervised worker pool: timeouts, crash recovery, bounded retries.

``multiprocessing.Pool`` is the wrong substrate for a long-running
sweep fleet: a blocking ``pool.map`` raises (killing the whole sweep)
when one worker is OOM-killed or segfaulted, and a hung task stalls the
run forever — the engine's ``max_seconds`` limit is cooperative, so
nothing outside the worker enforces wall clock.  This module replaces
it with a small *supervised* pool built directly on
``multiprocessing.Process`` + pipes:

* each worker runs a simple recv/execute/send loop over a private
  duplex :class:`~multiprocessing.connection.Connection`; the
  supervisor multiplexes every worker's pipe *and* process sentinel
  through :func:`multiprocessing.connection.wait`, so worker death is
  an observable event, not a hang;
* a *job* is an ordered list of ``(index, payload)`` items (one item
  for flat scheduling, a whole protocol shard for sharded); workers
  report each item's result as it completes, so the supervisor always
  knows exactly which items of an in-flight job are still unfinished;
* a per-item wall-clock deadline (``task_timeout``) is enforced from
  the supervisor side: a worker that blows it is SIGKILLed, a
  replacement is forked, and the job's unfinished items are
  reassigned;
* worker death (crash, OOM-kill, fault injection) is handled the same
  way: the dead worker's unfinished items are retried on a fresh
  worker under the :class:`RetryPolicy`, or — attempts exhausted —
  recorded as failure results built by the caller's ``failure``
  factory.  **No failure mode raises out of**
  :meth:`SupervisedPool.run`; the pool always completes with one
  result per item;
* *completed* results the caller classifies as transient (via the
  ``transient`` predicate — e.g. ``max_seconds`` limit trips) are also
  retried under the same policy, with exponential backoff **plus
  deterministic jitter** so a fleet of retrying workers never thunders
  back in lockstep.

The pool is deliberately generic — payloads, results, and the three
policy callbacks (``fallback``, ``failure``, ``transient``) are the
caller's — so :mod:`repro.api.sweep` stays the only module that knows
what a :class:`~repro.api.report.TaskResult` is.

Two lifecycles share the same run loop:

* **one-shot** (the sweep runner): :meth:`SupervisedPool.run` spawns
  workers, executes the jobs, and reaps everything before returning;
* **persistent** (the verification service): :meth:`SupervisedPool.
  start` spawns the worker fleet once, every subsequent ``run`` call
  reuses it — compiled programs, interned state and warm graph-store
  caches survive across batches — and :meth:`SupervisedPool.close`
  reaps the fleet at daemon shutdown.  A persistent ``run`` may also
  be interrupted through its ``stop`` callable (the daemon's SIGTERM
  path): already-reported results are drained and returned, unfinished
  items are simply absent from the outcome, and the pool must then be
  ``close``\\ d.
"""

from __future__ import annotations

import itertools
import multiprocessing
import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = ["RetryPolicy", "PoolOutcome", "SupervisedPool"]

#: Idle poll ceiling: the loop is event-driven (pipe readiness, process
#: sentinels), so this only bounds how late a backoff-delayed retry job
#: can be promoted.
_POLL_SECONDS = 0.1

#: A worker that dies *without* any job assigned died in its own
#: startup path (initializer crash, import failure) — retrying cannot
#: help.  After this many consecutive idle deaths the pool declares
#: itself broken and fails the remaining items instead of fork-looping.
_MAX_IDLE_DEATHS = 5

#: Persistent mode: how long the end-of-batch settle pass waits for a
#: worker to acknowledge its job (run the finalizer, send ``done``)
#: before killing and replacing it.  Every item result has already
#: been received by then, so only a wedged *finalizer* can make a
#: worker miss this generous deadline.
_SETTLE_SECONDS = 60.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    One policy covers every transient failure class of a sweep: worker
    crashes and supervisor timeouts (the task never completed — retrying
    is always safe), and completed-but-transient results the caller's
    ``transient`` predicate flags (``max_seconds`` limit trips, store
    and cache ``OSError``\\ s — exactly the classes the result cache
    already refuses to cache).

    ``delay`` is ``base_delay * backoff**(attempt-1)`` capped at
    ``max_delay``, then spread by ``±jitter`` (a fraction of the
    delay).  The jitter is *seeded* — by the policy seed, the retry
    key (normally the task id) and the attempt number — so reruns of a
    chaos test back off identically, while different tasks of one
    fleet still decorrelate (the point of jitter: synchronized writers
    retrying in lockstep re-collide forever; see
    :class:`~repro.counter.store.SQLiteBackend`'s locked/busy loop for
    the same fix at the database layer).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    @classmethod
    def of(cls, value: Union[None, int, "RetryPolicy"]) -> "RetryPolicy":
        """Coerce ``None`` (defaults) / an attempt count / a policy."""
        if value is None:
            return cls()
        if isinstance(value, RetryPolicy):
            return value
        return cls(max_attempts=max(1, int(value)))

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to back off before retry ``attempt`` (1-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.backoff ** max(0, attempt - 1))
        if self.jitter <= 0 or raw <= 0:
            return raw
        # random.Random(str) seeds via SHA-512 of the text: stable
        # across processes and PYTHONHASHSEED values.
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        spread = raw * min(1.0, self.jitter)
        return raw - spread + rng.random() * 2.0 * spread


@dataclass
class PoolOutcome:
    """What a supervised run produced, keyed by item index."""

    results: Dict[int, Any] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    timed_out: Dict[int, bool] = field(default_factory=dict)
    worker_restarts: int = 0
    retries: int = 0


class _Job:
    """A dispatchable unit: the not-yet-completed items of one job."""

    __slots__ = ("items", "ready_at")

    def __init__(self, items: List[Tuple[int, Any]], ready_at: float = 0.0):
        self.items = items
        self.ready_at = ready_at


class _Worker:
    """One supervised worker process + its private pipe."""

    __slots__ = ("process", "conn", "job", "seq", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.job: Optional[_Job] = None
        self.seq: Optional[int] = None
        self.deadline: Optional[float] = None


def _worker_main(conn, target, initializer, initargs, fallback, finalizer,
                 fault_plan) -> None:
    """The worker loop: recv a job, run its items, report each result.

    Every item produces exactly one ``("item", seq, index, result)``
    message even when the *result* itself cannot cross the pipe: a
    result that fails to pickle is degraded through ``fallback`` at
    this boundary (the worker-side half of the "one bad task must
    never kill the sweep" contract — tasks are pre-checked for
    picklability by the dispatcher, results can only be checked here).
    The fault hook fires *before* each item, so an injected ``kill``
    dies with the item observably in flight.
    """
    from repro.testing import faults

    if fault_plan is not None:
        faults.install(fault_plan)
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        seq, items = message
        for index, payload in items:
            try:
                faults.fire("worker.task", _describe(payload))
                result = target(payload)
            except BaseException as exc:  # noqa: BLE001 — worker boundary
                result = fallback(payload, exc)
            try:
                conn.send(("item", seq, index, result))
            except (EOFError, BrokenPipeError):
                return  # supervisor went away; nothing left to report to
            except Exception as exc:  # noqa: BLE001 — unpicklable result
                conn.send(("item", seq, index, fallback(payload, exc)))
        if finalizer is not None:
            try:
                finalizer()
            except Exception:  # noqa: BLE001 — best-effort epilogue
                pass
        try:
            conn.send(("done", seq))
        except (EOFError, BrokenPipeError, OSError):
            return


def _describe(payload) -> str:
    return str(getattr(payload, "task_id", "") or payload)


class SupervisedPool:
    """Run jobs of items across supervised workers (see the module doc).

    Args:
        processes: worker count ceiling (actual = min(processes, jobs)).
        target: ``target(payload) -> result``, module-level picklable.
        initializer / initargs: per-worker setup (run on every respawn
            too, so replacement workers are indistinguishable).
        task_timeout: supervisor-enforced wall-clock seconds per
            *item*; ``None`` disables (the deadline resets as each item
            of a shard job completes).
        retry: a :class:`RetryPolicy` (or int / None via
            :meth:`RetryPolicy.of`).
        fallback: ``fallback(payload, exc) -> result`` — worker-side
            degradation for raising targets and unpicklable results.
        failure: ``failure(payload, kind, detail) -> result`` —
            supervisor-side terminal result when attempts are
            exhausted (kinds: ``"WorkerCrash"``,
            ``"SupervisorTimeout"``, ``"PoolBroken"``).
        transient: ``transient(result) -> bool`` — completed results to
            retry under the policy (None retries nothing completed).
        finalizer: best-effort per-job epilogue in the worker (the
            sweep flushes shard graphs here).
        fault_plan: a :class:`~repro.testing.faults.FaultPlan`
            installed in workers (never in the supervisor) before the
            initializer runs.
    """

    def __init__(
        self,
        processes: int,
        target: Callable[[Any], Any],
        *,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        task_timeout: Optional[float] = None,
        retry: Union[None, int, RetryPolicy] = None,
        fallback: Optional[Callable[[Any, BaseException], Any]] = None,
        failure: Optional[Callable[[Any, str, str], Any]] = None,
        transient: Optional[Callable[[Any], bool]] = None,
        finalizer: Optional[Callable[[], None]] = None,
        fault_plan=None,
    ):
        self.processes = max(1, int(processes))
        self.target = target
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.task_timeout = float(task_timeout) if task_timeout else None
        self.retry = RetryPolicy.of(retry)
        self.fallback = fallback or (lambda payload, exc: exc)
        self.failure = failure or (
            lambda payload, kind, detail: RuntimeError(f"{kind}: {detail}")
        )
        self.transient = transient
        self.finalizer = finalizer
        self.fault_plan = fault_plan
        self._context = multiprocessing.get_context()
        self._seq = itertools.count()
        #: The persistent worker fleet (``start``/``close``), or None
        #: when the pool runs in one-shot mode.
        self._workers: Optional[List[_Worker]] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the persistent worker fleet (idempotent).

        After ``start``, every :meth:`run` call reuses the same
        ``processes`` workers — their process-wide caches stay warm
        across batches — until :meth:`close` reaps them.
        """
        if self._workers is None:
            self._workers = [self._spawn() for _ in range(self.processes)]

    @property
    def persistent(self) -> bool:
        """Whether a started (and not yet closed) fleet is attached."""
        return self._workers is not None

    def close(self) -> None:
        """Reap the persistent fleet (no-op in one-shot mode)."""
        if self._workers is not None:
            workers, self._workers = self._workers, None
            self._shutdown(workers)

    def __enter__(self) -> "SupervisedPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Sequence[Tuple[int, Any]]],
        on_result: Optional[Callable[[int, Any, int, bool], None]] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> PoolOutcome:
        """Execute every item of every job; never raises for item failures.

        ``on_result(index, result, attempts, timed_out)`` streams each
        item's *final* outcome as it lands (the journaling hook);
        :class:`PoolOutcome` aggregates the same data at the end.

        ``stop`` (persistent mode's shutdown hook) is polled between
        supervision passes: once it answers True the run drains every
        already-sent result and returns early — unfinished items are
        absent from the outcome, and the pool must be ``close``\\ d
        (workers may still be computing the abandoned items).
        """
        if self._workers is not None:
            return self._run_loop(self._workers, jobs, on_result, stop,
                                  persistent=True)
        workers = [self._spawn()
                   for _ in range(min(self.processes,
                                      sum(1 for job in jobs if job)))]
        try:
            return self._run_loop(workers, jobs, on_result, stop,
                                  persistent=False)
        finally:
            self._shutdown(workers)

    def _run_loop(
        self,
        workers: List[_Worker],
        jobs: Sequence[Sequence[Tuple[int, Any]]],
        on_result: Optional[Callable[[int, Any, int, bool], None]],
        stop: Optional[Callable[[], bool]],
        persistent: bool,
    ) -> PoolOutcome:
        outcome = PoolOutcome()
        pending: deque = deque(_Job(list(job)) for job in jobs if job)
        delayed: List[_Job] = []
        remaining = sum(len(job.items) for job in pending)
        if not remaining:
            return outcome
        payloads: Dict[int, Any] = {
            index: payload for job in pending for index, payload in job.items
        }
        jobs_in_flight: Dict[int, Tuple[_Worker, _Job]] = {}
        idle_deaths = 0

        def record(index: int, result: Any, timed_out: bool = False) -> None:
            nonlocal remaining
            if index in outcome.results:
                return
            outcome.results[index] = result
            if timed_out:
                outcome.timed_out[index] = True
            remaining -= 1
            if on_result is not None:
                on_result(index, result, outcome.attempts.get(index, 1),
                          outcome.timed_out.get(index, False))

        def reschedule(items: List[Tuple[int, Any]], kind: str, detail: str,
                       timed_out_index: Optional[int]) -> None:
            """Retry (with backoff) or fail a job's unfinished items."""
            retriable: List[Tuple[int, Any]] = []
            for index, payload in items:
                if index == timed_out_index:
                    outcome.timed_out[index] = True
                if outcome.attempts.get(index, 0) < self.retry.max_attempts:
                    retriable.append((index, payload))
                else:
                    record(index, self.failure(payload, kind, detail),
                           timed_out=index == timed_out_index)
            if retriable:
                outcome.retries += len(retriable)
                index, payload = retriable[0]
                delay = self.retry.delay(outcome.attempts.get(index, 1),
                                         _describe(payload))
                delayed.append(_Job(retriable, time.monotonic() + delay))

        def handle_message(worker: _Worker, message) -> None:
            if message[0] == "done":
                entry = jobs_in_flight.pop(message[1], None)
                if entry is not None and entry[0] is worker:
                    worker.job = None
                    worker.seq = None
                    worker.deadline = None
                return
            _tag, seq, index, result = message
            entry = jobs_in_flight.get(seq)
            if entry is None:
                return  # job superseded by a reassignment; result replayed
            _owner, job = entry
            job.items = [(i, p) for i, p in job.items if i != index]
            if worker.deadline is not None:
                worker.deadline = time.monotonic() + self.task_timeout
            if (self.transient is not None and self.transient(result)
                    and outcome.attempts.get(index, 1)
                    < self.retry.max_attempts):
                outcome.retries += 1
                delay = self.retry.delay(outcome.attempts.get(index, 1),
                                         _describe(payloads[index]))
                delayed.append(_Job([(index, payloads[index])],
                                    time.monotonic() + delay))
                return
            record(index, result)

        def drain(worker: _Worker) -> None:
            """Consume every message the worker has managed to send.

            Run for every worker *before* handling deaths: a worker may
            have reported items (or finished its whole job) and *then*
            died — those results are real and must not be replayed.
            """
            while True:
                try:
                    if not worker.conn.poll(0):
                        return
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    return
                handle_message(worker, message)

        try:
            while remaining > 0:
                if stop is not None and stop():
                    # Shutdown drain: collect everything the workers
                    # already reported, abandon the rest.  The caller
                    # (the service daemon) journals what landed and
                    # closes the pool.
                    for worker in workers:
                        drain(worker)
                    return outcome
                now = time.monotonic()
                for job in [j for j in delayed if j.ready_at <= now]:
                    delayed.remove(job)
                    pending.append(job)
                for worker in workers:
                    if worker.job is None and pending:
                        self._assign(worker, pending.popleft(),
                                     jobs_in_flight, outcome)
                self._wait(workers, delayed)
                for worker in workers:
                    drain(worker)
                now = time.monotonic()
                for position, worker in enumerate(workers):
                    if worker.process.is_alive():
                        continue
                    drain(worker)
                    outcome.worker_restarts += 1
                    job, seq = worker.job, worker.seq
                    if seq is not None:
                        jobs_in_flight.pop(seq, None)
                    self._reap(worker)
                    exitcode = worker.process.exitcode
                    workers[position] = self._spawn()
                    if job is None:
                        idle_deaths += 1
                        if idle_deaths >= _MAX_IDLE_DEATHS:
                            raise _PoolBroken()
                        continue
                    idle_deaths = 0
                    reschedule(job.items, "WorkerCrash",
                               f"pool worker died (exit code {exitcode})",
                               None)
                for position, worker in enumerate(workers):
                    if (worker.deadline is None or worker.job is None
                            or now < worker.deadline):
                        continue
                    # Hung item: the first unfinished item of the job is
                    # the one on the worker's CPU right now.
                    outcome.worker_restarts += 1
                    job, seq = worker.job, worker.seq
                    if seq is not None:
                        jobs_in_flight.pop(seq, None)
                    hung = job.items[0][0] if job.items else None
                    self._reap(worker, kill=True)
                    workers[position] = self._spawn()
                    reschedule(
                        job.items, "SupervisorTimeout",
                        f"task exceeded task_timeout={self.task_timeout}s "
                        f"(supervisor wall clock)", hung)
        except _PoolBroken:
            # Workers die before they can accept work (broken
            # initializer, poisoned environment): fail what's left
            # rather than fork-loop — the sweep still completes.  In
            # persistent mode the next run's death pass respawns the
            # fleet, so the daemon keeps serving.
            for index, payload in payloads.items():
                if index not in outcome.results:
                    record(index, self.failure(
                        payload, "PoolBroken",
                        "workers repeatedly died before accepting work"))
            return outcome
        if persistent:
            # Settle pass: every item result has landed, but a worker
            # may still be inside its finalizer (graph-store flush)
            # with the "done" message yet to arrive.  The next batch
            # must only be assigned to workers with no job attached,
            # so wait the epilogues out — replacing any worker that
            # dies or wedges — and leave the fleet clean.
            deadline = time.monotonic() + _SETTLE_SECONDS
            while any(worker.job is not None for worker in workers):
                busy = [w for w in workers if w.job is not None]
                try:
                    _connection_wait(
                        [w.conn for w in busy]
                        + [w.process.sentinel for w in busy],
                        min(_POLL_SECONDS,
                            max(0.0, deadline - time.monotonic())))
                except OSError:
                    pass
                for worker in busy:
                    drain(worker)
                for position, worker in enumerate(workers):
                    if worker.job is None:
                        continue
                    if (worker.process.is_alive()
                            and time.monotonic() < deadline):
                        continue
                    outcome.worker_restarts += 1
                    if worker.seq is not None:
                        jobs_in_flight.pop(worker.seq, None)
                    self._reap(worker, kill=True)
                    workers[position] = self._spawn()
        return outcome

    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        ours, theirs = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(theirs, self.target, self.initializer, self.initargs,
                  self.fallback, self.finalizer, self.fault_plan),
            daemon=True,
        )
        process.start()
        theirs.close()
        return _Worker(process, ours)

    def _assign(self, worker: _Worker, job: _Job, jobs_in_flight,
                outcome: PoolOutcome) -> None:
        seq = next(self._seq)
        for index, _payload in job.items:
            outcome.attempts[index] = outcome.attempts.get(index, 0) + 1
        worker.job = job
        worker.seq = seq
        worker.deadline = (
            time.monotonic() + self.task_timeout if self.task_timeout
            else None
        )
        jobs_in_flight[seq] = (worker, job)
        try:
            worker.conn.send((seq, job.items))
        except (OSError, BrokenPipeError):
            pass  # the worker just died; the sentinel pass reassigns

    def _wait(self, workers: List[_Worker], delayed: List[_Job]) -> None:
        timeout = _POLL_SECONDS
        now = time.monotonic()
        for worker in workers:
            if worker.deadline is not None and worker.job is not None:
                timeout = min(timeout, max(0.0, worker.deadline - now))
        for job in delayed:
            timeout = min(timeout, max(0.0, job.ready_at - now))
        handles = ([worker.conn for worker in workers]
                   + [worker.process.sentinel for worker in workers])
        try:
            _connection_wait(handles, timeout)
        except OSError:
            pass  # a handle died mid-wait; the per-worker passes handle it

    def _reap(self, worker: _Worker, kill: bool = False) -> None:
        try:
            if kill and worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for worker in workers:
            try:
                worker.process.join(
                    timeout=max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
            except (OSError, ValueError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass


class _PoolBroken(Exception):
    """Internal: workers keep dying before accepting any work."""
