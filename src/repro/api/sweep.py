"""Parallel sweep execution with deterministic ordering and caching.

:class:`SweepRunner` fans a task list out across a ``multiprocessing``
pool and returns one :class:`~repro.api.report.RunReport` whose results
are in *input task order* regardless of completion order — a sweep run
with ``processes=4`` is bit-identical to the same sweep run with
``processes=1`` (per-task wall-clock timings aside).

An optional on-disk cache keyed by ``(protocol, valuation, targets,
engine, limits, code-version)`` lets repeated sweeps (cross-validation
over many valuations, CI re-runs) skip work that cannot have changed:
the code-version component is a digest of every ``repro`` source file,
so any engine change invalidates the whole cache.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pickle
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.api.engines import BUILTIN_ENGINES, engine_for
from repro.api.report import RunReport, TaskResult
from repro.api.task import VerificationTask

__all__ = ["SweepRunner", "run_task", "code_version", "ResultCache"]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file (the cache's version key)."""
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def run_task(task: VerificationTask) -> TaskResult:
    """Execute one task, capturing engine failures as error results.

    This is the pool worker: it must stay a module-level function so it
    pickles, and it must not raise — one broken task in a sweep yields
    an ``error`` :class:`TaskResult`, not a dead pool.
    """
    started = time.perf_counter()
    try:
        return engine_for(task.engine).run(task)
    except Exception as exc:  # noqa: BLE001 — worker boundary
        return TaskResult(
            task_id=task.task_id,
            protocol=task.protocol_name,
            engine=task.engine,
            valuation=task.resolved_valuation(strict=False),
            time_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )


class ResultCache:
    """A directory of ``<key>.json`` files, one cached TaskResult each."""

    def __init__(self, root: Path, version: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()

    def key_for(self, task: VerificationTask) -> Optional[str]:
        payload = task.cache_payload()
        if payload is None:
            return None
        payload["code_version"] = self.version
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def get(self, key: str) -> Optional[TaskResult]:
        path = self.root / f"{key}.json"
        if not path.exists():
            return None
        try:
            return TaskResult.from_dict(json.loads(path.read_text())).as_cached()
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable/stale/hand-edited entry: a cache miss, not a
            # dead sweep — the task simply recomputes.
            return None

    def put(self, key: str, result: TaskResult) -> None:
        path = self.root / f"{key}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(result.to_dict(), indent=1) + "\n")
        tmp.replace(path)


class SweepRunner:
    """Run a task matrix, in parallel, with stable result ordering.

    Args:
        processes: pool size; ``1`` (the default) runs inline in this
            process — no pool, no pickling, easiest to debug.
        cache_dir: directory for the on-disk result cache; ``None``
            disables caching.  Only registry tasks with named targets
            are cacheable (custom models / ad-hoc queries have no
            stable identity) — others always run.
    """

    def __init__(
        self,
        processes: int = 1,
        cache_dir: Optional[str] = None,
        cache_version: Optional[str] = None,
    ):
        self.processes = max(1, int(processes))
        self.cache = (
            ResultCache(Path(cache_dir), version=cache_version)
            if cache_dir
            else None
        )

    def run(self, tasks: Sequence[VerificationTask]) -> RunReport:
        started = time.perf_counter()
        tasks = list(tasks)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        keys: Dict[int, str] = {}
        cache_hits = 0

        pending: List[int] = []
        for index, task in enumerate(tasks):
            key = self.cache.key_for(task) if self.cache else None
            if key is not None:
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            fresh = self._execute([tasks[i] for i in pending])
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache and index in keys and self._cacheable(result):
                    self.cache.put(keys[index], result)

        return RunReport(
            results=tuple(results),
            processes=self.processes,
            code_version=self.cache.version if self.cache else code_version(),
            time_seconds=time.perf_counter() - started,
            cache_hits=cache_hits,
        )

    @staticmethod
    def _cacheable(result: TaskResult) -> bool:
        """Cache verdicts, not transient failures.

        ``max_states`` / ``max_nodes`` trips are deterministic for a
        given code version, so their ``unknown`` is a real (cacheable)
        answer; a ``max_seconds`` trip — on any query or a skipped side
        condition, even when another limit tripped first — depends on
        machine load and must be retried, and errors are never cached.
        """
        if result.error:
            return False
        return all(
            "max_seconds" not in outcome.limits_tripped
            for outcome in result.obligations
        )

    def _execute(self, tasks: List[VerificationTask]) -> List[TaskResult]:
        if self.processes == 1 or len(tasks) == 1:
            return [run_task(task) for task in tasks]
        # Two classes of task can't go to the pool and run inline
        # instead (one bad task must never kill the sweep): custom-model
        # tasks built from closures may not pickle, and runtime-
        # registered engines only exist in this process (workers under
        # spawn/forkserver re-import the registry with just the
        # builtins).
        poolable: List[int] = []
        inline: List[int] = []
        for index, task in enumerate(tasks):
            if task.engine not in BUILTIN_ENGINES:
                inline.append(index)
                continue
            try:
                pickle.dumps(task)
            except Exception:  # noqa: BLE001 — anything unpicklable
                inline.append(index)
            else:
                poolable.append(index)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        if len(poolable) > 1:
            # chunksize=1 so long tasks don't serialize behind short
            # ones; map() preserves input order → deterministic reports.
            with multiprocessing.Pool(min(self.processes, len(poolable))) as pool:
                for index, result in zip(
                    poolable,
                    pool.map(run_task, [tasks[i] for i in poolable], chunksize=1),
                ):
                    results[index] = result
        else:
            inline = sorted(inline + poolable)
        for index in inline:
            results[index] = run_task(tasks[index])
        return results
