"""Parallel sweep execution with deterministic ordering and caching.

:class:`SweepRunner` fans a task list out across a ``multiprocessing``
pool and returns one :class:`~repro.api.report.RunReport` whose results
are in *input task order* regardless of completion order — a sweep run
with ``processes=4`` is bit-identical to the same sweep run with
``processes=1`` (per-task wall-clock timings aside).

Two scheduling modes dispatch the pool:

* ``"flat"`` (default) — one task per pool job, ``chunksize=1``, so
  long tasks never serialize behind short ones.
* ``"sharded"`` — tasks are grouped by :attr:`~repro.api.task.
  VerificationTask.shard_key` (the protocol) and each *shard* is one
  pool job executed sequentially by a persistent worker.  The worker
  compiles the protocol's :class:`~repro.counter.program.
  ProtocolProgram` once and keeps the shared engine caches warm for
  every valuation in the shard — the cross-validation workload (one
  protocol × many valuations) stops paying per-task recompilation.
  Results are reassembled into input task order either way, so both
  modes (at any pool size) produce bit-identical reports under the
  deterministic budgets — a ``max_seconds`` trip is load-dependent in
  any mode (warm caches may push a borderline task under the wire),
  which is the same reason such results are never cached.

An optional on-disk cache keyed by ``(protocol, valuation, targets,
engine, limits, code-version)`` lets repeated sweeps (cross-validation
over many valuations, CI re-runs) skip work that cannot have changed:
the code-version component is a digest of every ``repro`` source file,
so any engine change invalidates the whole cache.

Orthogonally, ``graph_store`` enables the persistent *state-graph*
store (:class:`~repro.counter.store.GraphStore`): workers (and inline
runs) warm each task's explored successor graph from storage on
startup and flush delta segments of what they grew after every task,
so a fresh process replays a previously-expanded sweep on memoised
successors.  The spec selects the backend — a directory path for the
per-file :class:`~repro.counter.store.LocalDirBackend` layout, or
``sqlite:<path>`` for the single-file shared
:class:`~repro.counter.store.SQLiteBackend` corpus a whole sweep fleet
can read and write concurrently.  The result cache skips whole tasks;
the graph store speeds the tasks that still run — notably tasks whose
result is *not* cacheable (custom models, ``max_seconds`` trips) or
not yet cached.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.api.engines import BUILTIN_ENGINES, engine_for
from repro.api.report import RunReport, TaskResult
from repro.api.task import VerificationTask
from repro.counter.store import (
    activate_graph_store,
    deactivate_graph_store,
    prune_stale_temp_files,
    unique_temp_path,
)
from repro.counter.system import flush_shared_graphs
from repro.errors import CheckError
from repro.version import code_version, seed_code_version, stable_digest

__all__ = ["SweepRunner", "run_task", "code_version", "ResultCache"]


def _seed_code_version(version: str) -> None:
    """Adopt the parent's source digest (kept as the historical name)."""
    seed_code_version(version)


def _init_worker(version: str, graph_store: Optional[str]) -> None:
    """Pool-worker initializer: seed the digest, open the graph store.

    Workers inherit the parent's source digest instead of re-hashing
    the tree, and — when the sweep persists state graphs — install the
    process-wide store (``graph_store`` is a backend spec string: a
    directory or a ``sqlite:`` URI) so
    :func:`~repro.counter.system.shared_system` warms fresh systems
    from storage.
    """
    seed_code_version(version)
    if graph_store:
        activate_graph_store(graph_store, version=version)


def _run_shard(tasks: Sequence[VerificationTask]) -> List[TaskResult]:
    """Execute one shard sequentially in a (persistent) pool worker.

    All tasks of a shard target the same protocol, so after the first
    task compiles the shared program, the rest bind it per valuation;
    the engine-level system cache keeps their explored graphs warm too.
    Module-level for picklability, like :func:`run_task`.
    """
    results = [run_task(task) for task in tasks]
    # Shard completion: per-task flushes already persisted each
    # valuation's graph; this final sweep catches anything the bounded
    # system cache still holds before the worker moves on.
    flush_shared_graphs()
    return results


def run_task(task: VerificationTask) -> TaskResult:
    """Execute one task, capturing engine failures as error results.

    This is the pool worker: it must stay a module-level function so it
    pickles, and it must not raise — one broken task in a sweep yields
    an ``error`` :class:`TaskResult`, not a dead pool.  When a graph
    store is active the task's grown state graphs are flushed before
    returning (best-effort, and a no-op otherwise), so even a bounded
    shared-system cache cannot evict them unpersisted.
    """
    started = time.perf_counter()
    try:
        return engine_for(task.engine).run(task)
    except Exception as exc:  # noqa: BLE001 — worker boundary
        return TaskResult(
            task_id=task.task_id,
            protocol=task.protocol_name,
            engine=task.engine,
            valuation=task.resolved_valuation(strict=False),
            time_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    finally:
        flush_shared_graphs()


class ResultCache:
    """A directory of ``<key>.json`` files, one cached TaskResult each.

    Durability contract (shared with :class:`~repro.counter.store.
    GraphStore`): writes land in a unique per-writer temp file before
    an atomic rename, so two pool workers finishing the same uncached
    task can interleave freely without ever publishing a torn blob;
    :meth:`put` is best-effort — a full disk or permission failure is
    recorded on the cache and the sweep keeps its computed result —
    mirroring :meth:`get`'s miss-not-crash contract; and temp-file
    orphans from crashed writers are pruned on init.  Each blob embeds
    the code version it was written under (``_code_version``), which
    the ``harness cache`` maintenance CLI uses to tell stale entries
    apart (the hashed file name alone cannot).
    """

    def __init__(self, root: Path, version: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        self.put_errors = 0
        self.last_error: Optional[BaseException] = None
        prune_stale_temp_files(self.root)

    def key_for(self, task: VerificationTask) -> Optional[str]:
        payload = task.cache_payload()
        if payload is None:
            return None
        payload["code_version"] = self.version
        return stable_digest(json.dumps(payload, sort_keys=True), 32)

    def get(self, key: str) -> Optional[TaskResult]:
        path = self.root / f"{key}.json"
        if not path.exists():
            return None
        try:
            return TaskResult.from_dict(json.loads(path.read_text())).as_cached()
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable/stale/hand-edited entry: a cache miss, not a
            # dead sweep — the task simply recomputes.
            return None

    def put(self, key: str, result: TaskResult) -> None:
        """Publish one entry atomically; failures are recorded, not raised.

        Caching is an optimization: a disk-full or permission
        ``OSError`` mid-sweep must cost one cache entry, not the sweep.
        The half-written temp file is cleaned up on failure.
        """
        path = self.root / f"{key}.json"
        blob = json.dumps({**result.to_dict(), "_code_version": self.version},
                          indent=1) + "\n"
        tmp = unique_temp_path(path)
        try:
            tmp.write_text(blob)
            tmp.replace(path)
        except OSError as exc:
            self.put_errors += 1
            self.last_error = exc
            try:
                tmp.unlink()
            except OSError:
                pass

    @staticmethod
    def entry_version(path: Path) -> Optional[str]:
        """The code version an entry was written under, or None.

        Never raises: an unreadable file, non-JSON, or JSON that is not
        an object (a hand-edited ``[1, 2]``) all answer None, matching
        the cache's own miss-not-crash contract — the maintenance CLI
        walks arbitrary directories with this.
        """
        try:
            blob = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(blob, dict):
            return None
        version = blob.get("_code_version")
        return version if isinstance(version, str) else None


class SweepRunner:
    """Run a task matrix, in parallel, with stable result ordering.

    Args:
        processes: pool size; ``1`` (the default) runs inline in this
            process — no pool, no pickling, easiest to debug (the
            in-process shared caches make inline runs warm by
            construction, whatever the scheduling mode).
        cache_dir: directory for the on-disk result cache; ``None``
            disables caching.  Only registry tasks with named targets
            are cacheable (custom models / ad-hoc queries have no
            stable identity) — others always run.
        graph_store: backend spec for the persistent state-graph store
            (:class:`~repro.counter.store.GraphStore`): a directory
            path (per-file layout) or ``sqlite:<path>`` (single-file
            shared corpus); ``None`` disables it.  Workers and inline
            runs warm each task's explored graph from storage and
            flush delta segments of what they grow, so a sweep re-run
            in a fresh process replays on memoised successors —
            results-neutral (verdicts and ``states_explored`` stay
            bit-identical to cold runs).  ``graph_store_dir`` is the
            historical alias.
        scheduling: ``"flat"`` (one task per pool job) or ``"sharded"``
            (one protocol-shard per pool job, executed by a persistent
            warm worker).  Reports are bit-identical across modes
            under the deterministic budgets (see the module doc for
            the ``max_seconds`` caveat).
    """

    SCHEDULING_MODES = ("flat", "sharded")

    def __init__(
        self,
        processes: int = 1,
        cache_dir: Optional[str] = None,
        cache_version: Optional[str] = None,
        scheduling: str = "flat",
        graph_store: Optional[str] = None,
        graph_store_dir: Optional[str] = None,
    ):
        self.processes = max(1, int(processes))
        if scheduling not in self.SCHEDULING_MODES:
            raise CheckError(
                f"unknown scheduling mode {scheduling!r}; expected one of "
                f"{self.SCHEDULING_MODES}"
            )
        self.scheduling = scheduling
        # graph_store is the backend spec (dir path or sqlite: URI);
        # graph_store_dir is the PR 4 name, kept as an alias.
        spec = graph_store if graph_store else graph_store_dir
        self.graph_store = str(spec) if spec else None
        self.cache = (
            ResultCache(Path(cache_dir), version=cache_version)
            if cache_dir
            else None
        )

    @property
    def graph_store_dir(self) -> Optional[str]:
        """Historical alias for :attr:`graph_store` (PR 4 name)."""
        return self.graph_store

    def run(self, tasks: Sequence[VerificationTask]) -> RunReport:
        # Inline tasks (processes=1, unpicklable models, runtime
        # engines) execute in *this* process, so the graph store must
        # be active here too, not only in pool workers.  The previous
        # installation is restored afterwards so a sweep cannot leak
        # its store into unrelated later runs.  The store is always
        # keyed by the real code_version() — pool workers are seeded
        # with exactly that, so inline and pooled tasks address the
        # same entries even under a custom result-cache version.
        if self.graph_store:
            previous = activate_graph_store(self.graph_store)
            try:
                return self._run(tasks)
            finally:
                flush_shared_graphs()
                deactivate_graph_store(previous)
        return self._run(tasks)

    def _run(self, tasks: Sequence[VerificationTask]) -> RunReport:
        started = time.perf_counter()
        tasks = list(tasks)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        keys: Dict[int, str] = {}
        cache_hits = 0

        pending: List[int] = []
        for index, task in enumerate(tasks):
            key = self.cache.key_for(task) if self.cache else None
            if key is not None:
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            fresh = self._execute([tasks[i] for i in pending])
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache and index in keys and self._cacheable(result):
                    self.cache.put(keys[index], result)

        return RunReport(
            results=tuple(results),
            processes=self.processes,
            code_version=self.cache.version if self.cache else code_version(),
            time_seconds=time.perf_counter() - started,
            cache_hits=cache_hits,
        )

    @staticmethod
    def _cacheable(result: TaskResult) -> bool:
        """Cache verdicts, not transient failures.

        ``max_states`` / ``max_nodes`` trips are deterministic for a
        given code version, so their ``unknown`` is a real (cacheable)
        answer; a ``max_seconds`` trip — on any query or a skipped side
        condition, even when another limit tripped first — depends on
        machine load and must be retried, and errors are never cached.
        """
        if result.error:
            return False
        return all(
            "max_seconds" not in outcome.limits_tripped
            for outcome in result.obligations
        )

    def _execute(self, tasks: List[VerificationTask]) -> List[TaskResult]:
        if self.processes == 1 or len(tasks) == 1:
            # Inline: the process-wide program/system caches make this
            # warm by construction, so flat and sharded coincide.
            return [run_task(task) for task in tasks]
        # Two classes of task can't go to the pool and run inline
        # instead (one bad task must never kill the sweep): custom-model
        # tasks built from closures may not pickle, and runtime-
        # registered engines only exist in this process (workers under
        # spawn/forkserver re-import the registry with just the
        # builtins).
        poolable: List[int] = []
        inline: List[int] = []
        for index, task in enumerate(tasks):
            if task.engine not in BUILTIN_ENGINES:
                inline.append(index)
                continue
            try:
                pickle.dumps(task)
            except Exception:  # noqa: BLE001 — anything unpicklable
                inline.append(index)
            else:
                poolable.append(index)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        if len(poolable) > 1:
            if self.scheduling == "sharded":
                self._execute_sharded(tasks, poolable, results)
            else:
                self._execute_flat(tasks, poolable, results)
        else:
            inline = sorted(inline + poolable)
        for index in inline:
            results[index] = run_task(tasks[index])
        return results

    def _pool(self, jobs: int) -> multiprocessing.pool.Pool:
        # The initializer hands every worker the parent's source digest
        # (so persistent workers never re-hash the repro tree) and
        # installs the graph store when this sweep persists graphs.
        return multiprocessing.Pool(
            min(self.processes, jobs),
            initializer=_init_worker,
            initargs=(code_version(), self.graph_store),
        )

    def _execute_flat(
        self,
        tasks: List[VerificationTask],
        poolable: List[int],
        results: List[Optional[TaskResult]],
    ) -> None:
        # chunksize=1 so long tasks don't serialize behind short
        # ones; map() preserves input order → deterministic reports.
        with self._pool(len(poolable)) as pool:
            for index, result in zip(
                poolable,
                pool.map(run_task, [tasks[i] for i in poolable], chunksize=1),
            ):
                results[index] = result

    def _execute_sharded(
        self,
        tasks: List[VerificationTask],
        poolable: List[int],
        results: List[Optional[TaskResult]],
    ) -> None:
        # One job per protocol shard: the worker compiles the protocol
        # program on the shard's first task and serves the rest warm.
        # Shards keep first-appearance order and tasks keep input order
        # inside their shard; reassembly by index restores full input
        # order, so the report matches the flat mode bit for bit.
        shards: Dict[str, List[int]] = {}
        for index in poolable:
            shards.setdefault(tasks[index].shard_key, []).append(index)
        shard_indices = list(shards.values())
        with self._pool(len(shard_indices)) as pool:
            for indices, shard_results in zip(
                shard_indices,
                pool.map(
                    _run_shard,
                    [[tasks[i] for i in indices] for indices in shard_indices],
                    chunksize=1,
                ),
            ):
                for index, result in zip(indices, shard_results):
                    results[index] = result
