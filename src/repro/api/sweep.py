"""Parallel sweep execution: supervised, deterministic, cached, resumable.

:class:`SweepRunner` fans a task list out across a *supervised* worker
pool (:class:`~repro.api.supervisor.SupervisedPool`) and returns one
:class:`~repro.api.report.RunReport` whose results are in *input task
order* regardless of completion order — a sweep run with
``processes=4`` is bit-identical to the same sweep run with
``processes=1`` (per-task wall-clock timings aside).

Supervision makes the sweep crash-resilient: a pool worker that is
OOM-killed, segfaults, or is SIGKILLed mid-task is detected through its
process sentinel, respawned, and its in-flight tasks are reassigned; a
task that hangs past ``task_timeout`` is killed from the supervisor
side (the engine's own ``max_seconds`` budget is cooperative — it
cannot interrupt a wedged native call) and handled the same way.  Both
failure classes — plus *transient* completed results (``max_seconds``
limit trips, ``OSError``-family engine errors) — are retried under a
:class:`~repro.api.supervisor.RetryPolicy` with exponential backoff
and deterministic jitter; when attempts run out the task is recorded
as an error result.  **No worker failure mode raises out of**
:meth:`SweepRunner.run`.

Two scheduling modes shape the dispatch:

* ``"flat"`` (default) — one task per pool job, so long tasks never
  serialize behind short ones.
* ``"sharded"`` — tasks are grouped by :attr:`~repro.api.task.
  VerificationTask.shard_key` (the protocol) and each *shard* is one
  pool job executed sequentially by a persistent worker.  The worker
  compiles the protocol's :class:`~repro.counter.program.
  ProtocolProgram` once and keeps the shared engine caches warm for
  every valuation in the shard — the cross-validation workload (one
  protocol × many valuations) stops paying per-task recompilation.
  Results are reassembled into input task order either way, so both
  modes (at any pool size) produce bit-identical reports under the
  deterministic budgets — a ``max_seconds`` trip is load-dependent in
  any mode (warm caches may push a borderline task under the wire),
  which is the same reason such results are never cached.

An optional on-disk cache keyed by ``(protocol, valuation, targets,
engine, limits, code-version)`` lets repeated sweeps (cross-validation
over many valuations, CI re-runs) skip work that cannot have changed:
the code-version component is a digest of every ``repro`` source file,
so any engine change invalidates the whole cache.  Alongside it lives
the **sweep journal** (:class:`~repro.api.journal.RunJournal`,
``sweep-journal.jsonl`` under the cache dir): one appended record per
*completed* task — including the error results and ``max_seconds``
trips the cache refuses to hold — so ``resume=True`` /
``harness sweep --resume`` finishes an interrupted sweep by re-running
only what has no (or only an error) record, with the final report
still input-ordered and bit-identical.

Orthogonally, ``graph_store`` enables the persistent *state-graph*
store (:class:`~repro.counter.store.GraphStore`): workers (and inline
runs) warm each task's explored successor graph from storage on
startup and flush delta segments of what they grew after every task,
so a fresh process replays a previously-expanded sweep on memoised
successors.  The spec selects the backend — a directory path for the
per-file :class:`~repro.counter.store.LocalDirBackend` layout, or
``sqlite:<path>`` for the single-file shared
:class:`~repro.counter.store.SQLiteBackend` corpus a whole sweep fleet
can read and write concurrently.  The result cache skips whole tasks;
the graph store speeds the tasks that still run — notably tasks whose
result is *not* cacheable (custom models, ``max_seconds`` trips) or
not yet cached.

For chaos testing, ``fault_plan`` installs a deterministic
:class:`~repro.testing.faults.FaultPlan` in every pool worker (never
in the supervisor): injected kills, hangs, I/O errors and segment
corruption exercise exactly the recovery paths above — see
``tests/api/test_sweep_faults.py``.
"""

from __future__ import annotations

import contextlib
import json
import pickle
import signal
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.engines import BUILTIN_ENGINES, engine_for
from repro.api.journal import JournalRecord, RunJournal, sweep_digest
from repro.api.report import RunReport, TaskResult
from repro.api.supervisor import RetryPolicy, SupervisedPool
from repro.api.task import VerificationTask
from repro.counter.store import (
    activate_graph_store,
    deactivate_graph_store,
    prune_stale_temp_files,
    unique_temp_path,
)
from repro.counter.system import flush_shared_graphs
from repro.errors import CheckError
from repro.testing import faults
from repro.version import code_version, seed_code_version, stable_digest

__all__ = [
    "SweepRunner",
    "run_task",
    "code_version",
    "ResultCache",
    "RetryPolicy",
]

#: Error-name prefixes of :attr:`TaskResult.error` treated as transient
#: (retried under the sweep's :class:`RetryPolicy`).  ``WorkerCrash`` /
#: ``SupervisorTimeout`` / ``PoolBroken`` are the supervisor's own
#: failure kinds; the OS-level families cover engine-raised I/O errors
#: (a full disk, a flaky network mount) that a retry can outlive.
#: Semantic failures (``CheckError``: unknown protocol, bad valuation)
#: are deterministic and retrying them would only triple the pain.
TRANSIENT_ERROR_PREFIXES = (
    "OSError",
    "IOError",
    "TimeoutError",
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "WorkerCrash",
    "SupervisorTimeout",
)


@contextlib.contextmanager
def _graceful_termination():
    """Turn SIGTERM into a raised ``SystemExit`` for the sweep's scope.

    SIGTERM's default action kills the process on the spot: the sweep
    journal's file handle never closes, and pool workers — daemonic
    children whose cleanup runs from an ``atexit`` hook that a hard
    signal death skips — are orphaned mid-task.  Raising instead lets
    the ordinary unwind do its job: :meth:`SweepRunner._run`'s
    ``finally`` closes the journal (every *completed* task was already
    appended and flushed, so ``--resume`` picks up exactly there) and
    the pool's ``finally`` reaps every worker.  Exit status follows the
    shell convention (128 + signum = 143).

    Only the main thread may set signal handlers; anywhere else (a
    sweep run from a daemon's dispatcher thread, say) this is a no-op
    — those hosts own their shutdown story.  SIGINT already raises
    ``KeyboardInterrupt`` by default and needs no help.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise_exit(signum, _frame):
        raise SystemExit(128 + signum)

    previous = signal.signal(signal.SIGTERM, _raise_exit)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _seed_code_version(version: str) -> None:
    """Adopt the parent's source digest (kept as the historical name)."""
    seed_code_version(version)


def _init_worker(version: str, graph_store: Optional[str]) -> None:
    """Pool-worker initializer: seed the digest, open the graph store.

    Workers inherit the parent's source digest instead of re-hashing
    the tree, and — when the sweep persists state graphs — install the
    process-wide store (``graph_store`` is a backend spec string: a
    directory or a ``sqlite:`` URI) so
    :func:`~repro.counter.system.shared_system` warms fresh systems
    from storage.
    """
    seed_code_version(version)
    if graph_store:
        activate_graph_store(graph_store, version=version)


def _run_shard(tasks: Sequence[VerificationTask]) -> List[TaskResult]:
    """Execute one shard sequentially (kept for inline/diagnostic use).

    All tasks of a shard target the same protocol, so after the first
    task compiles the shared program, the rest bind it per valuation;
    the engine-level system cache keeps their explored graphs warm too.
    The supervised pool streams shard items individually instead of
    calling this (so the supervisor sees per-item completions), with
    :func:`~repro.counter.system.flush_shared_graphs` as the per-job
    finalizer playing the role of the final sweep below.
    """
    results = [run_task(task) for task in tasks]
    # Shard completion: per-task flushes already persisted each
    # valuation's graph; this final sweep catches anything the bounded
    # system cache still holds before the worker moves on.
    flush_shared_graphs()
    return results


def run_task(task: VerificationTask) -> TaskResult:
    """Execute one task, capturing engine failures as error results.

    This is the pool worker target: it must stay a module-level
    function so it pickles, and it must not raise — one broken task in
    a sweep yields an ``error`` :class:`TaskResult`, not a dead pool.
    When a graph store is active the task's grown state graphs are
    flushed before returning (best-effort, and a no-op otherwise), so
    even a bounded shared-system cache cannot evict them unpersisted.
    """
    started = time.perf_counter()
    try:
        result = engine_for(task.engine).run(task)
    except Exception as exc:  # noqa: BLE001 — worker boundary
        return _error_result(task, f"{type(exc).__name__}: {exc}",
                             time.perf_counter() - started)
    finally:
        flush_shared_graphs()
    try:
        # The result must survive the trip back through the pool pipe.
        # Tasks are pre-checked for picklability in _execute; results
        # (which may embed counterexample payloads from a custom model)
        # can only be checked here — degrade to an error result instead
        # of killing the worker's send loop.
        pickle.dumps(result)
    except Exception as exc:  # noqa: BLE001 — anything unpicklable
        return _error_result(
            task,
            f"UnpicklableResult: {type(exc).__name__}: {exc}",
            time.perf_counter() - started,
        )
    return result


def _error_result(task: VerificationTask, error: str,
                  elapsed: float = 0.0) -> TaskResult:
    """The degraded :class:`TaskResult` every failure path converges on."""
    return TaskResult(
        task_id=task.task_id,
        protocol=task.protocol_name,
        engine=task.engine,
        valuation=task.resolved_valuation(strict=False),
        time_seconds=elapsed,
        error=error,
    )


def _fallback_result(task: VerificationTask, exc: BaseException) -> TaskResult:
    """Worker-boundary degradation for the supervised pool."""
    return _error_result(task, f"{type(exc).__name__}: {exc}")


def _failure_result(task: VerificationTask, kind: str,
                    detail: str) -> TaskResult:
    """Supervisor-side terminal result when retry attempts run out."""
    return _error_result(task, f"{kind}: {detail}")


def _transient_result(result: TaskResult) -> bool:
    """Completed results worth retrying under the sweep's policy.

    The transient set is exactly the complement of what
    :meth:`SweepRunner._cacheable` accepts, split by *why*: error
    results whose error class names an I/O or supervision failure
    (retrying may outlive it), and verdicts that tripped the
    load-dependent ``max_seconds`` budget (a retry on a warm, idle
    worker often finishes).  Deterministic failures — semantic
    ``CheckError``\\ s, ``max_states`` / ``max_nodes`` trips — are
    real answers and are not retried.
    """
    if result.error:
        return result.error.startswith(TRANSIENT_ERROR_PREFIXES)
    return any(
        "max_seconds" in outcome.limits_tripped
        for outcome in result.obligations
    )


class ResultCache:
    """A directory of ``<key>.json`` files, one cached TaskResult each.

    Durability contract (shared with :class:`~repro.counter.store.
    GraphStore`): writes land in a unique per-writer temp file before
    an atomic rename, so two pool workers finishing the same uncached
    task can interleave freely without ever publishing a torn blob;
    :meth:`put` is best-effort — a full disk or permission failure is
    recorded on the cache and the sweep keeps its computed result —
    mirroring :meth:`get`'s miss-not-crash contract; and temp-file
    orphans from crashed writers are pruned on init.  Each blob embeds
    the code version it was written under (``_code_version``), which
    the ``harness cache`` maintenance CLI uses to tell stale entries
    apart (the hashed file name alone cannot).
    """

    def __init__(self, root: Path, version: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        self.put_errors = 0
        self.last_error: Optional[BaseException] = None
        prune_stale_temp_files(self.root)

    def key_for(self, task: VerificationTask) -> Optional[str]:
        payload = task.cache_payload()
        if payload is None:
            return None
        payload["code_version"] = self.version
        return stable_digest(json.dumps(payload, sort_keys=True), 32)

    def get(self, key: str) -> Optional[TaskResult]:
        path = self.root / f"{key}.json"
        try:
            # Chaos hook inside the guard: an injected OSError takes
            # the same miss-not-crash path a real read failure would.
            faults.fire("result_cache.get", key)
            if not path.exists():
                return None
            return TaskResult.from_dict(json.loads(path.read_text())).as_cached()
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable/stale/hand-edited entry: a cache miss, not a
            # dead sweep — the task simply recomputes.
            return None

    def put(self, key: str, result: TaskResult) -> None:
        """Publish one entry atomically; failures are recorded, not raised.

        Caching is an optimization: a disk-full or permission
        ``OSError`` mid-sweep must cost one cache entry, not the sweep.
        The half-written temp file is cleaned up on failure.
        """
        path = self.root / f"{key}.json"
        blob = json.dumps({**result.to_dict(), "_code_version": self.version},
                          indent=1) + "\n"
        tmp = unique_temp_path(path)
        try:
            faults.fire("result_cache.put", key)
            tmp.write_text(blob)
            tmp.replace(path)
        except OSError as exc:
            self.put_errors += 1
            self.last_error = exc
            try:
                tmp.unlink()
            except OSError:
                pass

    @staticmethod
    def entry_version(path: Path) -> Optional[str]:
        """The code version an entry was written under, or None.

        Never raises: an unreadable file, non-JSON, or JSON that is not
        an object (a hand-edited ``[1, 2]``) all answer None, matching
        the cache's own miss-not-crash contract — the maintenance CLI
        walks arbitrary directories with this.
        """
        try:
            blob = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(blob, dict):
            return None
        version = blob.get("_code_version")
        return version if isinstance(version, str) else None


class SweepRunner:
    """Run a task matrix, in parallel, with stable result ordering.

    Args:
        processes: pool size; ``1`` (the default) runs inline in this
            process — no pool, no pickling, easiest to debug (the
            in-process shared caches make inline runs warm by
            construction, whatever the scheduling mode).
        cache_dir: directory for the on-disk result cache; ``None``
            disables caching.  Only registry tasks with named targets
            are cacheable (custom models / ad-hoc queries have no
            stable identity) — others always run.  Also the default
            home of the sweep journal (see ``resume``).
        graph_store: backend spec for the persistent state-graph store
            (:class:`~repro.counter.store.GraphStore`): a directory
            path (per-file layout) or ``sqlite:<path>`` (single-file
            shared corpus); ``None`` disables it.  Workers and inline
            runs warm each task's explored graph from storage and
            flush delta segments of what they grow, so a sweep re-run
            in a fresh process replays on memoised successors —
            results-neutral (verdicts and ``states_explored`` stay
            bit-identical to cold runs).  ``graph_store_dir`` is the
            historical alias.
        scheduling: ``"flat"`` (one task per pool job) or ``"sharded"``
            (one protocol-shard per pool job, executed by a persistent
            warm worker).  Reports are bit-identical across modes
            under the deterministic budgets (see the module doc for
            the ``max_seconds`` caveat).
        task_timeout: supervisor-enforced wall-clock seconds per task;
            a task past the deadline gets its worker killed and is
            retried / recorded per the retry policy.  ``None`` (the
            default) disables supervision timeouts — the engine's own
            cooperative ``max_seconds`` budget still applies.
        retry: a :class:`~repro.api.supervisor.RetryPolicy`, a bare
            ``int`` (max attempts), or ``None`` for the default policy
            (3 attempts, exponential backoff with deterministic
            jitter).  Applies to worker crashes, supervisor timeouts
            and transient completed results (see
            :func:`_transient_result`).  ``RetryPolicy(max_attempts=1)``
            disables retrying.
        journal: path for the sweep journal; defaults to
            ``<cache_dir>/sweep-journal.jsonl`` when a cache dir is
            set.  ``None`` with no cache dir disables journaling.
        resume: serve completed (non-error) records from the journal of
            a previous identical sweep instead of re-running their
            tasks.  Requires a journal (explicit or via ``cache_dir``);
            a journal written by a *different* sweep or code version is
            ignored.  Resumed reports remain input-ordered and
            bit-identical to an uninterrupted run.
        fault_plan: a :class:`~repro.testing.faults.FaultPlan` to
            install in pool workers (chaos testing; never installed in
            this process).
    """

    SCHEDULING_MODES = ("flat", "sharded")

    #: Journal file name under ``cache_dir`` when no explicit path given.
    JOURNAL_NAME = "sweep-journal.jsonl"

    def __init__(
        self,
        processes: int = 1,
        cache_dir: Optional[str] = None,
        cache_version: Optional[str] = None,
        scheduling: str = "flat",
        graph_store: Optional[str] = None,
        graph_store_dir: Optional[str] = None,
        task_timeout: Optional[float] = None,
        retry=None,
        journal: Optional[str] = None,
        resume: bool = False,
        fault_plan=None,
    ):
        self.processes = max(1, int(processes))
        if scheduling not in self.SCHEDULING_MODES:
            raise CheckError(
                f"unknown scheduling mode {scheduling!r}; expected one of "
                f"{self.SCHEDULING_MODES}"
            )
        self.scheduling = scheduling
        # graph_store is the backend spec (dir path or sqlite: URI);
        # graph_store_dir is the PR 4 name, kept as an alias.
        spec = graph_store if graph_store else graph_store_dir
        self.graph_store = str(spec) if spec else None
        self.cache = (
            ResultCache(Path(cache_dir), version=cache_version)
            if cache_dir
            else None
        )
        self.task_timeout = float(task_timeout) if task_timeout else None
        self.retry = RetryPolicy.of(retry)
        if journal:
            self.journal_path: Optional[Path] = Path(journal)
        elif cache_dir:
            self.journal_path = Path(cache_dir) / self.JOURNAL_NAME
        else:
            self.journal_path = None
        if resume and self.journal_path is None:
            raise CheckError(
                "resume=True needs a journal: set cache_dir= or journal="
            )
        self.resume = bool(resume)
        self.fault_plan = fault_plan

    @property
    def graph_store_dir(self) -> Optional[str]:
        """Historical alias for :attr:`graph_store` (PR 4 name)."""
        return self.graph_store

    def run(self, tasks: Sequence[VerificationTask]) -> RunReport:
        # Inline tasks (processes=1, unpicklable models, runtime
        # engines) execute in *this* process, so the graph store must
        # be active here too, not only in pool workers.  The previous
        # installation is restored afterwards so a sweep cannot leak
        # its store into unrelated later runs.  The store is always
        # keyed by the real code_version() — pool workers are seeded
        # with exactly that, so inline and pooled tasks address the
        # same entries even under a custom result-cache version.
        with _graceful_termination():
            if self.graph_store:
                previous = activate_graph_store(self.graph_store)
                try:
                    return self._run(tasks)
                finally:
                    flush_shared_graphs()
                    deactivate_graph_store(previous)
            return self._run(tasks)

    def _run(self, tasks: Sequence[VerificationTask]) -> RunReport:
        started = time.perf_counter()
        tasks = list(tasks)
        version = self.cache.version if self.cache else code_version()
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        keys: Dict[int, str] = {}
        cache_hits = 0
        resumed = 0

        journal: Optional[RunJournal] = None
        replayable: Dict[int, JournalRecord] = {}
        if self.journal_path is not None:
            journal = RunJournal(
                self.journal_path, sweep_digest(tasks, version), version
            )
            replayable = journal.load(resume=self.resume)

        def complete(index: int, result: TaskResult,
                     journaled: bool = False) -> None:
            """Land one task's final result (cache + journal it)."""
            results[index] = result
            if (self.cache and index in keys and not result.cached
                    and self._cacheable(result)):
                self.cache.put(keys[index], result)
            if journal is not None and not journaled:
                journal.append(JournalRecord(
                    index=index,
                    key=tasks[index].journal_key,
                    result=result.to_dict(),
                    attempts=result.attempts,
                    timed_out=result.timed_out,
                ))

        try:
            pending: List[int] = []
            for index, task in enumerate(tasks):
                if self.cache:
                    key = self.cache.key_for(task)
                    if key is not None:
                        keys[index] = key
                record = replayable.get(index)
                if record is not None and record.key == task.journal_key:
                    # Replay the journaled result verbatim: same bytes
                    # the uninterrupted run would have reported.
                    complete(index, TaskResult.from_dict(record.result),
                             journaled=True)
                    resumed += 1
                    continue
                if index in keys:
                    cached = self.cache.get(keys[index])
                    if cached is not None:
                        complete(index, cached)
                        cache_hits += 1
                        continue
                pending.append(index)

            worker_restarts = 0
            if pending:
                worker_restarts = self._execute(
                    tasks, pending, lambda index, result: complete(index, result)
                )
        finally:
            if journal is not None:
                journal.close()

        return RunReport(
            results=tuple(results),
            processes=self.processes,
            code_version=version,
            time_seconds=time.perf_counter() - started,
            cache_hits=cache_hits,
            worker_restarts=worker_restarts,
            resumed=resumed,
        )

    @staticmethod
    def _cacheable(result: TaskResult) -> bool:
        """Cache verdicts, not transient failures.

        ``max_states`` / ``max_nodes`` trips are deterministic for a
        given code version, so their ``unknown`` is a real (cacheable)
        answer; a ``max_seconds`` trip — on any query or a skipped side
        condition, even when another limit tripped first — depends on
        machine load and must be retried, and errors are never cached.
        """
        if result.error:
            return False
        return all(
            "max_seconds" not in outcome.limits_tripped
            for outcome in result.obligations
        )

    @staticmethod
    def _decorate(result: TaskResult, attempts: int,
                  timed_out: bool) -> TaskResult:
        """Attach supervision metadata without disturbing clean results.

        Fields are only replaced when non-default, so an undisturbed
        task's result stays byte-identical across pool sizes and to
        pre-supervision golden payloads.
        """
        if attempts > 1 and result.attempts != attempts:
            result = replace(result, attempts=attempts)
        if timed_out and not result.timed_out:
            result = replace(result, timed_out=True)
        return result

    def _run_inline(self, task: VerificationTask) -> TaskResult:
        """Execute one task here, honoring the same retry policy.

        Inline tasks can't crash or be timed out from outside (there is
        no supervisor above this process), but transient *results* —
        ``max_seconds`` trips, I/O-flavored engine errors — retry
        exactly as they would in a pool worker, keeping inline and
        pooled sweeps behaviorally aligned.
        """
        attempts = 0
        while True:
            attempts += 1
            result = run_task(task)
            if (attempts >= self.retry.max_attempts
                    or not _transient_result(result)):
                return self._decorate(result, attempts, timed_out=False)
            time.sleep(self.retry.delay(attempts, task.task_id))

    def _execute(
        self,
        tasks: List[VerificationTask],
        pending: List[int],
        on_result: Callable[[int, TaskResult], None],
    ) -> int:
        """Run the pending tasks; report each via ``on_result``.

        Returns the number of pool-worker restarts (0 for inline runs).
        """
        if self.processes == 1 or len(pending) == 1:
            # Inline: the process-wide program/system caches make this
            # warm by construction, so flat and sharded coincide.
            for index in pending:
                on_result(index, self._run_inline(tasks[index]))
            return 0
        # Two classes of task can't go to the pool and run inline
        # instead (one bad task must never kill the sweep): custom-model
        # tasks built from closures may not pickle, and runtime-
        # registered engines only exist in this process (workers under
        # spawn/forkserver re-import the registry with just the
        # builtins).
        poolable: List[int] = []
        inline: List[int] = []
        for index in pending:
            task = tasks[index]
            if task.engine not in BUILTIN_ENGINES:
                inline.append(index)
                continue
            try:
                pickle.dumps(task)
            except Exception:  # noqa: BLE001 — anything unpicklable
                inline.append(index)
            else:
                poolable.append(index)
        worker_restarts = 0
        if len(poolable) > 1:
            worker_restarts = self._execute_pool(tasks, poolable, on_result)
        else:
            inline = sorted(inline + poolable)
        for index in inline:
            on_result(index, self._run_inline(tasks[index]))
        return worker_restarts

    def _execute_pool(
        self,
        tasks: List[VerificationTask],
        poolable: List[int],
        on_result: Callable[[int, TaskResult], None],
    ) -> int:
        """Dispatch to the supervised pool (flat or sharded jobs)."""
        if self.scheduling == "sharded":
            # One job per protocol shard: the worker compiles the
            # protocol program on the shard's first task and serves the
            # rest warm.  Shards keep first-appearance order and tasks
            # keep input order inside their shard; the supervisor still
            # sees (and can retry / time out) every item individually.
            shards: Dict[str, List[int]] = {}
            for index in poolable:
                shards.setdefault(tasks[index].shard_key, []).append(index)
            jobs = [
                [(index, tasks[index]) for index in indices]
                for indices in shards.values()
            ]
        else:
            jobs = [[(index, tasks[index])] for index in poolable]
        pool = SupervisedPool(
            min(self.processes, len(jobs)),
            run_task,
            initializer=_init_worker,
            initargs=(code_version(), self.graph_store),
            task_timeout=self.task_timeout,
            retry=self.retry,
            fallback=_fallback_result,
            failure=_failure_result,
            transient=_transient_result,
            finalizer=flush_shared_graphs,
            fault_plan=self.fault_plan,
        )
        outcome = pool.run(
            jobs,
            on_result=lambda index, result, attempts, timed_out: on_result(
                index, self._decorate(result, attempts, timed_out)
            ),
        )
        return outcome.worker_restarts
