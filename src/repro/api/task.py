"""Verification tasks and resource limits.

A :class:`VerificationTask` is the unit of work of the public API: one
protocol (a registry entry by name, or a custom
:class:`~repro.core.system.SystemModel` / factory), one parameter
valuation, an obligation selection (named targets and/or explicit
queries), one engine, and one :class:`Limits`.  Tasks are plain data —
the :mod:`~repro.api.sweep` runner ships them to worker processes and
derives deterministic cache keys from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.coinspec import CoinSpec, resolve_coin_spec
from repro.core.system import SystemModel
from repro.errors import CheckError
from repro.protocols.registry import by_name
from repro.spec.queries import GameQuery, ReachQuery
from repro.version import stable_digest

__all__ = ["Limits", "VerificationTask", "TARGETS"]

#: The three consensus properties of the paper, in canonical order.
TARGETS: Tuple[str, ...] = ("agreement", "validity", "termination")

Query = Union[ReachQuery, GameQuery]
ModelSource = Union[SystemModel, Callable[[], SystemModel]]


@dataclass(frozen=True)
class Limits:
    """Uniform resource budget understood by *every* engine.

    ``None`` means "engine default".  Which limit actually tripped is
    reported per query in
    :attr:`repro.api.report.QueryOutcome.limit_tripped` rather than as
    a bare ``unknown``.

    Attributes:
        max_states: explicit engine — state budget per query.
        max_nodes: parameterized engine — schema-tree node budget per
            query.
        max_seconds: both engines — wall-clock budget shared by all
            queries of one obligation bundle.
    """

    max_states: Optional[int] = None
    max_nodes: Optional[int] = None
    max_seconds: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "max_states": self.max_states,
            "max_nodes": self.max_nodes,
            "max_seconds": self.max_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Limits":
        return cls(
            max_states=data.get("max_states"),
            max_nodes=data.get("max_nodes"),
            max_seconds=data.get("max_seconds"),
        )


@dataclass(frozen=True)
class VerificationTask:
    """One unit of verification work.

    Exactly one of ``protocol`` (a registry name, e.g. ``"mmr14"``) or
    ``model`` (a :class:`SystemModel` instance or zero-argument factory)
    must be given.  Registry tasks know their small valuation and the
    refined model for termination; custom-model tasks use the given
    model for every target and must bring their own valuation when run
    on the explicit engine.

    ``coin`` selects the :class:`~repro.core.coinspec.CoinSpec` the
    registry models are built under (a spec, a spec string like
    ``"biased:1/4"``, or None).  The default perfect coin normalizes to
    None so that an explicit ``coin="perfect"`` and the historical
    coin-free task are one identity -- ``task_id``, ``journal_key``,
    ``dedup_key``, the JSON wire format and the cache payload of
    coin-free tasks all stay byte-identical to pre-CoinSpec blobs.
    Custom-model tasks bake the coin into the model itself and must
    leave ``coin`` unset.
    """

    protocol: Optional[str] = None
    model: Optional[ModelSource] = None
    valuation: Optional[Dict[str, int]] = None
    #: named obligation bundles ("agreement" | "validity" | "termination")
    targets: Tuple[str, ...] = ()
    #: explicit extra queries, checked under the pseudo-target "custom"
    queries: Tuple[Query, ...] = ()
    engine: str = "explicit"
    limits: Limits = field(default_factory=Limits)
    #: coin model for registry protocols; None = the default perfect coin
    coin: Optional[CoinSpec] = None

    def __post_init__(self) -> None:
        if (self.protocol is None) == (self.model is None):
            raise CheckError(
                "a VerificationTask needs exactly one of protocol= (registry "
                "name) or model= (SystemModel or factory)"
            )
        if self.coin is not None:
            spec = resolve_coin_spec(self.coin)
            if spec.is_default:
                spec = None  # perfect == default: one identity, same bytes
            if spec is not None and self.model is not None:
                raise CheckError(
                    "coin= only applies to registry tasks; bake the coin "
                    "into a custom model via its factory's coin= keyword"
                )
            object.__setattr__(self, "coin", spec)
        if not self.targets and not self.queries:
            object.__setattr__(self, "targets", TARGETS)
        for target in self.targets:
            if target not in TARGETS:
                raise CheckError(
                    f"unknown target {target!r}; expected one of {TARGETS}"
                )

    # ------------------------------------------------------------------
    @property
    def protocol_name(self) -> str:
        if self.protocol is not None:
            return self.protocol
        model = self.model
        if isinstance(model, SystemModel):
            return model.name
        name = getattr(model, "__module__", "")
        return f"{name.rsplit('.', 1)[-1]}-custom" if name else "custom"

    @property
    def shard_key(self) -> str:
        """The key sharded sweeps group by (one shard = one protocol).

        All tasks of one protocol — every valuation, engine and target
        selection — land on the same persistent worker, which compiles
        the protocol's program once and keeps the shared engine caches
        warm across the shard.
        """
        return self.protocol_name

    @property
    def task_id(self) -> str:
        """Deterministic human-readable identity of this task."""
        if self.engine == "parameterized":
            params = "*"  # the schema checker covers all valuations
        else:
            valuation = self.resolved_valuation(strict=False)
            params = (
                ",".join(f"{k}={v}" for k, v in sorted(valuation.items()))
                if valuation
                else "*"
            )
        if self.coin is not None:
            # Appended *inside* the bracket so the id stays one token;
            # coin-free tasks keep the exact historical format.
            params = f"{params};coin={self.coin.spec_str()}"
        parts = list(self.targets)
        if self.queries:
            parts.append("custom[%s]" % "+".join(q.name for q in self.queries))
        return f"{self.protocol_name}[{params}]/{'+'.join(parts)}@{self.engine}"

    @property
    def journal_key(self) -> str:
        """Identity the sweep journal matches records against.

        ``task_id`` plus the resource limits: two sweeps whose tasks
        differ only in ``limits`` must not resume from each other's
        journals (a record produced under a tighter budget is not the
        result the looser sweep would compute).  Unlike the *cache*
        key this works for custom models and ad-hoc queries too — the
        journal only ever replays records into the identical task
        list, so a human-readable id is sufficient identity.
        """
        limits = ",".join(
            f"{k}={v}" for k, v in sorted(self.limits.to_dict().items())
        )
        return f"{self.task_id}|{limits}"

    @property
    def dedup_key(self) -> str:
        """The identity concurrent service requests collapse on.

        A digest of :attr:`journal_key` (task id + limits), so two
        clients submitting the same registry task — same protocol,
        valuation, targets, engine *and* resource budget — share one
        computation, while any difference in what would be computed
        keeps them apart.  Code version is deliberately absent: the
        key only ever lives inside one daemon process (and its
        version-guarded service journal).
        """
        return stable_digest(self.journal_key, 32)

    # ------------------------------------------------------------------
    def resolved_valuation(self, strict: bool = True) -> Dict[str, int]:
        """The concrete valuation for explicit checking.

        Registry tasks default to the entry's smallest admissible
        valuation; custom-model tasks must set one explicitly (an empty
        dict is returned — or a :class:`CheckError` raised under
        ``strict`` — otherwise).
        """
        if self.valuation is not None:
            return dict(self.valuation)
        if self.engine == "parameterized":
            return {}  # the schema checker quantifies over all valuations
        if self.protocol is not None:
            try:
                return dict(by_name(self.protocol).small_valuation)
            except KeyError:
                if strict:
                    raise
                return {}
        if strict:
            raise CheckError(
                f"task on custom model {self.protocol_name!r} needs an "
                f"explicit valuation= for the {self.engine!r} engine"
            )
        return {}

    def model_for_target(self, target: str) -> SystemModel:
        """The model a target's obligations run on.

        Registry entries use the refined model for termination (the
        category C binding conditions live there); custom models are
        used as-is for every target.
        """
        if self.protocol is not None:
            entry = by_name(self.protocol)
            if target == "termination":
                return entry.verification_model(coin=self.coin)
            return entry.build_model(coin=self.coin)
        model = self.model
        if isinstance(model, SystemModel):
            return model
        return model()

    def with_engine(self, engine: str) -> "VerificationTask":
        return replace(self, engine=engine)

    def with_coin(self, coin) -> "VerificationTask":
        """This task under another coin spec (None = perfect)."""
        return replace(self, coin=coin)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON wire format (what the verification service accepts).

        Only registry tasks with named targets serialize: a custom
        model is a live Python object and ad-hoc query objects have no
        JSON form — both raise :class:`CheckError` (run those locally
        through :func:`repro.api.sweep` instead).  ``valuation`` is
        emitted only when explicitly set, so a round trip preserves
        "use the registry default" exactly.
        """
        if self.protocol is None or self.queries:
            raise CheckError(
                "only registry tasks with named targets are JSON-"
                "serializable; custom models and ad-hoc queries cannot "
                "cross the service wire"
            )
        data = {
            "protocol": self.protocol,
            "targets": list(self.targets),
            "engine": self.engine,
            "limits": self.limits.to_dict(),
        }
        if self.valuation is not None:
            data["valuation"] = dict(self.valuation)
        if self.coin is not None:
            # Default-omitted: a coin-free task's payload is
            # byte-identical to the pre-CoinSpec wire format.
            data["coin"] = self.coin.spec_str()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationTask":
        """Rebuild a task from :meth:`to_dict` (validating targets)."""
        valuation = data.get("valuation")
        coin = data.get("coin")
        return cls(
            protocol=data["protocol"],
            valuation=(
                {k: int(v) for k, v in valuation.items()}
                if valuation is not None
                else None
            ),
            targets=tuple(data.get("targets", ())),
            engine=data.get("engine", "explicit"),
            limits=Limits.from_dict(data.get("limits", {})),
            coin=resolve_coin_spec(coin) if coin is not None else None,
        )

    # ------------------------------------------------------------------
    def cache_payload(self) -> Optional[dict]:
        """The JSON identity this task is cached under, or ``None``.

        Only registry tasks with named targets are cacheable: a custom
        model or ad-hoc query list has no stable serializable identity.
        The sweep runner completes the key with the code version.
        """
        if self.protocol is None or self.queries:
            return None
        payload = {
            "protocol": self.protocol,
            "valuation": sorted(self.resolved_valuation(strict=False).items()),
            "targets": list(self.targets),
            "engine": self.engine,
            "limits": self.limits.to_dict(),
        }
        if self.coin is not None:
            # Default-omitted, like the wire format: coin-free cache
            # keys (and thus entry digests) match pre-CoinSpec ones.
            payload["coin"] = self.coin.spec_str()
        return payload
