"""Model checkers: exhaustive explicit-state (fixed parameters) and
schema-based parameterized checking (the ByMC substitute).
"""

from repro.checker.explicit import ExplicitChecker
from repro.checker.result import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    Counterexample,
    ObligationReport,
)

__all__ = [
    "CheckResult",
    "Counterexample",
    "ExplicitChecker",
    "HOLDS",
    "ObligationReport",
    "UNKNOWN",
    "VIOLATED",
]
