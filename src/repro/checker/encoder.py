"""Encoding a schema (prefix) into linear integer arithmetic.

Given a schema prefix ``t_1 .. t_k`` (milestone flips and event
placements), the encoder builds one conjunction of linear constraints
whose integer solutions are exactly the parameter valuations, initial
configurations and per-segment rule-execution counts of schedules that
realize the prefix:

* **Population**: processes distributed over start locations sum to
  ``N(p)``; the coin automaton starts with ``num_coins`` tokens; the
  resilience condition constrains the parameters.
* **Flow**: location counters at every boundary are linear expressions
  over the initial counters and execution counts; within a segment
  rules fire as blocks in topological order, and each block requires its
  source counter (at block time) to cover its executions — for acyclic
  in-round graphs this is realizability-complete (swap argument).
* **Context**: a rule may fire in a segment only when all its ``>=``
  guards' milestones have flipped and none of its ``<`` guards' have.
* **Milestones**: at its boundary, a milestone's threshold holds over
  the accumulated variable values.
* **Events**: at its boundary, the query event's counter proposition
  holds.

Every SAT model is decoded back into a concrete schedule
(:meth:`SchemaEncoder.extract`) and *replayed* on the explicit
counter-system semantics before a counterexample is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.checker.milestones import CombinedModel, Milestone
from repro.checker.schemas import EventItem, SchemaItem
from repro.core.guards import Cmp
from repro.core.rules import Rule
from repro.counter.actions import Action
from repro.errors import CheckError
from repro.solver.linear import LinearProblem
from repro.spec.propositions import PropKind
from repro.spec.queries import ReachQuery

Expr = Dict[str, int]  # linear expression: var -> coeff ("" = constant)

CONST = ""


def _expr() -> Expr:
    return {CONST: 0}


def _add(expr: Expr, var: str, coeff: int) -> None:
    expr[var] = expr.get(var, 0) + coeff


def _merge_scaled(target: Expr, source: Expr, scale: int) -> None:
    for var, coeff in source.items():
        target[var] = target.get(var, 0) + scale * coeff


def _split(expr: Expr) -> Tuple[Dict[str, int], int]:
    coeffs = {var: c for var, c in expr.items() if var != CONST and c != 0}
    return coeffs, expr.get(CONST, 0)


@dataclass
class EncodedPrefix:
    """The constraint system of a schema prefix plus decoding tables."""

    problem: LinearProblem
    #: per segment: list of (x-variable name, rule) blocks in firing order
    blocks: List[List[Tuple[str, Rule]]]
    start_vars: Dict[str, str]  # location name -> k0 variable


class SchemaEncoder:
    """Builds :class:`LinearProblem` instances for schema prefixes."""

    def __init__(self, combined: CombinedModel, passes: int = 1):
        if passes < 1:
            raise CheckError("encoder needs at least one block pass")
        self.combined = combined
        self.passes = passes
        self.topo_rules = combined.topological_rule_order()
        # Per rule: milestones of its >= atoms and of its < atoms.
        self._ge_milestones: Dict[str, Tuple[Milestone, ...]] = {}
        self._lt_milestones: Dict[str, Tuple[Milestone, ...]] = {}
        for rule in combined.rules:
            ge, lt = [], []
            for atom in rule.guard:
                milestone = Milestone.of_guard(atom)
                (ge if atom.cmp is Cmp.GE else lt).append(milestone)
            self._ge_milestones[rule.name] = tuple(ge)
            self._lt_milestones[rule.name] = tuple(lt)

    # ------------------------------------------------------------------
    def _available(
        self, rule: Rule, segment: int, positions: Mapping[Milestone, int]
    ) -> bool:
        """May ``rule`` fire in ``segment`` under the prefix's contexts?

        A milestone at boundary position ``j`` is in force from segment
        ``j`` on (boundary ``j`` sits *before* segment ``j``).
        """
        for milestone in self._ge_milestones[rule.name]:
            position = positions.get(milestone)
            if position is None or position > segment:
                return False
        for milestone in self._lt_milestones[rule.name]:
            position = positions.get(milestone)
            if position is not None and position <= segment:
                return False
        return True

    # ------------------------------------------------------------------
    def encode(
        self,
        prefix: Sequence[SchemaItem],
        query: ReachQuery,
    ) -> EncodedPrefix:
        """Encode the prefix (and its event placements) as an ILP."""
        combined = self.combined
        model = combined.model
        problem = LinearProblem()

        # --- parameters and resilience ---------------------------------
        for item in model.environment.resilience:
            for form in item.ge_zero_forms():
                problem.ge(dict(form.coeffs), form.const)

        # --- initial population ----------------------------------------
        start_vars: Dict[str, str] = {}
        population: Expr = _expr()
        for loc in combined.process_start:
            var = f"k0_{loc.name}"
            start_vars[loc.name] = var
            _add(population, var, 1)
        n_expr = model.environment.num_processes
        pop_coeffs = {var: 1 for var in start_vars.values()}
        for name, coeff in n_expr.coeffs:
            pop_coeffs[name] = pop_coeffs.get(name, 0) - coeff
        problem.eq(pop_coeffs, -n_expr.const)
        # At least one modelled process.
        problem.ge(dict(n_expr.coeffs), n_expr.const - 1)
        for loc in combined.coin_start:
            var = f"k0_{loc.name}"
            start_vars[loc.name] = var
            problem.eq({var: 1}, -model.environment.num_coins)
        if query.init_filter:
            for loc_name, count in query.init_filter.items():
                var = start_vars.get(loc_name)
                if var is None:
                    raise CheckError(
                        f"init filter pins non-start location {loc_name!r}"
                    )
                problem.eq({var: 1}, -count)

        # --- symbolic state ---------------------------------------------
        kappa: Dict[str, Expr] = {loc.name: _expr() for loc in combined.locations}
        for loc_name, var in start_vars.items():
            _add(kappa[loc_name], var, 1)
        g: Dict[str, Expr] = {v: _expr() for v in combined.variables}

        # Milestone boundary positions (boundary j = j-th prefix item).
        positions: Dict[Milestone, int] = {}
        for index, item in enumerate(prefix):
            if isinstance(item, Milestone):
                positions[item] = index + 1

        blocks: List[List[Tuple[str, Rule]]] = []
        for index, item in enumerate(prefix):
            segment = index  # segment S_index runs before boundary index+1
            segment_blocks: List[Tuple[str, Rule]] = []
            for pass_no in range(self.passes):
                for rule in self.topo_rules:
                    if not self._available(rule, segment, positions):
                        continue
                    suffix = f"_{pass_no}" if self.passes > 1 else ""
                    xvar = f"x{segment}{suffix}_{rule.name}"
                    segment_blocks.append((xvar, rule))
                    # Block feasibility: source counter covers the block.
                    coeffs, const = _split(kappa[rule.source])
                    coeffs[xvar] = coeffs.get(xvar, 0) - 1
                    problem.ge(coeffs, const)
                    # State update.
                    _add(kappa[rule.source], xvar, -1)
                    _add(kappa[rule.target], xvar, 1)
                    for var_name, increment in rule.update:
                        _add(g[var_name], xvar, increment)
            blocks.append(segment_blocks)

            # Boundary condition for the item itself.
            if isinstance(item, Milestone):
                condition: Expr = _expr()
                for var_name, coeff in item.lhs:
                    _merge_scaled(condition, g[var_name], coeff)
                for name, coeff in item.rhs.coeffs:
                    _add(condition, name, -coeff)
                condition[CONST] -= item.rhs.const
                coeffs, const = _split(condition)
                problem.ge(coeffs, const)
            else:
                event = query.events[item.index]
                total: Expr = _expr()
                for loc_name in event.locations:
                    _merge_scaled(total, kappa[loc_name], 1)
                coeffs, const = _split(total)
                if event.kind is PropKind.SOME:
                    problem.ge(coeffs, const - event.bound)
                else:
                    problem.eq(coeffs, const)

        return EncodedPrefix(problem, blocks, start_vars)

    # ------------------------------------------------------------------
    def encode_set_relaxation(self, flipped) -> LinearProblem:
        """Order-insensitive relaxation: can this milestone *set* flip at all?

        One segment containing every rule whose ``>=`` guards lie inside
        ``flipped`` (``<`` guards are ignored — more permissive), with
        all milestone thresholds imposed at the final boundary.  Shared
        variables are monotone, so any ordered schedule realizing the
        set also satisfies this relaxation: infeasibility soundly prunes
        *every* ordering of the set.  Cached by the caller per frozenset.
        """
        combined = self.combined
        model = combined.model
        problem = LinearProblem()
        for item in model.environment.resilience:
            for form in item.ge_zero_forms():
                problem.ge(dict(form.coeffs), form.const)

        start_vars: Dict[str, str] = {}
        for loc in combined.process_start:
            start_vars[loc.name] = f"k0_{loc.name}"
        n_expr = model.environment.num_processes
        pop_coeffs = {var: 1 for var in start_vars.values()}
        for name, coeff in n_expr.coeffs:
            pop_coeffs[name] = pop_coeffs.get(name, 0) - coeff
        problem.eq(pop_coeffs, -n_expr.const)
        problem.ge(dict(n_expr.coeffs), n_expr.const - 1)
        for loc in combined.coin_start:
            start_vars[loc.name] = f"k0_{loc.name}"
            problem.eq({f"k0_{loc.name}": 1}, -model.environment.num_coins)

        kappa: Dict[str, Expr] = {loc.name: _expr() for loc in combined.locations}
        for loc_name, var in start_vars.items():
            _add(kappa[loc_name], var, 1)
        g: Dict[str, Expr] = {v: _expr() for v in combined.variables}
        for rule in self.topo_rules:
            if not all(m in flipped for m in self._ge_milestones[rule.name]):
                continue
            xvar = f"xs_{rule.name}"
            coeffs, const = _split(kappa[rule.source])
            coeffs[xvar] = coeffs.get(xvar, 0) - 1
            problem.ge(coeffs, const)
            _add(kappa[rule.source], xvar, -1)
            _add(kappa[rule.target], xvar, 1)
            for var_name, increment in rule.update:
                _add(g[var_name], xvar, increment)
        for milestone in flipped:
            condition: Expr = _expr()
            for var_name, coeff in milestone.lhs:
                _merge_scaled(condition, g[var_name], coeff)
            for name, coeff in milestone.rhs.coeffs:
                _add(condition, name, -coeff)
            condition[CONST] -= milestone.rhs.const
            coeffs, const = _split(condition)
            problem.ge(coeffs, const)
        return problem

    # ------------------------------------------------------------------
    def extract(
        self, encoded: EncodedPrefix, model_values: Mapping[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int], Tuple[Action, ...]]:
        """Decode an ILP model into (valuation, placement, schedule)."""
        env = self.combined.model.environment
        valuation = {name: model_values.get(name, 0) for name in env.parameters}
        placement = {
            loc_name: model_values.get(var, 0)
            for loc_name, var in encoded.start_vars.items()
        }
        actions: List[Action] = []
        for segment_blocks in encoded.blocks:
            for xvar, rule in segment_blocks:
                count = model_values.get(xvar, 0)
                if count <= 0:
                    continue
                info = self.combined.branch_info[rule.name]
                action = Action(info.original_rule, 0, info.branch)
                actions.extend([action] * count)
        return valuation, placement, tuple(actions)
