"""Exhaustive explicit-state checking for fixed parameters.

For a concrete admissible valuation (say ``n=4, t=1, f=1``) the
single-round counter system is finite; this module checks the paper's
queries exactly on it:

* :meth:`ExplicitChecker.check_reach` — A-queries.  The violation of
  ``A(F p → G q)`` is a finite schedule witnessing both ``p`` and
  ``¬q`` somewhere along the run, so we BFS over *(configuration,
  witnessed-event mask)* pairs; a full mask is a counterexample, and
  the BFS tree reconstructs the schedule.

* :meth:`ExplicitChecker.check_game` — E-queries from Lemma 2
  (``∀ adversary ∃ path``).  The violation is an adversary strategy
  forcing all events **against every coin outcome**, i.e. the adversary
  (choosing rules) plays against an angelic resolver of non-Dirac
  branches.  We solve the reachability game by backward induction
  (attractor with AND-nodes for probabilistic rules).

The explicit checker is the ground truth the parameterized (schema)
checker is cross-validated against in the test suite.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.locations import LocKind
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.config import Config
from repro.counter.fairness import all_fair_executions_terminate, is_non_blocking
from repro.counter.system import CounterSystem
from repro.checker.result import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    Counterexample,
    ObligationReport,
)
from repro.errors import CheckError
from repro.spec.obligations import ObligationSet, obligations_for
from repro.spec.queries import GameQuery, ReachQuery

State = Tuple[Config, int]


def _needs_single_round(model: SystemModel) -> bool:
    """Multi-round models (with border locations) must be cut to one round."""
    return bool(model.process.locations_of(LocKind.BORDER)) and not bool(
        model.process.locations_of(LocKind.BORDER_COPY)
    )


class ExplicitChecker:
    """Explicit-state verifier for one model and one parameter valuation."""

    def __init__(
        self,
        model: SystemModel,
        valuation: Mapping[str, int],
        max_states: int = 400_000,
    ):
        self.original_model = model
        self.model = model.single_round() if _needs_single_round(model) else model
        self.valuation = dict(valuation)
        self.system = CounterSystem(self.model, valuation)
        self.max_states = max_states

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _initial_states(self, query) -> List[Tuple[Config, int]]:
        configs = list(self.system.initial_configs(query.init_filter))
        if not configs:
            raise CheckError(
                f"{self.model.name}: no initial configuration matches the "
                f"init filter {query.init_filter!r}"
            )
        return [(config, self._mask(config, query, 0)) for config in configs]

    def _mask(self, config: Config, query, base: int) -> int:
        mask = base
        for bit, event in enumerate(query.events):
            if mask & (1 << bit):
                continue
            if event.holds(self.system, config):
                mask |= 1 << bit
        return mask

    def _placement_of(self, config: Config) -> Dict[str, int]:
        placement = {}
        for index, loc in enumerate(self.system.locations):
            count = config.counter(0, index)
            if count:
                placement[loc.name] = count
        return placement

    # ------------------------------------------------------------------
    # A-queries
    # ------------------------------------------------------------------
    def check_reach(self, query: ReachQuery) -> CheckResult:
        """BFS for a schedule witnessing every event of the query."""
        start = time.perf_counter()
        full = (1 << len(query.events)) - 1
        parents: Dict[State, Optional[Tuple[State, Action]]] = {}
        queue: deque = deque()
        for config, mask in self._initial_states(query):
            state = (config, mask)
            if state not in parents:
                parents[state] = None
                if mask == full:
                    return self._reach_violation(query, state, parents, start)
                queue.append(state)
        while queue:
            if len(parents) > self.max_states:
                return CheckResult(
                    query=query.name,
                    verdict=UNKNOWN,
                    states_explored=len(parents),
                    time_seconds=time.perf_counter() - start,
                    detail=f"state budget {self.max_states} exceeded",
                )
            config, mask = queue.popleft()
            for action in self.system.enabled_actions(config, include_stutters=False):
                succ = self.system.apply(config, action)
                succ_mask = self._mask(succ, query, mask)
                state = (succ, succ_mask)
                if state in parents:
                    continue
                parents[state] = ((config, mask), action)
                if succ_mask == full:
                    return self._reach_violation(query, state, parents, start)
                queue.append(state)
        return CheckResult(
            query=query.name,
            verdict=HOLDS,
            states_explored=len(parents),
            time_seconds=time.perf_counter() - start,
        )

    def _reach_violation(
        self,
        query: ReachQuery,
        state: State,
        parents: Dict[State, Optional[Tuple[State, Action]]],
        start: float,
    ) -> CheckResult:
        actions: List[Action] = []
        cursor: Optional[State] = state
        while True:
            entry = parents[cursor]
            if entry is None:
                break
            cursor, action = entry[0], entry[1]
            actions.append(action)
        actions.reverse()
        counterexample = Counterexample(
            valuation=self.valuation,
            initial_placement=self._placement_of(cursor[0]),
            schedule=tuple(actions),
            description=f"violates {query.name}: {query.formula}",
        )
        return CheckResult(
            query=query.name,
            verdict=VIOLATED,
            counterexample=counterexample,
            states_explored=len(parents),
            time_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # E-queries (reachability games, Lemma 2)
    # ------------------------------------------------------------------
    def check_game(self, query: GameQuery) -> CheckResult:
        """Can a (coin-blind) adversary force all events?

        Builds the reachable game graph over *(config, mask)* states.
        The adversary picks an enabled rule; for a non-Dirac rule the
        angel picks the branch, so a move wins only when **all** of its
        branch successors win.
        """
        start = time.perf_counter()
        full = (1 << len(query.events)) - 1
        initial = []
        explored: Dict[State, List[List[State]]] = {}
        stack: List[State] = []
        for config, mask in self._initial_states(query):
            state = (config, mask)
            initial.append(state)
            if state not in explored:
                explored[state] = []
                stack.append(state)

        while stack:
            if len(explored) > self.max_states:
                return CheckResult(
                    query=query.name,
                    verdict=UNKNOWN,
                    states_explored=len(explored),
                    time_seconds=time.perf_counter() - start,
                    detail=f"state budget {self.max_states} exceeded",
                )
            state = stack.pop()
            config, mask = state
            if mask == full:
                continue  # terminal for the game: adversary already won
            moves: List[List[Tuple[Action, State]]] = []
            seen_rule_rounds = set()
            for action in self.system.enabled_actions(config, include_stutters=False):
                key = (action.rule, action.round)
                if key in seen_rule_rounds:
                    continue
                seen_rule_rounds.add(key)
                rule = self.system.rules[action.rule]
                branch_states: List[Tuple[Action, State]] = []
                if rule.is_dirac:
                    act = Action(action.rule, action.round)
                    succ = self.system.apply(config, act)
                    branch_states.append((act, (succ, self._mask(succ, query, mask))))
                else:
                    for branch in rule.branch_names:
                        act = Action(action.rule, action.round, branch)
                        succ = self.system.apply(config, act)
                        branch_states.append(
                            (act, (succ, self._mask(succ, query, mask)))
                        )
                moves.append(branch_states)
                for _act, succ_state in branch_states:
                    if succ_state not in explored:
                        explored[succ_state] = []
                        stack.append(succ_state)
            explored[state] = moves

        winning = self._attractor(explored, full)
        for state in initial:
            if state in winning:
                schedule = self._strategy_play(explored, winning, state, full)
                counterexample = Counterexample(
                    valuation=self.valuation,
                    initial_placement=self._placement_of(state[0]),
                    schedule=tuple(schedule),
                    description=(
                        f"adversary strategy forcing {query.name} violation "
                        f"(one play shown; all coin outcomes lose)"
                    ),
                )
                return CheckResult(
                    query=query.name,
                    verdict=VIOLATED,
                    counterexample=counterexample,
                    states_explored=len(explored),
                    time_seconds=time.perf_counter() - start,
                )
        return CheckResult(
            query=query.name,
            verdict=HOLDS,
            states_explored=len(explored),
            time_seconds=time.perf_counter() - start,
        )

    def _attractor(self, explored, full: int) -> set:
        """Backward fixed point: states from which the adversary wins."""
        winning = {state for state in explored if state[1] == full}
        changed = True
        while changed:
            changed = False
            for state, moves in explored.items():
                if state in winning:
                    continue
                for branch_states in moves:
                    if all(succ in winning for _act, succ in branch_states):
                        winning.add(state)
                        changed = True
                        break
        return winning

    def _strategy_play(self, explored, winning: set, state: State, full: int):
        """One play of the winning strategy (for the counterexample).

        At every step the adversary takes a winning move; when a move is
        probabilistic every branch is winning, so the play follows the
        first branch — the returned schedule is one representative path.
        """
        play: List[Action] = []
        visited = set()
        current = state
        while current[1] != full and current not in visited:
            visited.add(current)
            moves = explored.get(current, [])
            chosen = None
            for branch_states in moves:
                if all(succ in winning for _act, succ in branch_states):
                    chosen = branch_states
                    break
            if chosen is None:
                break
            action, succ_state = chosen[0]
            play.append(action)
            current = succ_state
        return play

    # ------------------------------------------------------------------
    # Dispatch / bundles
    # ------------------------------------------------------------------
    def check(self, query: Union[ReachQuery, GameQuery]) -> CheckResult:
        if isinstance(query, ReachQuery):
            return self.check_reach(query)
        if isinstance(query, GameQuery):
            return self.check_game(query)
        raise CheckError(f"unsupported query type {type(query).__name__}")

    def side_condition(self, name: str) -> bool:
        """Theorem 2 side conditions on the single-round system."""
        if name == "non_blocking":
            return is_non_blocking(self.system, max_states=self.max_states)
        if name == "fair_termination":
            return all_fair_executions_terminate(
                self.system, max_states=self.max_states
            )
        raise CheckError(f"unknown side condition {name!r}")

    def check_obligations(self, obligations: ObligationSet) -> ObligationReport:
        start = time.perf_counter()
        results = []
        for query in obligations.reach_queries:
            results.append(self.check_reach(query))
        for query in obligations.game_queries:
            results.append(self.check_game(query))
        sides = {name: self.side_condition(name) for name in obligations.side_conditions}
        return ObligationReport(
            protocol=obligations.protocol,
            target=obligations.target,
            results=tuple(results),
            side_conditions=sides,
            time_seconds=time.perf_counter() - start,
        )

    def check_target(self, target: str) -> ObligationReport:
        """Check agreement / validity / termination end-to-end."""
        return self.check_obligations(obligations_for(self.model, target))
