"""Exhaustive explicit-state checking for fixed parameters.

For a concrete admissible valuation (say ``n=4, t=1, f=1``) the
single-round counter system is finite; this module checks the paper's
queries exactly on it:

* :meth:`ExplicitChecker.check_reach` — A-queries.  The violation of
  ``A(F p → G q)`` is a finite schedule witnessing both ``p`` and
  ``¬q`` somewhere along the run, so we BFS over *(configuration,
  witnessed-event mask)* pairs; a full mask is a counterexample, and
  the BFS tree reconstructs the schedule.

* :meth:`ExplicitChecker.check_game` — E-queries from Lemma 2
  (``∀ adversary ∃ path``).  The violation is an adversary strategy
  forcing all events **against every coin outcome**, i.e. the adversary
  (choosing rules) plays against an angelic resolver of non-Dirac
  branches.  We solve the reachability game with a linear backward
  *worklist attractor*: predecessor lists plus a pending-branch counter
  per (state, move) — a move becomes winning exactly when its counter
  of not-yet-winning branch successors reaches 0, so every game edge is
  relaxed at most once (the quadratic re-scan fixed point it replaced
  visited all edges per round).

Engine notes: states are flat interned :class:`~repro.counter.config.
Config` tuples; successors come from the memoised
:meth:`~repro.counter.system.CounterSystem.successor_groups` cache,
which is **shared across every query** checked on one
:class:`ExplicitChecker` — in :meth:`check_obligations` the reach
queries, game queries and fairness side conditions all walk the same
explored graph instead of re-expanding it per query.  The bound system
itself comes from :func:`~repro.counter.system.shared_system`, so the
sharing extends *across checkers*: the compiled
:class:`~repro.counter.program.ProtocolProgram` is built once per model
structure per process, and successive checkers at the same valuation
(obligation targets of one task, tasks of one sweep shard) inherit the
warm explored graph.  With an active persistent graph store
(:func:`repro.counter.store.activate_graph_store` — the sweep runner
installs one in every worker when asked) the sharing crosses
*processes* too: a cold system loads the successor graph a previous
process flushed, and :meth:`check_obligations` flushes what this
bundle explored.  Query events are compiled once per check into
index-based closures (:meth:`repro.spec.propositions.Prop.compile`), so
the per-successor mask update does no name→index resolution.

Frontier-batched expansion: with ``expansion="batch"`` (the default
when numpy is importable; ``REPRO_ENGINE_BATCH=0`` or
``expansion="scalar"`` opts out) the reach BFS and the game-graph
seeding drain their worklists a frontier at a time through
:class:`repro.counter.batch.BatchExpander`, which pre-fills the shared
successor cache with one vectorized numpy pass per frontier.  The
scalar path remains both the fallback and the consumer — cached groups
are bit-identical, so verdicts and ``states_explored`` do not depend on
the expansion engine.

The explicit checker is the ground truth the parameterized (schema)
checker is cross-validated against in the test suite.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.locations import LocKind
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.batch import resolve_expansion
from repro.counter.config import Config
from repro.counter.fairness import all_fair_executions_terminate, is_non_blocking
from repro.counter.store import active_graph_store
from repro.counter.system import shared_system
from repro.checker.result import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    Counterexample,
    ObligationReport,
)
from repro.checker.timebox import TimeBudgeted
from repro.errors import CheckError, DeadlineExceeded, StateBudgetExceeded
from repro.spec.obligations import ObligationSet, obligations_for
from repro.spec.queries import GameQuery, ReachQuery

State = Tuple[Config, int]
Event = Callable[[Config], bool]


def _needs_single_round(model: SystemModel) -> bool:
    """Multi-round models (with border locations) must be cut to one round."""
    return bool(model.process.locations_of(LocKind.BORDER)) and not bool(
        model.process.locations_of(LocKind.BORDER_COPY)
    )


class ExplicitChecker(TimeBudgeted):
    """Explicit-state verifier for one model and one parameter valuation."""

    def __init__(
        self,
        model: SystemModel,
        valuation: Mapping[str, int],
        max_states: int = 400_000,
        max_seconds: Optional[float] = None,
        expansion: Optional[str] = None,
    ):
        self.original_model = model
        self.model = model.single_round() if _needs_single_round(model) else model
        self.valuation = dict(valuation)
        # shared_system: checkers for the same protocol structure and
        # valuation (successive obligation targets, successive sweep
        # tasks in one persistent worker) reuse one bound system and
        # its warm successor caches — results-neutral, see its doc.
        self.system = shared_system(self.model, valuation)
        self.max_states = max_states
        # expansion: "batch" drains BFS/game frontiers through the
        # vectorized expander of repro.counter.batch (the default when
        # numpy is importable and REPRO_ENGINE_BATCH != 0), "scalar"
        # keeps the per-config path.  Results are bit-identical either
        # way — the batch engine only pre-fills the successor cache.
        self.expansion = resolve_expansion(expansion)
        # max_seconds: wall-clock budget per query — or per obligation
        # *bundle* when the queries run under check_obligations, which
        # pins a shared deadline across them (TimeBudgeted mixin).
        self._init_time_budget(max_seconds)

    def _expander(self):
        """The frontier batch expander, or ``None`` on the scalar path."""
        if self.expansion != "batch":
            return None
        return self.system.batch_expander()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _compiled_events(self, query) -> Tuple[Event, ...]:
        return tuple(event.compile(self.system) for event in query.events)

    def _initial_states(
        self, query, events: Sequence[Event]
    ) -> List[Tuple[Config, int]]:
        configs = list(self.system.initial_configs(query.init_filter))
        if not configs:
            raise CheckError(
                f"{self.model.name}: no initial configuration matches the "
                f"init filter {query.init_filter!r}"
            )
        return [(config, _mask(config, events, 0)) for config in configs]

    def _timeout_result(self, query, states: int, start: float) -> CheckResult:
        return CheckResult(
            query=query.name,
            verdict=UNKNOWN,
            states_explored=states,
            time_seconds=time.perf_counter() - start,
            detail=f"wall-clock limit {self.max_seconds}s exceeded",
            limit="max_seconds",
        )

    def _placement_of(self, config: Config) -> Dict[str, int]:
        placement = {}
        for index, loc in enumerate(self.system.locations):
            count = config.counter(0, index)
            if count:
                placement[loc.name] = count
        return placement

    # ------------------------------------------------------------------
    # A-queries
    # ------------------------------------------------------------------
    def check_reach(self, query: ReachQuery) -> CheckResult:
        """BFS for a schedule witnessing every event of the query."""
        start = time.perf_counter()
        events = self._compiled_events(query)
        full = (1 << len(events)) - 1
        parents: Dict[State, Optional[Tuple[State, Action]]] = {}
        queue: deque = deque()
        for config, mask in self._initial_states(query, events):
            state = (config, mask)
            if state not in parents:
                parents[state] = None
                if mask == full:
                    return self._reach_violation(query, state, parents, start)
                queue.append(state)
        successor_groups = self.system.successor_groups
        expander = self._expander()
        deadline = self.query_deadline(start)
        pops = 0
        while queue:
            if len(parents) > self.max_states:
                return CheckResult(
                    query=query.name,
                    verdict=UNKNOWN,
                    states_explored=len(parents),
                    time_seconds=time.perf_counter() - start,
                    detail=f"state budget {self.max_states} exceeded",
                    limit="max_states",
                )
            if deadline is not None:
                pops += 1
                if not pops & 0xFF and time.perf_counter() > deadline:
                    return self._timeout_result(query, len(parents), start)
            parent = queue.popleft()
            config, mask = parent
            if expander is not None:
                # Frontier-batched expansion: a cache miss on the popped
                # config vectorizes one numpy pass over every uncached
                # config currently queued; the consumption below then
                # runs on cache hits.  Results-neutral (the expander
                # fills _succ_cache with the scalar path's exact group
                # tuples), so order/verdicts/states stay bit-identical.
                expander.ensure(config, (c for c, _m in queue))
            for group in successor_groups(config):
                for action, succ in group:
                    succ_mask = _mask(succ, events, mask)
                    state = (succ, succ_mask)
                    if state in parents:
                        continue
                    parents[state] = (parent, action)
                    if succ_mask == full:
                        return self._reach_violation(query, state, parents, start)
                    queue.append(state)
        return CheckResult(
            query=query.name,
            verdict=HOLDS,
            states_explored=len(parents),
            time_seconds=time.perf_counter() - start,
        )

    def _reach_violation(
        self,
        query: ReachQuery,
        state: State,
        parents: Dict[State, Optional[Tuple[State, Action]]],
        start: float,
    ) -> CheckResult:
        actions: List[Action] = []
        cursor: Optional[State] = state
        while True:
            entry = parents[cursor]
            if entry is None:
                break
            cursor, action = entry[0], entry[1]
            actions.append(action)
        actions.reverse()
        counterexample = Counterexample(
            valuation=self.valuation,
            initial_placement=self._placement_of(cursor[0]),
            schedule=tuple(actions),
            description=f"violates {query.name}: {query.formula}",
        )
        return CheckResult(
            query=query.name,
            verdict=VIOLATED,
            counterexample=counterexample,
            states_explored=len(parents),
            time_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # E-queries (reachability games, Lemma 2)
    # ------------------------------------------------------------------
    def check_game(self, query: GameQuery) -> CheckResult:
        """Can a (coin-blind) adversary force all events?

        Builds the reachable game graph over *(config, mask)* states.
        The adversary picks an enabled rule; for a non-Dirac rule the
        angel picks the branch, so a move wins only when **all** of its
        branch successors win.
        """
        start = time.perf_counter()
        events = self._compiled_events(query)
        full = (1 << len(events)) - 1
        initial = []
        explored: Dict[State, List[List[Tuple[Action, State]]]] = {}
        stack: List[State] = []
        for config, mask in self._initial_states(query, events):
            state = (config, mask)
            initial.append(state)
            if state not in explored:
                explored[state] = []
                stack.append(state)

        successor_groups = self.system.successor_groups
        expander = self._expander()
        deadline = self.query_deadline(start)
        pops = 0
        while stack:
            if len(explored) > self.max_states:
                return CheckResult(
                    query=query.name,
                    verdict=UNKNOWN,
                    states_explored=len(explored),
                    time_seconds=time.perf_counter() - start,
                    detail=f"state budget {self.max_states} exceeded",
                    limit="max_states",
                )
            if deadline is not None:
                pops += 1
                if not pops & 0xFF and time.perf_counter() > deadline:
                    return self._timeout_result(query, len(explored), start)
            state = stack.pop()
            config, mask = state
            if mask == full:
                continue  # terminal for the game: adversary already won
            if expander is not None:
                # Same frontier-at-a-time draining as the reach BFS:
                # the game-graph seeding expands everything pending on
                # the stack in one vectorized pass (full-mask states
                # are terminal and never expanded, matching scalar).
                expander.ensure(
                    config, (c for c, m in stack if m != full)
                )
            moves: List[List[Tuple[Action, State]]] = []
            for group in successor_groups(config):
                branch_states: List[Tuple[Action, State]] = []
                for action, succ in group:
                    succ_state = (succ, _mask(succ, events, mask))
                    branch_states.append((action, succ_state))
                    if succ_state not in explored:
                        explored[succ_state] = []
                        stack.append(succ_state)
                moves.append(branch_states)
            explored[state] = moves

        winning = self._attractor(explored, full)
        for state in initial:
            if state in winning:
                schedule = self._strategy_play(explored, winning, state, full)
                counterexample = Counterexample(
                    valuation=self.valuation,
                    initial_placement=self._placement_of(state[0]),
                    schedule=tuple(schedule),
                    description=(
                        f"adversary strategy forcing {query.name} violation "
                        f"(one play shown; all coin outcomes lose)"
                    ),
                )
                return CheckResult(
                    query=query.name,
                    verdict=VIOLATED,
                    counterexample=counterexample,
                    states_explored=len(explored),
                    time_seconds=time.perf_counter() - start,
                )
        return CheckResult(
            query=query.name,
            verdict=HOLDS,
            states_explored=len(explored),
            time_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _attractor(explored, full: int) -> set:
        """Linear-time backward worklist: adversary-winning states.

        For every (state, move) pair we keep a *pending* counter of
        branch successors that are not yet winning; predecessor lists
        route each newly-winning state to the counters it decrements.
        A state joins the attractor when one of its moves hits pending
        0 (all coin branches of that move are winning).  Each game edge
        is processed exactly once, versus once per iteration in the
        quadratic fixed point this replaced.
        """
        winning = set()
        worklist: deque = deque()
        pending: Dict[Tuple[State, int], int] = {}
        predecessors: Dict[State, List[Tuple[State, int]]] = {}
        for state, moves in explored.items():
            if state[1] == full:
                winning.add(state)
                worklist.append(state)
                continue
            for index, branch_states in enumerate(moves):
                pending[(state, index)] = len(branch_states)
                for _action, succ_state in branch_states:
                    predecessors.setdefault(succ_state, []).append((state, index))
        while worklist:
            newly_won = worklist.popleft()
            for state, index in predecessors.get(newly_won, ()):
                if state in winning:
                    continue
                key = (state, index)
                pending[key] -= 1
                if pending[key] == 0:
                    winning.add(state)
                    worklist.append(state)
        return winning

    def _strategy_play(self, explored, winning: set, state: State, full: int):
        """One play of the winning strategy (for the counterexample).

        At every step the adversary takes a winning move; when a move is
        probabilistic every branch is winning, so the play follows the
        first branch — the returned schedule is one representative path.
        """
        play: List[Action] = []
        visited = set()
        current = state
        while current[1] != full and current not in visited:
            visited.add(current)
            moves = explored.get(current, [])
            chosen = None
            for branch_states in moves:
                if all(succ in winning for _act, succ in branch_states):
                    chosen = branch_states
                    break
            if chosen is None:
                break
            action, succ_state = chosen[0]
            play.append(action)
            current = succ_state
        return play

    # ------------------------------------------------------------------
    # Dispatch / bundles
    # ------------------------------------------------------------------
    def check(self, query: Union[ReachQuery, GameQuery]) -> CheckResult:
        if isinstance(query, ReachQuery):
            return self.check_reach(query)
        if isinstance(query, GameQuery):
            return self.check_game(query)
        raise CheckError(f"unsupported query type {type(query).__name__}")

    def side_condition(self, name: str) -> bool:
        """Theorem 2 side conditions on the single-round system.

        Honours ``max_seconds`` like the queries do (one budget of its
        own standalone, the shared deadline inside a bundle), raising
        :class:`~repro.errors.DeadlineExceeded` on expiry and
        :class:`~repro.errors.StateBudgetExceeded` when ``max_states``
        overflows (an incomplete search must not report ``True``).
        """
        deadline = self.query_deadline(time.perf_counter())
        if name == "non_blocking":
            return is_non_blocking(
                self.system, max_states=self.max_states, deadline=deadline
            )
        if name == "fair_termination":
            return all_fair_executions_terminate(
                self.system, max_states=self.max_states, deadline=deadline
            )
        raise CheckError(f"unknown side condition {name!r}")

    def check_obligations(self, obligations: ObligationSet) -> ObligationReport:
        """Check every obligation, sharing one explored graph.

        All queries (and the side conditions) run on the same
        :class:`CounterSystem`, whose successor cache persists across
        them — after the first query expands a configuration, every
        later query resolves its successors with a single dict hit.

        The ``max_seconds`` budget covers the whole bundle: one shared
        deadline spans every query *and* the side conditions.  A side
        condition cut off by a budget (the deadline, before or
        mid-exploration, or the ``max_states`` cap) is reported in
        ``skipped_side_conditions`` with the limit that cut it —
        distinguishable from a genuine failure — and the aggregate
        verdict degrades to ``unknown``.
        """
        start = time.perf_counter()
        results = []
        sides = {}
        skipped = {}
        with self.shared_deadline():
            for query in obligations.reach_queries:
                results.append(self.check_reach(query))
            for query in obligations.game_queries:
                results.append(self.check_game(query))
            for name in obligations.side_conditions:
                if self.deadline_expired():
                    skipped[name] = "max_seconds"
                    continue
                try:
                    sides[name] = self.side_condition(name)
                except DeadlineExceeded:
                    skipped[name] = "max_seconds"
                except StateBudgetExceeded:
                    skipped[name] = "max_states"
        # Persist what this bundle explored: with an active graph
        # store (sweep workers, `verify` under a store) the warm
        # successor graph survives this process and a later run warms
        # itself from disk instead of re-expanding.  Best-effort and
        # skip-if-unchanged inside the store; a no-op otherwise.
        store = active_graph_store()
        if store is not None:
            store.flush(self.system)
        return ObligationReport(
            protocol=obligations.protocol,
            target=obligations.target,
            results=tuple(results),
            side_conditions=sides,
            time_seconds=time.perf_counter() - start,
            skipped_side_conditions=skipped,
        )

    def check_target(self, target: str) -> ObligationReport:
        """Check agreement / validity / termination end-to-end."""
        return self.check_obligations(obligations_for(self.model, target))


def _mask(config: Config, events: Sequence[Event], base: int) -> int:
    """Fold newly-witnessed events into ``base`` (monotone bit mask)."""
    mask = base
    for bit, event in enumerate(events):
        flag = 1 << bit
        if not (mask & flag) and event(config):
            mask |= flag
    return mask
