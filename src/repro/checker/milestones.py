"""Milestones: the threshold events that structure schemas.

Shared and coin variables only ever *increase* inside a round, so every
threshold condition ``lhs >= rhs(p)`` flips from false to true at most
once along a round's execution — ByMC calls these flip events
*milestones*.  A guard atom contributes exactly one milestone:

* a ``>=`` atom is true from its milestone on;
* a ``<`` atom is true *until* its milestone (the same event
  ``lhs >= rhs``, reached from below).

Milestones admit a *precedence* partial order: if ``lhs1 >= lhs2``
pointwise and ``rhs1 <= rhs2`` for every admissible parameter valuation,
event 1 can never happen after event 2 (e.g. ``b0 >= t+1-f`` always
precedes ``b0 >= 2t+1-f``).  Schemas only enumerate orderings consistent
with this order, which is where the milestone-count sensitivity of the
paper's Table IV comes from.

This module also builds the :class:`CombinedModel` — the single-round
process automaton plus the *derandomized* coin automaton folded into
one rule universe — which both the encoder and the schema enumerator
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.automaton import ThresholdAutomaton
from repro.core.expression import ParamExpr
from repro.core.guards import Cmp, Guard
from repro.core.locations import LocKind, Location
from repro.core.rules import Rule
from repro.core.system import SystemModel
from repro.core.transforms import derandomize
from repro.errors import CheckError
from repro.solver.ilp import UNSAT, ilp_feasible
from repro.solver.linear import LinearProblem


@dataclass(frozen=True)
class Milestone:
    """The event ``lhs >= rhs`` (monotone, happens at most once)."""

    lhs: Tuple[Tuple[str, int], ...]
    rhs: ParamExpr

    @staticmethod
    def of_guard(guard: Guard) -> "Milestone":
        return Milestone(guard.lhs, guard.rhs)

    def __str__(self) -> str:
        terms = " + ".join(
            name if coeff == 1 else f"{coeff}*{name}" for name, coeff in self.lhs
        )
        return f"[{terms} reaches {self.rhs}]"


@dataclass(frozen=True)
class BranchInfo:
    """Maps a derandomized coin rule back to its probabilistic origin."""

    original_rule: str
    branch: Optional[str]


class CombinedModel:
    """Single-round process + derandomized coin in one rule universe."""

    def __init__(self, model: SystemModel):
        if model.process.locations_of(LocKind.BORDER) and not model.process.locations_of(
            LocKind.BORDER_COPY
        ):
            raise CheckError(
                f"{model.name}: CombinedModel expects a single-round model; "
                f"call model.single_round() first"
            )
        self.model = model
        self.locations: List[Location] = list(model.process.locations)
        self.rules: List[Rule] = list(model.process.rules)
        self.branch_info: Dict[str, BranchInfo] = {
            rule.name: BranchInfo(rule.name, None) for rule in model.process.rules
        }
        if model.coin is not None:
            coin_np = derandomize(model.coin)
            self.locations.extend(coin_np.locations)
            for rule in coin_np.rules:
                self.rules.append(rule)
                if "@" in rule.name:
                    original, branch = rule.name.split("@", 1)
                    self.branch_info[rule.name] = BranchInfo(original, branch)
                else:
                    self.branch_info[rule.name] = BranchInfo(rule.name, None)
        # Stutter rules (trivial self-loops) never matter for reachability.
        self.rules = [
            rule
            for rule in self.rules
            if not (rule.is_self_loop and not rule.update)
        ]
        self.loc_by_name = {loc.name: loc for loc in self.locations}
        self.variables = list(model.shared_vars) + list(model.coin_vars)
        self.process_start = _start_locations(model.process.locations)
        self.coin_start = (
            _start_locations(model.coin.locations) if model.coin is not None else ()
        )

    # ------------------------------------------------------------------
    def topological_rule_order(self) -> List[Rule]:
        """Rules sorted by the depth of their source in the location DAG.

        Within one schema segment rules fire as blocks in this order;
        for acyclic in-round location graphs (all the paper's protocols)
        any realizable multiset of executions is realizable in block
        order (sources first, swap argument as for Theorem 1).
        """
        adjacency: Dict[str, List[str]] = {loc.name: [] for loc in self.locations}
        indegree: Dict[str, int] = {loc.name: 0 for loc in self.locations}
        for rule in self.rules:
            if rule.is_self_loop:
                continue
            adjacency[rule.source].append(rule.target)
            indegree[rule.target] += 1
        depth: Dict[str, int] = {}
        frontier = [name for name, deg in indegree.items() if deg == 0]
        for name in frontier:
            depth[name] = 0
        queue = list(frontier)
        while queue:
            node = queue.pop()
            for succ in adjacency[node]:
                candidate = depth[node] + 1
                if candidate > depth.get(succ, -1):
                    depth[succ] = candidate
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(depth) != len(adjacency):
            # In-round cycles: fall back to declaration order (sound for
            # the encoder because it replays every counterexample).
            return list(self.rules)
        indexed = list(enumerate(self.rules))
        indexed.sort(key=lambda pair: (depth.get(pair[1].source, 0), pair[0]))
        return [rule for _i, rule in indexed]


def _start_locations(locations: Sequence[Location]) -> Tuple[Location, ...]:
    borders = tuple(l for l in locations if l.kind is LocKind.BORDER)
    if borders:
        return borders
    return tuple(l for l in locations if l.kind is LocKind.INITIAL)


# ----------------------------------------------------------------------
# Extraction and precedence
# ----------------------------------------------------------------------
def extract_milestones(combined: CombinedModel) -> List[Milestone]:
    """Distinct milestones over all rule guards, in first-seen order."""
    seen: Dict[Milestone, None] = {}
    for rule in combined.rules:
        for atom in rule.guard:
            seen.setdefault(Milestone.of_guard(atom), None)
    return list(seen)


def _holds_over_rc(expr: ParamExpr, model: SystemModel) -> bool:
    """Is ``expr >= 0`` valid for every admissible parameter valuation?

    Decided by refuting ``expr <= -1`` under the resilience condition
    (an exact ILP query over the parameters only).
    """
    problem = LinearProblem()
    for item in model.environment.resilience:
        for form in item.ge_zero_forms():
            problem.ge(dict(form.coeffs), form.const)
    problem.ge(
        {name: -coeff for name, coeff in expr.coeffs}, -expr.const - 1
    )  # -expr - 1 >= 0  <=>  expr <= -1
    return ilp_feasible(problem, max_nodes=2_000).status == UNSAT


def precedes(a: Milestone, b: Milestone, model: SystemModel) -> bool:
    """Must event ``a`` happen no later than event ``b``?

    Sufficient condition: ``a.lhs >= b.lhs`` coefficient-wise (so the
    left-hand sides compare pointwise for non-negative variables) and
    ``a.rhs <= b.rhs`` for all admissible parameters — then whenever
    ``b`` has fired, ``a`` has too.
    """
    if a == b:
        return False
    b_coeffs = dict(b.lhs)
    for name, coeff in b_coeffs.items():
        if dict(a.lhs).get(name, 0) < coeff:
            return False
    # a.lhs >= b.lhs pointwise requires every coefficient of a to
    # dominate b's; extra variables in a only increase its lhs.
    return _holds_over_rc(b.rhs - a.rhs, model)


def precedence_order(
    milestones: Sequence[Milestone], model: SystemModel
) -> Dict[Milestone, FrozenSet[Milestone]]:
    """``predecessors[m]`` = milestones that must fire before ``m``."""
    predecessors: Dict[Milestone, FrozenSet[Milestone]] = {}
    for b in milestones:
        preds = frozenset(a for a in milestones if a != b and precedes(a, b, model))
        predecessors[b] = preds
    # Sanity: mutual precedence would make enumeration empty.
    for b, preds in predecessors.items():
        for a in preds:
            if b in predecessors[a]:
                raise CheckError(
                    f"milestones {a} and {b} mutually precede each other; "
                    f"merge the equivalent guards"
                )
    return predecessors
