"""The parameterized (schema-based) checker — our ByMC substitute.

Checks A-queries for **all** admissible parameter valuations at once by
searching the schema tree:

1. Milestones and their precedence order are extracted from the
   single-round model (:mod:`repro.checker.milestones`).
2. A DFS enumerates schema prefixes (interleavings of milestone flips
   and event placements, events eagerly first).
3. Every prefix is encoded into linear arithmetic
   (:mod:`repro.checker.encoder`); an infeasible prefix prunes its whole
   subtree (fast float LP, exact simplex as fallback/option).
4. A complete schema (all events placed) is decided exactly by the
   Fraction-based branch & bound; a SAT model is decoded into a concrete
   schedule and **replayed on the explicit counter-system semantics**
   before being reported as a counterexample.

Verdicts: ``violated`` (with a replayed counterexample), ``holds``
(schema tree exhausted, all leaves refuted), or ``unknown`` (budget
exceeded or an ILP gave up).  ``nschemas`` reports the analytic schema
count of :func:`repro.checker.schemas.count_schemas` — the quantity the
paper's Tables II/IV track.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.checker.encoder import EncodedPrefix, SchemaEncoder
from repro.checker.milestones import (
    CombinedModel,
    Milestone,
    extract_milestones,
    precedence_order,
)
from repro.checker.result import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    Counterexample,
    ObligationReport,
)
from repro.checker.schemas import EventItem, count_schemas, iter_extensions
from repro.checker.timebox import TimeBudgeted
from repro.core.locations import LocKind
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.system import CounterSystem
from repro.errors import CheckError
from repro.solver.floatlp import float_feasible, rounded_integer_model
from repro.solver.ilp import SAT, UNSAT, ilp_feasible
from repro.solver.simplex import lp_feasible
from repro.spec.obligations import ObligationSet
from repro.spec.queries import ReachQuery


class _Budget(Exception):
    """Internal: a resource limit tripped (carries the limit name)."""

    def __init__(self, limit: str):
        super().__init__(limit)
        self.limit = limit


class ParameterizedChecker(TimeBudgeted):
    """Schema-based verification of A-queries over all parameters."""

    def __init__(
        self,
        model: SystemModel,
        node_budget: int = 100_000,
        leaf_ilp_nodes: int = 4_000,
        use_float_lp: bool = True,
        passes: int = 1,
        max_seconds: Optional[float] = None,
    ):
        needs_cut = bool(model.process.locations_of(LocKind.BORDER)) and not bool(
            model.process.locations_of(LocKind.BORDER_COPY)
        )
        self.model = model.single_round() if needs_cut else model
        self.combined = CombinedModel(self.model)
        self.encoder = SchemaEncoder(self.combined, passes=passes)
        self.milestones: List[Milestone] = extract_milestones(self.combined)
        self.predecessors = precedence_order(self.milestones, self.model)
        self.node_budget = node_budget
        self.leaf_ilp_nodes = leaf_ilp_nodes
        self.use_float_lp = use_float_lp
        # max_seconds: wall-clock budget per query — or per obligation
        # bundle under check_obligations (TimeBudgeted mixin, same
        # semantics as the explicit checker).
        self._init_time_budget(max_seconds)
        #: order-insensitive feasibility of milestone sets (shared
        #: across queries — it does not depend on the events)
        self._set_cache: Dict[frozenset, bool] = {}
        # statistics of the latest check
        self.nodes = 0
        self.leaves = 0
        self.pruned = 0
        self.unknown_leaves = 0

    # ------------------------------------------------------------------
    def nschemas(self, query: ReachQuery) -> int:
        """Analytic schema count for the query (Tables II/IV metric)."""
        return count_schemas(self.milestones, self.predecessors, len(query.events))

    def milestone_count(self) -> int:
        return len(self.milestones)

    # ------------------------------------------------------------------
    def _prefix_feasible(self, encoded: EncodedPrefix) -> bool:
        if self.use_float_lp:
            answer = float_feasible(encoded.problem)
            if answer is not None:
                return answer
        return lp_feasible(encoded.problem).feasible

    def _set_feasible(self, flipped: frozenset) -> bool:
        """Cached order-insensitive prune for milestone sets."""
        cached = self._set_cache.get(flipped)
        if cached is not None:
            return cached
        problem = self.encoder.encode_set_relaxation(flipped)
        if self.use_float_lp:
            answer = float_feasible(problem)
            if answer is None:
                answer = lp_feasible(problem).feasible
        else:
            answer = lp_feasible(problem).feasible
        self._set_cache[flipped] = answer
        return answer

    def _replay(
        self,
        query: ReachQuery,
        valuation: Dict[str, int],
        placement: Dict[str, int],
        schedule: Tuple[Action, ...],
    ) -> bool:
        """Validate a decoded counterexample on the explicit semantics.

        Replay systems are built directly (not via ``shared_system``)
        and with a *private* intern table: decoded valuations are
        arbitrary, and pinning a warm system — or interning throwaway
        configs into the program-lifetime shared table — per decoded
        valuation would trade a lot of memory for very little reuse
        (and a full shared table resets the warm caches of every live
        system of the protocol).  The expensive part is still shared:
        ``CounterSystem`` binds the process-wide compiled program for
        the model structure, so a replay costs one guard-threshold
        evaluation, not a recompilation.
        """
        from repro.counter.store import InternTable

        try:
            system = CounterSystem(
                self.model, valuation, intern_table=InternTable()
            )
        except Exception:
            return False
        config = system.make_config(placement)
        witnessed = [event.holds(system, config) for event in query.events]
        for action in schedule:
            if not system.is_applicable(config, action):
                return False
            config = system.apply(config, action)
            for index, event in enumerate(query.events):
                if not witnessed[index] and event.holds(system, config):
                    witnessed[index] = True
        return all(witnessed)

    # ------------------------------------------------------------------
    def check_reach(self, query: ReachQuery) -> CheckResult:
        """Verify one A-query parametrically."""
        start = time.perf_counter()
        self.nodes = 0
        self.leaves = 0
        self.pruned = 0
        self.unknown_leaves = 0
        counterexample: Optional[Counterexample] = None
        deadline = self.query_deadline(start)

        def dfs(prefix, flipped, placed) -> Optional[Counterexample]:
            self.nodes += 1
            if self.nodes > self.node_budget:
                raise _Budget("max_nodes")
            if deadline is not None and not self.nodes & 0x3F and (
                time.perf_counter() > deadline
            ):
                raise _Budget("max_seconds")
            is_leaf = len(placed) == len(query.events)
            ends_with_event = bool(prefix) and isinstance(prefix[-1], EventItem)
            # Cheap cached pre-filter: an unflippable milestone *set*
            # prunes every ordering at once without an LP per node.
            if prefix and not ends_with_event:
                if not self._set_feasible(flipped):
                    self.pruned += 1
                    return None
            # Full order-sensitive prefix LP (event boundaries pinned).
            encoded = None
            if prefix:
                encoded = self.encoder.encode(prefix, query)
                if not self._prefix_feasible(encoded):
                    self.pruned += 1
                    return None
            elif is_leaf:
                encoded = self.encoder.encode(prefix, query)
            if is_leaf:
                self.leaves += 1
                # Fast path: round the float vertex and verify exactly.
                model_values = None
                if self.use_float_lp:
                    model_values = rounded_integer_model(encoded.problem)
                if model_values is None:
                    result = ilp_feasible(
                        encoded.problem, max_nodes=self.leaf_ilp_nodes
                    )
                    if result.status == SAT:
                        model_values = result.model
                    elif result.status != UNSAT:
                        self.unknown_leaves += 1
                        return None
                if model_values is not None:
                    valuation, placement, schedule = self.encoder.extract(
                        encoded, model_values
                    )
                    if self._replay(query, valuation, placement, schedule):
                        return Counterexample(
                            valuation=valuation,
                            initial_placement={
                                k: v for k, v in placement.items() if v
                            },
                            schedule=schedule,
                            description=(
                                f"violates {query.name}: {query.formula} "
                                f"(parameterized witness, replayed)"
                            ),
                        )
                    # The encoding over-approximated; treat as unknown.
                    self.unknown_leaves += 1
                return None
            for item in iter_extensions(
                self.milestones,
                self.predecessors,
                flipped,
                placed,
                len(query.events),
            ):
                if isinstance(item, EventItem):
                    found = dfs(
                        prefix + [item], flipped, placed | {item.index}
                    )
                else:
                    found = dfs(prefix + [item], flipped | {item}, placed)
                if found is not None:
                    return found
            return None

        exhausted = True
        tripped = ""
        try:
            counterexample = dfs([], frozenset(), frozenset())
        except _Budget as budget:
            exhausted = False
            tripped = budget.limit

        elapsed = time.perf_counter() - start
        schemas = self.nschemas(query)
        if counterexample is not None:
            return CheckResult(
                query=query.name,
                verdict=VIOLATED,
                counterexample=counterexample,
                states_explored=self.nodes,
                time_seconds=elapsed,
                nschemas=schemas,
                detail=f"{self.leaves} schemas decided, {self.pruned} pruned",
            )
        if not exhausted or self.unknown_leaves:
            return CheckResult(
                query=query.name,
                verdict=UNKNOWN,
                states_explored=self.nodes,
                time_seconds=elapsed,
                nschemas=schemas,
                detail=(
                    f"limit tripped={tripped or 'none'}, "
                    f"unknown leaves={self.unknown_leaves}"
                ),
                limit=tripped,
            )
        return CheckResult(
            query=query.name,
            verdict=HOLDS,
            states_explored=self.nodes,
            time_seconds=elapsed,
            nschemas=schemas,
            detail=f"{self.leaves} schemas decided, {self.pruned} pruned",
        )

    # ------------------------------------------------------------------
    def check_obligations(self, obligations: ObligationSet) -> ObligationReport:
        """Check the reach queries of a bundle (games are explicit-only)."""
        start = time.perf_counter()
        with self.shared_deadline():
            results = [self.check_reach(q) for q in obligations.reach_queries]
        return ObligationReport(
            protocol=obligations.protocol,
            target=obligations.target,
            results=tuple(results),
            time_seconds=time.perf_counter() - start,
        )
