"""Verification verdicts and counterexamples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.counter.actions import Action

HOLDS = "holds"
VIOLATED = "violated"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Counterexample:
    """A concrete witness refuting a query.

    For A-queries this is a schedule; for E-queries (games) the schedule
    is one play of the winning adversary strategy (coin branches chosen
    arbitrarily among the all-winning options).
    """

    valuation: Dict[str, int]
    initial_placement: Dict[str, int]
    schedule: Tuple[Action, ...]
    description: str = ""

    def __str__(self) -> str:
        steps = " ".join(str(action) for action in self.schedule)
        placement = ", ".join(
            f"{name}={count}" for name, count in self.initial_placement.items() if count
        )
        return (
            f"parameters {self.valuation}; start [{placement}]; "
            f"schedule: {steps}"
        )


@dataclass
class CheckResult:
    """Outcome of one query check."""

    query: str
    verdict: str
    counterexample: Optional[Counterexample] = None
    states_explored: int = 0
    time_seconds: float = 0.0
    #: number of schemas examined (parameterized checker only)
    nschemas: int = 0
    detail: str = ""
    #: which resource limit produced an ``unknown`` verdict, if any:
    #: ``"max_states"`` | ``"max_nodes"`` | ``"max_seconds"`` | ``""``.
    limit: str = ""

    @property
    def holds(self) -> bool:
        """True iff the query was verified."""
        return self.verdict == HOLDS

    @property
    def violated(self) -> bool:
        """True iff a counterexample was found."""
        return self.verdict == VIOLATED

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.query}: {self.verdict}{extra}"


@dataclass
class ObligationReport:
    """Aggregated outcome over an obligation set (one consensus property)."""

    protocol: str
    target: str
    results: Tuple[CheckResult, ...]
    side_conditions: Dict[str, bool] = field(default_factory=dict)
    time_seconds: float = 0.0
    #: side conditions cut off by a resource budget, mapped to the limit
    #: that cut them (``"max_seconds"`` | ``"max_states"``): neither
    #: established nor failed — the verdict degrades to ``unknown``.
    skipped_side_conditions: Dict[str, str] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """Aggregate verdict: violated > unknown > holds."""
        if any(r.verdict == VIOLATED for r in self.results):
            return VIOLATED
        if any(r.verdict == UNKNOWN for r in self.results):
            return UNKNOWN
        if not all(self.side_conditions.values()):
            return UNKNOWN
        if self.skipped_side_conditions:
            return UNKNOWN
        return HOLDS

    @property
    def counterexample(self) -> Optional[Counterexample]:
        for result in self.results:
            if result.counterexample is not None:
                return result.counterexample
        return None

    @property
    def states_explored(self) -> int:
        return sum(r.states_explored for r in self.results)

    @property
    def nschemas(self) -> int:
        return sum(r.nschemas for r in self.results)

    def __str__(self) -> str:
        lines = [f"{self.protocol} / {self.target}: {self.verdict}"]
        for result in self.results:
            lines.append(f"  {result}")
        for name, ok in self.side_conditions.items():
            lines.append(f"  [side] {name}: {'ok' if ok else 'FAILED'}")
        for name, limit in self.skipped_side_conditions.items():
            lines.append(f"  [side] {name}: skipped ({limit})")
        return "\n".join(lines)
