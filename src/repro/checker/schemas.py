"""Schema enumeration and counting.

A *schema* is an interleaving of milestone flips and the query's
temporal events: milestones respect the precedence order, each of the
query's events occurs exactly once, and the sequence ends with the last
event (trailing milestones cannot contribute to an already-witnessed
violation).  Each schema denotes the family of schedules whose guard
flips and property observations happen in that order; §V reduces the
existence of a violating schedule within a schema to linear-arithmetic
feasibility (see :mod:`repro.checker.encoder`).

The *number of schemas* — ``nschemas`` in the paper's Tables II/IV — is
computed analytically by :func:`count_schemas`: a DP over (downward-
closed milestone set, events already placed).  This reproduces the
paper's observation that the schema count explodes with the milestone
count (Table IV) without enumerating anything.

:func:`iter_extensions` drives the DFS of the parameterized checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.checker.milestones import Milestone


@dataclass(frozen=True)
class EventItem:
    """A placement of the query's ``index``-th temporal event."""

    index: int

    def __str__(self) -> str:
        return f"<event {self.index}>"


SchemaItem = Union[Milestone, EventItem]


def addable_milestones(
    milestones: Sequence[Milestone],
    predecessors: Mapping[Milestone, FrozenSet[Milestone]],
    flipped: FrozenSet[Milestone],
) -> List[Milestone]:
    """Milestones whose predecessors have all flipped already."""
    result = []
    for m in milestones:
        if m in flipped:
            continue
        if predecessors[m] <= flipped:
            result.append(m)
    return result


def iter_extensions(
    milestones: Sequence[Milestone],
    predecessors: Mapping[Milestone, FrozenSet[Milestone]],
    flipped: FrozenSet[Milestone],
    events_placed: FrozenSet[int],
    n_events: int,
) -> Iterator[SchemaItem]:
    """All items that may extend the current schema prefix.

    Events come first so that counterexample-bearing branches (which
    need all events placed) are reached as early as possible.
    """
    for index in range(n_events):
        if index not in events_placed:
            yield EventItem(index)
    for m in addable_milestones(milestones, predecessors, flipped):
        yield m


def count_schemas(
    milestones: Sequence[Milestone],
    predecessors: Mapping[Milestone, FrozenSet[Milestone]],
    n_events: int,
) -> int:
    """Number of schemas (unpruned enumeration leaves) for a query.

    DP on ``(flipped downset, number of events placed)``: a leaf is
    reached exactly when the last event is placed, so

        f(D, e_left) = sum over addable milestones m of f(D + m, e_left)
                       + e_left * [f(D, e_left - 1) if e_left > 1 else 1]

    (events are distinct, hence the factor ``e_left``).
    """
    order = {m: i for i, m in enumerate(milestones)}
    cache: Dict[Tuple[FrozenSet[int], int], int] = {}

    def visit(flipped: FrozenSet[Milestone], remaining: int) -> int:
        key = (frozenset(order[m] for m in flipped), remaining)
        if key in cache:
            return cache[key]
        total = 0
        # Place one of the remaining (distinct) events here.
        if remaining == 1:
            total += remaining  # placing the last event ends the schema
        elif remaining > 1:
            total += remaining * visit(flipped, remaining - 1)
        # Or flip an addable milestone.
        for m in addable_milestones(milestones, predecessors, flipped):
            total += visit(flipped | {m}, remaining)
        cache[key] = total
        return total

    if n_events == 0:
        return 1
    return visit(frozenset(), n_events)


def count_linear_extensions(
    milestones: Sequence[Milestone],
    predecessors: Mapping[Milestone, FrozenSet[Milestone]],
) -> int:
    """Number of full milestone orderings (no events) — diagnostic."""
    order = {m: i for i, m in enumerate(milestones)}
    cache: Dict[FrozenSet[int], int] = {}

    def visit(flipped: FrozenSet[Milestone]) -> int:
        if len(flipped) == len(milestones):
            return 1
        key = frozenset(order[m] for m in flipped)
        if key in cache:
            return cache[key]
        total = 0
        for m in addable_milestones(milestones, predecessors, flipped):
            total += visit(flipped | {m})
        cache[key] = total
        return total

    return visit(frozenset())
