"""Shared wall-clock budgeting for the checkers.

Both the explicit and the parameterized checker accept the same
``max_seconds`` limit (see :class:`repro.api.task.Limits`); this mixin
holds the one copy of its semantics:

* standalone query checks each get a ``max_seconds`` budget of their
  own (:meth:`query_deadline` derives it from the query's start time);
* inside a :meth:`shared_deadline` scope — used by
  ``check_obligations`` and the engine adapters for ad-hoc query lists
  — every query draws on a single deadline pinned on entry, so the
  budget covers the whole bundle.
"""

from __future__ import annotations

import contextlib
import time
from typing import Optional


class TimeBudgeted:
    """Mixin: optional wall-clock deadline shared across query bundles."""

    def _init_time_budget(self, max_seconds: Optional[float]) -> None:
        self.max_seconds = max_seconds
        self._deadline: Optional[float] = None

    @contextlib.contextmanager
    def shared_deadline(self):
        """Scope under which ``max_seconds`` is one shared budget.

        No-op when ``max_seconds`` is unset or a deadline is already
        pinned (nested scopes keep the outermost budget).
        """
        if self.max_seconds is None or self._deadline is not None:
            yield
            return
        self._deadline = time.perf_counter() + self.max_seconds
        try:
            yield
        finally:
            self._deadline = None

    def query_deadline(self, start: float) -> Optional[float]:
        """The deadline a query starting at ``start`` must respect."""
        if self._deadline is not None:
            return self._deadline
        if self.max_seconds is not None:
            return start + self.max_seconds
        return None

    def deadline_expired(self) -> bool:
        """Has the pinned bundle deadline already passed?"""
        return (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        )
