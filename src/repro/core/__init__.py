"""Core formal objects: threshold automata extended with common coins.

Public surface of the paper's §III: parameter expressions, guards,
locations, rules, the process threshold automaton ``TAn``, the
common-coin probabilistic automaton ``PTAc``, environments
``(Pi, RC, N)``, the combined :class:`~repro.core.system.SystemModel`,
and the three model transformations (derandomization, single-round
construction, binding refinement).
"""

from repro.core.automaton import ThresholdAutomaton
from repro.core.builder import AutomatonBuilder
from repro.core.coin import CoinAutomaton, standard_coin_automaton
from repro.core.coinspec import (
    BiasedCoin,
    CoinSpec,
    DeltaFailingCoin,
    DisagreeingCoin,
    PerfectCoin,
    coin_spec_from_dict,
    parse_coin_spec,
    resolve_coin_spec,
)
from repro.core.environment import (
    Constraint,
    Environment,
    eq,
    ge,
    gt,
    le,
    lt,
    standard_environment,
)
from repro.core.expression import ParamExpr, params
from repro.core.guards import Cmp, Guard, Var
from repro.core.locations import LocKind, Location, border, final, initial, intermediate
from repro.core.rules import ProbRule, Rule, coin_toss, dirac, fair_coin, make_update
from repro.core.system import SystemModel
from repro.core.transforms import (
    BORDER_COPY_SUFFIX,
    border_copy_name,
    derandomize,
    refine_bca,
    single_round,
    single_round_coin,
)

__all__ = [
    "AutomatonBuilder",
    "BORDER_COPY_SUFFIX",
    "BiasedCoin",
    "Cmp",
    "CoinAutomaton",
    "CoinSpec",
    "Constraint",
    "DeltaFailingCoin",
    "DisagreeingCoin",
    "Environment",
    "Guard",
    "LocKind",
    "Location",
    "ParamExpr",
    "PerfectCoin",
    "ProbRule",
    "Rule",
    "SystemModel",
    "ThresholdAutomaton",
    "Var",
    "border",
    "border_copy_name",
    "coin_spec_from_dict",
    "coin_toss",
    "derandomize",
    "dirac",
    "eq",
    "fair_coin",
    "final",
    "ge",
    "gt",
    "initial",
    "intermediate",
    "le",
    "lt",
    "make_update",
    "params",
    "parse_coin_spec",
    "refine_bca",
    "resolve_coin_spec",
    "single_round",
    "single_round_coin",
    "standard_coin_automaton",
    "standard_environment",
]
