"""Threshold automata for correct processes (§III-B of the paper).

A threshold automaton ``TAn = (Ln, Vn, Rn)`` has locations partitioned
into border/initial/intermediate/final sets, variables split into shared
variables Γ and coin variables Ω, and guarded rules with non-negative
update vectors.  This module implements the non-probabilistic automaton
used for correct processes, together with the structural validation
rules stated in the paper:

* ``|B| = |I|``, border locations feed initial locations through
  ``(l, l', true, 0)`` rules;
* round-switch rules lead from final locations to border locations of
  the next round, also with trivial guard and update;
* a location is a border location iff all incoming edges are
  round-switch rules, and final iff its only outgoing edge is one;
* the automaton is *canonical*: every rule lying on a cycle has a zero
  update vector;
* a rule's guard is either a conjunction of simple guards (over shared
  variables) or of coin guards (over coin variables), and process rules
  never update coin variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.guards import Guard
from repro.core.locations import LocKind, Location
from repro.core.rules import Rule
from repro.errors import ValidationError


def strongly_connected_components(
    nodes: Iterable[str], edges: Iterable[Tuple[str, str]]
) -> Dict[str, int]:
    """Map each node to an SCC id (iterative Tarjan).

    Exposed for reuse by the transforms and analysis modules.
    """
    adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
    for src, dst in edges:
        adjacency[src].append(dst)

    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    component: Dict[str, int] = {}
    counter = [0]
    comp_counter = [0]

    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_counter[0]
                    if member == node:
                        break
                comp_counter[0] += 1
    return component


class ThresholdAutomaton:
    """A non-probabilistic threshold automaton.

    ``role`` distinguishes the constraints the paper places on the two
    kinds of automata sharing one variable space:

    * ``"process"`` (default): rules never update coin variables, and a
      rule guard is homogeneous — all-simple or all-coin;
    * ``"coin"``: the shape obtained by derandomizing a
      :class:`repro.core.coin.CoinAutomaton` (Definition 1) — guards are
      simple only, updates touch coin variables only.
    """

    def __init__(
        self,
        name: str,
        locations: Sequence[Location],
        shared_vars: Sequence[str],
        coin_vars: Sequence[str],
        rules: Sequence[Rule],
        role: str = "process",
    ):
        if role not in ("process", "coin"):
            raise ValidationError(f"unknown automaton role {role!r}")
        self.role = role
        self.name = name
        self.locations: Tuple[Location, ...] = tuple(locations)
        self.shared_vars: Tuple[str, ...] = tuple(shared_vars)
        self.coin_vars: Tuple[str, ...] = tuple(coin_vars)
        self.rules: Tuple[Rule, ...] = tuple(rules)

        self._loc_by_name: Dict[str, Location] = {}
        self._rule_by_name: Dict[str, Rule] = {}
        self._rules_from: Dict[str, List[Rule]] = {}
        self._rules_to: Dict[str, List[Rule]] = {}
        self._validate_basic()
        self._index()

    # ------------------------------------------------------------------
    # Construction-time validation and indexing
    # ------------------------------------------------------------------
    def _validate_basic(self) -> None:
        names = [loc.name for loc in self.locations]
        if len(set(names)) != len(names):
            raise ValidationError(f"{self.name}: duplicate location names")
        var_names = list(self.shared_vars) + list(self.coin_vars)
        if len(set(var_names)) != len(var_names):
            raise ValidationError(f"{self.name}: duplicate variable names")
        self._loc_by_name = {loc.name: loc for loc in self.locations}
        shared, coin = set(self.shared_vars), set(self.coin_vars)

        rule_names = [rule.name for rule in self.rules]
        if len(set(rule_names)) != len(rule_names):
            raise ValidationError(f"{self.name}: duplicate rule names")

        for rule in self.rules:
            for endpoint in (rule.source, rule.target):
                if endpoint not in self._loc_by_name:
                    raise ValidationError(
                        f"{self.name}: rule {rule.name!r} references unknown "
                        f"location {endpoint!r}"
                    )
            guard_vars = rule.guard_variables()
            unknown = guard_vars - shared - coin
            if unknown:
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} guards undeclared "
                    f"variables {sorted(unknown)}"
                )
            # Guard homogeneity: either all simple or all coin (§III-B).
            if guard_vars and not (guard_vars <= shared or guard_vars <= coin):
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} mixes shared and coin "
                    f"variables in its guard"
                )
            updated = rule.updated_variables()
            unknown = updated - shared - coin
            if unknown:
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} updates undeclared "
                    f"variables {sorted(unknown)}"
                )
            if self.role == "process":
                # Process rules must keep coin variables unchanged.
                touched_coins = updated & coin
                if touched_coins:
                    raise ValidationError(
                        f"{self.name}: process rule {rule.name!r} updates coin "
                        f"variables {sorted(touched_coins)}"
                    )
            else:
                # Derandomized coin rules: simple guards, coin-only updates.
                if guard_vars & coin:
                    raise ValidationError(
                        f"{self.name}: coin rule {rule.name!r} must use simple "
                        f"guards only"
                    )
                if updated & shared:
                    raise ValidationError(
                        f"{self.name}: coin rule {rule.name!r} must not update "
                        f"shared variables"
                    )

    def _index(self) -> None:
        self._rule_by_name = {rule.name: rule for rule in self.rules}
        self._rules_from = {loc.name: [] for loc in self.locations}
        self._rules_to = {loc.name: [] for loc in self.locations}
        for rule in self.rules:
            self._rules_from[rule.source].append(rule)
            self._rules_to[rule.target].append(rule)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def location(self, name: str) -> Location:
        """The location named ``name`` (raises ``KeyError`` if absent)."""
        return self._loc_by_name[name]

    def has_location(self, name: str) -> bool:
        return name in self._loc_by_name

    def rule(self, name: str) -> Rule:
        """The rule named ``name`` (raises ``KeyError`` if absent)."""
        return self._rule_by_name[name]

    def rules_from(self, location: str) -> Tuple[Rule, ...]:
        return tuple(self._rules_from[location])

    def rules_to(self, location: str) -> Tuple[Rule, ...]:
        return tuple(self._rules_to[location])

    def locations_of(
        self,
        kind: Optional[LocKind] = None,
        value: Optional[int] = None,
        decision: Optional[bool] = None,
    ) -> Tuple[Location, ...]:
        """Locations filtered by kind, value and/or decision flag."""
        result = []
        for loc in self.locations:
            if kind is not None and loc.kind is not kind:
                continue
            if value is not None and loc.value != value:
                continue
            if decision is not None and loc.decision != decision:
                continue
            result.append(loc)
        return tuple(result)

    @property
    def border_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.BORDER)

    @property
    def initial_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.INITIAL)

    @property
    def final_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.FINAL)

    @property
    def border_copy_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.BORDER_COPY)

    def decision_locations(self, value: Optional[int] = None) -> Tuple[Location, ...]:
        """The accepting locations ``D`` (optionally ``D_v``)."""
        return self.locations_of(kind=LocKind.FINAL, value=value, decision=True)

    @property
    def round_switch_rules(self) -> Tuple[Rule, ...]:
        """Rules from final to border locations (the set ``S``)."""
        return tuple(
            rule
            for rule in self.rules
            if self.location(rule.source).kind is LocKind.FINAL
            and self.location(rule.target).kind is LocKind.BORDER
        )

    @property
    def border_entry_rules(self) -> Tuple[Rule, ...]:
        """Rules from border to initial locations."""
        return tuple(
            rule
            for rule in self.rules
            if self.location(rule.source).kind is LocKind.BORDER
            and self.location(rule.target).kind is LocKind.INITIAL
        )

    def coin_based_rules(self) -> Tuple[Rule, ...]:
        """Rules whose (non-empty) guard reads coin variables."""
        coins = set(self.coin_vars)
        return tuple(
            rule
            for rule in self.rules
            if rule.guard and rule.guard_variables() <= coins
        )

    def guard_atoms(self) -> Tuple[Guard, ...]:
        """Distinct atomic guards across all rules, in first-seen order."""
        seen: Dict[Guard, None] = {}
        for rule in self.rules:
            for atom in rule.guard:
                seen.setdefault(atom, None)
        return tuple(seen)

    def edges(self) -> Tuple[Tuple[str, str, Rule], ...]:
        """All ``(source, target, rule)`` edges."""
        return tuple((rule.source, rule.target, rule) for rule in self.rules)

    # ------------------------------------------------------------------
    # Deep validation
    # ------------------------------------------------------------------
    def is_canonical(self) -> bool:
        """True iff every rule on a cycle has a zero update vector."""
        return not self._non_canonical_rules()

    def _non_canonical_rules(self) -> List[Rule]:
        # Round-switch edges close the inter-round loop of a multi-round
        # automaton, but updates apply to per-round variable copies, so
        # those cycles are benign; canonicity concerns in-round cycles.
        switch = set(self.round_switch_rules)
        component = strongly_connected_components(
            (loc.name for loc in self.locations),
            ((r.source, r.target) for r in self.rules if r not in switch),
        )
        offending = []
        for rule in self.rules:
            if not rule.update or rule in switch:
                continue
            if rule.is_self_loop or component[rule.source] == component[rule.target]:
                offending.append(rule)
        return offending

    def check_canonical(self) -> None:
        """Raise :class:`ValidationError` unless the automaton is canonical."""
        offending = self._non_canonical_rules()
        if offending:
            names = ", ".join(rule.name for rule in offending)
            raise ValidationError(
                f"{self.name}: non-canonical, rules on cycles with updates: {names}"
            )

    def _check_trivial_rule(self, rule: Rule, context: str) -> None:
        if rule.guard or rule.update:
            raise ValidationError(
                f"{self.name}: {context} rule {rule.name!r} must have a true "
                f"guard and zero update"
            )

    def _check_value_respect(self, rule: Rule, context: str) -> None:
        src = self.location(rule.source)
        dst = self.location(rule.target)
        if src.value is not None and dst.value is not None and src.value != dst.value:
            raise ValidationError(
                f"{self.name}: {context} rule {rule.name!r} connects value "
                f"{src.value} to value {dst.value}"
            )

    def check_multi_round_form(self) -> None:
        """Validate the multi-round structure from §III-B.

        Checks ``|B| = |I|``, the shape of border-entry and round-switch
        rules, the characterization of border/final locations through the
        round-switch set, value respect, and canonicity.
        """
        borders = self.border_locations
        initials = self.initial_locations
        if len(borders) != len(initials):
            raise ValidationError(
                f"{self.name}: |B| = {len(borders)} but |I| = {len(initials)}"
            )
        if self.border_copy_locations:
            raise ValidationError(
                f"{self.name}: multi-round automaton must not contain border copies"
            )
        switch = set(self.round_switch_rules)
        for loc in borders:
            outgoing = [r for r in self.rules_from(loc.name) if not r.is_self_loop]
            if len(outgoing) != 1:
                raise ValidationError(
                    f"{self.name}: border location {loc.name!r} must have exactly "
                    f"one outgoing rule, found {len(outgoing)}"
                )
            rule = outgoing[0]
            if self.location(rule.target).kind is not LocKind.INITIAL:
                raise ValidationError(
                    f"{self.name}: border location {loc.name!r} must feed an "
                    f"initial location"
                )
            self._check_trivial_rule(rule, "border-entry")
            self._check_value_respect(rule, "border-entry")
            incoming = [r for r in self.rules_to(loc.name) if not r.is_self_loop]
            bad = [r for r in incoming if r not in switch]
            if bad:
                raise ValidationError(
                    f"{self.name}: border location {loc.name!r} has non-round-"
                    f"switch incoming rules: {[r.name for r in bad]}"
                )
        for loc in self.final_locations:
            outgoing = [r for r in self.rules_from(loc.name) if not r.is_self_loop]
            if len(outgoing) != 1 or outgoing[0] not in switch:
                raise ValidationError(
                    f"{self.name}: final location {loc.name!r} must have exactly "
                    f"one outgoing rule, a round-switch rule"
                )
            self._check_trivial_rule(outgoing[0], "round-switch")
            self._check_value_respect(outgoing[0], "round-switch")
        self.check_canonical()

    def check_single_round_form(self) -> None:
        """Validate the single-round structure from Definition 3."""
        copies = self.border_copy_locations
        if not copies:
            raise ValidationError(
                f"{self.name}: single-round automaton must contain border copies"
            )
        if self.round_switch_rules:
            raise ValidationError(
                f"{self.name}: single-round automaton must not contain "
                f"round-switch rules"
            )
        for loc in copies:
            outgoing = self.rules_from(loc.name)
            if any(not rule.is_self_loop for rule in outgoing):
                raise ValidationError(
                    f"{self.name}: border copy {loc.name!r} may only carry "
                    f"self-loops"
                )
        for loc in self.final_locations:
            outgoing = [r for r in self.rules_from(loc.name) if not r.is_self_loop]
            if len(outgoing) != 1:
                raise ValidationError(
                    f"{self.name}: final location {loc.name!r} must have exactly "
                    f"one outgoing rule, found {len(outgoing)}"
                )
            rule = outgoing[0]
            if self.location(rule.target).kind is not LocKind.BORDER_COPY:
                raise ValidationError(
                    f"{self.name}: final location {loc.name!r} must feed a "
                    f"border copy"
                )
            self._check_trivial_rule(rule, "end-of-round")
            self._check_value_respect(rule, "end-of-round")
        self.check_canonical()

    # ------------------------------------------------------------------
    def replace_rules(self, rules: Sequence[Rule], name: Optional[str] = None,
                      locations: Optional[Sequence[Location]] = None) -> "ThresholdAutomaton":
        """A copy of this automaton with different rules (and locations)."""
        return ThresholdAutomaton(
            name or self.name,
            locations if locations is not None else self.locations,
            self.shared_vars,
            self.coin_vars,
            rules,
            role=self.role,
        )

    def size(self) -> Tuple[int, int]:
        """``(|L|, |R|)`` — the size columns of the paper's Table II."""
        return len(self.locations), len(self.rules)

    def __repr__(self) -> str:
        return (
            f"ThresholdAutomaton({self.name!r}, |L|={len(self.locations)}, "
            f"|R|={len(self.rules)})"
        )
