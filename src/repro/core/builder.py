"""Fluent construction API for threshold automata.

Protocol models read close to the paper's rule tables when written with
:class:`AutomatonBuilder`::

    n, t, f = params("n t f")
    b = AutomatonBuilder("mmr14")
    b.shared("b0", "b1", "a0", "a1")
    b.coins("cc0", "cc1")
    b.border("J0", value=0)
    b.initial("I0", value=0)
    ...
    b.rule("r3", "I0", "S0", update={"b0": 1})
    b.rule("r7", "S0", "B0", guard=b.var("b0") >= 2 * t + 1 - f)
    b.round_switch("E0", "J0")
    ta = b.build(check="multi_round")
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.core.automaton import ThresholdAutomaton
from repro.core.guards import Guard, Var
from repro.core.locations import LocKind, Location
from repro.core.rules import Rule, make_update
from repro.errors import ModelError

GuardLike = Union[Guard, Iterable[Guard], None]


def _as_guard_tuple(guard: GuardLike):
    if guard is None:
        return ()
    if isinstance(guard, Guard):
        return (guard,)
    return tuple(guard)


class AutomatonBuilder:
    """Incrementally assemble a :class:`ThresholdAutomaton`."""

    def __init__(self, name: str, role: str = "process"):
        self.name = name
        self.role = role
        self._locations: List[Location] = []
        self._loc_names: Dict[str, None] = {}
        self._shared: List[str] = []
        self._coins: List[str] = []
        self._rules: List[Rule] = []
        self._auto_rule_counter = 0

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def shared(self, *names: str) -> "AutomatonBuilder":
        """Declare shared variables (Γ)."""
        self._shared.extend(names)
        return self

    def coins(self, *names: str) -> "AutomatonBuilder":
        """Declare coin variables (Ω)."""
        self._coins.extend(names)
        return self

    def var(self, name: str) -> Var:
        """A fluent handle for building guards over variable ``name``."""
        return Var(name)

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def _add_location(self, location: Location) -> None:
        if location.name in self._loc_names:
            raise ModelError(f"{self.name}: duplicate location {location.name!r}")
        self._loc_names[location.name] = None
        self._locations.append(location)

    def border(self, name: str, value: Optional[int] = None) -> "AutomatonBuilder":
        self._add_location(Location(name, LocKind.BORDER, value))
        return self

    def initial(self, name: str, value: Optional[int] = None) -> "AutomatonBuilder":
        self._add_location(Location(name, LocKind.INITIAL, value))
        return self

    def location(self, name: str, value: Optional[int] = None) -> "AutomatonBuilder":
        """An intermediate (in-round) location."""
        self._add_location(Location(name, LocKind.INTERMEDIATE, value))
        return self

    def final(
        self, name: str, value: Optional[int] = None, decision: bool = False
    ) -> "AutomatonBuilder":
        self._add_location(Location(name, LocKind.FINAL, value, decision))
        return self

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def rule(
        self,
        name: str,
        source: str,
        target: str,
        guard: GuardLike = None,
        update: Optional[Mapping[str, int]] = None,
    ) -> "AutomatonBuilder":
        """Add a rule; ``guard`` is one Guard, an iterable, or None (true)."""
        self._rules.append(
            Rule(
                name,
                source,
                target,
                _as_guard_tuple(guard),
                make_update(update or {}),
            )
        )
        return self

    def _auto_name(self, prefix: str) -> str:
        self._auto_rule_counter += 1
        return f"{prefix}{self._auto_rule_counter}"

    def border_entry(
        self, source: str, target: str, name: Optional[str] = None
    ) -> "AutomatonBuilder":
        """A trivial border-to-initial rule ``(b, i, true, 0)``."""
        return self.rule(name or self._auto_name("be"), source, target)

    def round_switch(
        self, source: str, target: str, name: Optional[str] = None
    ) -> "AutomatonBuilder":
        """A trivial final-to-border round-switch rule ``(f, b, true, 0)``."""
        return self.rule(name or self._auto_name("rs"), source, target)

    # ------------------------------------------------------------------
    def build(self, check: Optional[str] = "multi_round") -> ThresholdAutomaton:
        """Construct and (optionally) structurally validate the automaton.

        Args:
            check: ``"multi_round"`` (default), ``"single_round"``,
                ``"canonical"`` or ``None`` for basic validation only.
        """
        automaton = ThresholdAutomaton(
            self.name,
            self._locations,
            self._shared,
            self._coins,
            self._rules,
            role=self.role,
        )
        if check == "multi_round":
            automaton.check_multi_round_form()
        elif check == "single_round":
            automaton.check_single_round_form()
        elif check == "canonical":
            automaton.check_canonical()
        elif check is not None:
            raise ModelError(f"unknown check mode {check!r}")
        return automaton
