"""Probabilistic threshold automata for common coins (§III-B of the paper).

A common-coin automaton ``PTAc = (Lc, Vc, Rc)`` shares the variable
space with the process automaton but its rules carry *distributions*
over destination locations.  The paper's restrictions, enforced here:

* guards may only be conjunctions of *simple* guards (over shared
  variables) — the coin may be triggered by process progress but never
  reads its own coin variables;
* updates must not modify shared variables — the coin communicates its
  outcome exclusively through the coin variables Ω (e.g. ``cc0++`` /
  ``cc1++``);
* unlike Bertrand et al.'s PTA, non-Dirac rules may appear anywhere,
  not only in front of final locations.

The typical instance (Fig. 4(b) of the paper) is produced by
:func:`standard_coin_automaton`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.automaton import strongly_connected_components
from repro.core.coinspec import CoinSpec, resolve_coin_spec
from repro.core.guards import Guard
from repro.core.locations import LocKind, Location, border, final, initial, intermediate
from repro.core.rules import ProbRule, coin_toss, dirac, fair_coin, make_update
from repro.errors import ValidationError


class CoinAutomaton:
    """A probabilistic threshold automaton modelling the common coin."""

    def __init__(
        self,
        name: str,
        locations: Sequence[Location],
        shared_vars: Sequence[str],
        coin_vars: Sequence[str],
        rules: Sequence[ProbRule],
    ):
        self.name = name
        self.locations: Tuple[Location, ...] = tuple(locations)
        self.shared_vars: Tuple[str, ...] = tuple(shared_vars)
        self.coin_vars: Tuple[str, ...] = tuple(coin_vars)
        self.rules: Tuple[ProbRule, ...] = tuple(rules)
        self._loc_by_name: Dict[str, Location] = {}
        self._rule_by_name: Dict[str, ProbRule] = {}
        self._rules_from: Dict[str, List[ProbRule]] = {}
        self._validate()

    def _validate(self) -> None:
        names = [loc.name for loc in self.locations]
        if len(set(names)) != len(names):
            raise ValidationError(f"{self.name}: duplicate location names")
        self._loc_by_name = {loc.name: loc for loc in self.locations}
        rule_names = [rule.name for rule in self.rules]
        if len(set(rule_names)) != len(rule_names):
            raise ValidationError(f"{self.name}: duplicate rule names")
        self._rule_by_name = {rule.name: rule for rule in self.rules}
        self._rules_from = {loc.name: [] for loc in self.locations}

        shared, coin = set(self.shared_vars), set(self.coin_vars)
        for rule in self.rules:
            if rule.source not in self._loc_by_name:
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} references unknown "
                    f"location {rule.source!r}"
                )
            for target, _prob in rule.branches:
                if target not in self._loc_by_name:
                    raise ValidationError(
                        f"{self.name}: rule {rule.name!r} references unknown "
                        f"location {target!r}"
                    )
            guard_vars = rule.guard_variables()
            unknown = guard_vars - shared - coin
            if unknown:
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} guards undeclared "
                    f"variables {sorted(unknown)}"
                )
            if guard_vars & coin:
                raise ValidationError(
                    f"{self.name}: coin rule {rule.name!r} must use simple "
                    f"guards only (found coin variables "
                    f"{sorted(guard_vars & coin)})"
                )
            updated = rule.updated_variables()
            unknown = updated - shared - coin
            if unknown:
                raise ValidationError(
                    f"{self.name}: rule {rule.name!r} updates undeclared "
                    f"variables {sorted(unknown)}"
                )
            if updated & shared:
                raise ValidationError(
                    f"{self.name}: coin rule {rule.name!r} must not update "
                    f"shared variables ({sorted(updated & shared)})"
                )
            self._rules_from[rule.source].append(rule)

    # ------------------------------------------------------------------
    def location(self, name: str) -> Location:
        return self._loc_by_name[name]

    def has_location(self, name: str) -> bool:
        return name in self._loc_by_name

    def rule(self, name: str) -> ProbRule:
        return self._rule_by_name[name]

    def rules_from(self, location: str) -> Tuple[ProbRule, ...]:
        return tuple(self._rules_from[location])

    def locations_of(
        self, kind: Optional[LocKind] = None, value: Optional[int] = None
    ) -> Tuple[Location, ...]:
        result = []
        for loc in self.locations:
            if kind is not None and loc.kind is not kind:
                continue
            if value is not None and loc.value != value:
                continue
            result.append(loc)
        return tuple(result)

    @property
    def border_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.BORDER)

    @property
    def initial_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.INITIAL)

    @property
    def final_locations(self) -> Tuple[Location, ...]:
        return self.locations_of(kind=LocKind.FINAL)

    def non_dirac_rules(self) -> Tuple[ProbRule, ...]:
        """Rules with a genuinely probabilistic destination distribution."""
        return tuple(rule for rule in self.rules if not rule.is_dirac)

    def guard_atoms(self) -> Tuple[Guard, ...]:
        seen: Dict[Guard, None] = {}
        for rule in self.rules:
            for atom in rule.guard:
                seen.setdefault(atom, None)
        return tuple(seen)

    def edges(self) -> Tuple[Tuple[str, str, ProbRule], ...]:
        result = []
        for rule in self.rules:
            for target, _prob in rule.branches:
                result.append((rule.source, target, rule))
        return tuple(result)

    def _is_round_switch(self, rule: ProbRule) -> bool:
        if not rule.is_dirac:
            return False
        source = self.location(rule.source)
        target = self.location(rule.branches[0][0])
        return source.kind is LocKind.FINAL and target.kind is LocKind.BORDER

    def is_canonical(self) -> bool:
        """True iff every rule on an (in-round) cycle has a zero update.

        As for process automata, cycles closed by round-switch rules are
        benign because variables are per-round copies.
        """
        component = strongly_connected_components(
            (loc.name for loc in self.locations),
            (
                (src, dst)
                for src, dst, rule in self.edges()
                if not self._is_round_switch(rule)
            ),
        )
        for rule in self.rules:
            if not rule.update or self._is_round_switch(rule):
                continue
            for target, _prob in rule.branches:
                if rule.source == target or component[rule.source] == component[target]:
                    return False
        return True

    def size(self) -> Tuple[int, int]:
        """``(|L|, |R|)``."""
        return len(self.locations), len(self.rules)

    def __repr__(self) -> str:
        return (
            f"CoinAutomaton({self.name!r}, |L|={len(self.locations)}, "
            f"|R|={len(self.rules)})"
        )


def standard_coin_automaton(
    shared_vars: Sequence[str],
    coin_vars: Sequence[str] = ("cc0", "cc1"),
    prefix: str = "coin",
    trigger_guard: Tuple[Guard, ...] = (),
    spec: Optional[CoinSpec] = None,
) -> CoinAutomaton:
    """The Fig. 4(b) common-coin automaton, generalized over a spec.

    Locations ``J2 -> I2 -> {T0, T1} -> {C0, C1} -> J2``: the coin
    enters the round (``ra``), tosses (``rb``, with the spec's branch
    lottery — the default :class:`~repro.core.coinspec.PerfectCoin`
    gives the paper's strong 1/2 / 1/2 coin), publishes the outcome by
    incrementing ``cc0`` or ``cc1`` (``rc`` / ``rd``) and
    round-switches back (``re`` / ``rf``).  (The paper draws the
    toss-outcome locations as ``N0``/``N1``; we call them ``T0`` /
    ``T1`` so they cannot collide with the ``N0``/``N1``/``N⊥``
    locations that the Fig. 6 binding refinement adds to the *process*
    automaton — the combined system keeps one location namespace.)

    Specs with a third outcome extend the lozenge by one path:

    * :class:`~repro.core.coinspec.DeltaFailingCoin` — ``rb`` reaches
      ``Tbot`` with probability δ; ``rg: Tbot -> Cbot`` publishes
      *nothing* and ``rh`` round-switches, so the round's coin guards
      never fire;
    * :class:`~repro.core.coinspec.DisagreeingCoin` — ``rb`` reaches
      ``TS`` with probability ρ; ``rg: TS -> CS`` publishes *both*
      variables of the secondary (split-view) pair.

    Args:
        shared_vars: the shared variables of the accompanying process
            automaton (the spaces must coincide).
        coin_vars: the two *primary* outcome counters, default
            ``cc0``/``cc1`` (a disagreeing spec appends its secondary
            pair itself).
        prefix: prefix used in the automaton name.
        trigger_guard: optional simple-guard conjunction on the toss rule
            ``rb`` (e.g. the coin may only be revealed once enough
            processes asked for it).
        spec: the :class:`~repro.core.coinspec.CoinSpec` (or spec
            string / None for the default perfect coin).
    """
    if len(coin_vars) != 2:
        raise ValidationError("standard coin automaton needs exactly 2 coin variables")
    spec = resolve_coin_spec(spec)
    p0, p1, p_extra = spec.toss_probabilities()
    full_vars = spec.coin_vars_for(tuple(coin_vars))

    if p_extra == 0:
        locations = (
            border("J2"),
            initial("I2"),
            intermediate("T0", value=0),
            intermediate("T1", value=1),
            final("C0", value=0),
            final("C1", value=1),
        )
        rules = (
            dirac("ra", "J2", "I2"),
            coin_toss("rb", "I2", (("T0", p0), ("T1", p1)),
                      guard=tuple(trigger_guard)),
            dirac("rc", "T0", "C0", update=make_update({coin_vars[0]: 1})),
            dirac("rd", "T1", "C1", update=make_update({coin_vars[1]: 1})),
            dirac("re", "C0", "J2"),
            dirac("rf", "C1", "J2"),
        )
        return CoinAutomaton(
            f"{prefix}-cc", locations, shared_vars, full_vars, rules
        )

    if spec.needs_split_vars():
        t_extra, c_extra = "TS", "CS"
        publish = make_update({name: 1 for name in full_vars[2:]})
    else:
        t_extra, c_extra = "Tbot", "Cbot"
        publish = ()  # a failed round publishes no coin value at all
    locations = (
        border("J2"),
        initial("I2"),
        intermediate("T0", value=0),
        intermediate("T1", value=1),
        intermediate(t_extra),
        final("C0", value=0),
        final("C1", value=1),
        final(c_extra),
    )
    rules = (
        dirac("ra", "J2", "I2"),
        coin_toss("rb", "I2", (("T0", p0), ("T1", p1), (t_extra, p_extra)),
                  guard=tuple(trigger_guard)),
        dirac("rc", "T0", "C0", update=make_update({coin_vars[0]: 1})),
        dirac("rd", "T1", "C1", update=make_update({coin_vars[1]: 1})),
        dirac("rg", t_extra, c_extra, update=publish),
        dirac("re", "C0", "J2"),
        dirac("rf", "C1", "J2"),
        dirac("rh", c_extra, "J2"),
    )
    return CoinAutomaton(
        f"{prefix}-cc", locations, shared_vars, full_vars, rules
    )
