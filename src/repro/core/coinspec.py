"""Pluggable common-coin models: the ``CoinSpec`` hierarchy.

The paper's model ``BAMP_{n,t}[n > 3t, CC]`` is parameterized by an
ε-Good common coin; the repo historically hardwired the *strong* coin
(ε = 1/2) in four independent places (``core/rules.py:fair_coin``,
``core/coin.py:standard_coin_automaton``,
``protocols/common.py:triggered_coin`` and ``sim/coin.py``).  This
module is the single abstraction all of them now consume: a frozen,
JSON-round-trippable description of what one coin round does, with the
exact same semantics on the checker side (branch lotteries of the coin
automaton, exact :class:`~fractions.Fraction` probabilities) and the
simulation side (:class:`~repro.sim.coin.CommonCoin` sampling).

Four models:

* :class:`PerfectCoin` — the strong fair coin, ε = 1/2.  The default
  everywhere; every layer must reproduce the pre-CoinSpec behaviour
  bit-identically under it.
* :class:`BiasedCoin` — ``P(1) = p1``, ``P(0) = 1 - p1``; an ε-Good
  coin with ε = min(p1, 1-p1).
* :class:`DeltaFailingCoin` — with probability δ the round yields *no*
  common value (HoneyBadgerMPC's ``CommonCoinFailureException`` as an
  explicit outcome branch): the coin automaton takes a third branch
  that publishes neither ``cc0`` nor ``cc1``, so coin-guarded process
  rules stay disabled for the round.
* :class:`DisagreeingCoin` — with probability ρ processes *see split
  values* (the Geffner–Halpern trade-off axis): a second
  coin-variable pair carries the disagreeing view, and every
  coin-guarded process rule gains a twin reading that pair — on a
  split round both views are published, so different processes may
  adopt different values.

The canonical spec grammar (CLI ``--coin``, JSON wire format)::

    perfect                    PerfectCoin()
    biased:1/4                 BiasedCoin(Fraction(1, 4))
    failing:1/8                DeltaFailingCoin(Fraction(1, 8))
    disagreeing:1/8            DisagreeingCoin(Fraction(1, 8))

Probabilities are exact fractions (``1/4`` or ``0.25`` both parse).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple, Union

from repro.core.automaton import ThresholdAutomaton
from repro.core.guards import Guard
from repro.core.rules import Rule
from repro.errors import ValidationError

__all__ = [
    "BiasedCoin",
    "CoinSpec",
    "DeltaFailingCoin",
    "DisagreeingCoin",
    "PerfectCoin",
    "coin_spec_from_dict",
    "parse_coin_spec",
    "resolve_coin_spec",
    "split_coin_vars",
]

#: Suffix distinguishing the twin rules a :class:`DisagreeingCoin`
#: grafts onto the process automaton (reading the split-view pair).
SPLIT_RULE_SUFFIX = "__d"


def split_coin_vars(coin_vars: Tuple[str, ...]) -> Tuple[str, ...]:
    """The second coin-variable pair carrying the disagreeing view.

    The conventional pair ``("cc0", "cc1")`` maps to ``("cd0", "cd1")``;
    any other naming gets a ``d`` suffix appended per variable.
    """
    if all(name.startswith("cc") for name in coin_vars):
        return tuple("cd" + name[2:] for name in coin_vars)
    return tuple(name + "d" for name in coin_vars)


@dataclass(frozen=True)
class CoinSpec:
    """Base class: what one common-coin round does.

    Subclasses are frozen value objects; two specs compare equal iff
    they describe the same coin, and :meth:`spec_str` /
    :func:`parse_coin_spec` and :meth:`to_dict` /
    :func:`coin_spec_from_dict` round-trip exactly.
    """

    #: Spec-grammar keyword; set per subclass.
    kind = "abstract"

    # -- identity ------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """True iff this is the default strong coin (``PerfectCoin``)."""
        return False

    def spec_str(self) -> str:
        """The canonical ``kind[:param]`` grammar form."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON form; fractions serialize as exact strings."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.spec_str()

    # -- checker-side lottery ------------------------------------------
    def toss_probabilities(self) -> Tuple[Fraction, Fraction, Fraction]:
        """``(P(value 0), P(value 1), P(extra outcome))``, summing to 1.

        The extra outcome is the failed branch of a
        :class:`DeltaFailingCoin` / the split branch of a
        :class:`DisagreeingCoin`; 0 for perfect and biased coins.
        """
        raise NotImplementedError

    def needs_split_vars(self) -> bool:
        """Does the coin automaton publish a second coin-variable pair?"""
        return False

    def coin_vars_for(self, base: Tuple[str, ...]) -> Tuple[str, ...]:
        """The full coin-variable tuple for base pair ``base``."""
        base = tuple(base)
        if self.needs_split_vars():
            return base + split_coin_vars(base)
        return base

    def adapt_process(self, process: ThresholdAutomaton) -> ThresholdAutomaton:
        """Process-automaton counterpart of the coin's variable space.

        The identity for every spec except :class:`DisagreeingCoin`
        (which extends the coin variables and duplicates coin-guarded
        rules so the process can read either view).
        """
        return process

    # -- simulation-side sampling --------------------------------------
    def sample_round(self, rng: random.Random) -> Optional[int]:
        """Sample one round's *common* value, or ``None`` when the round
        yields no single common value (failed / split rounds — the
        simulator then serves per-process independent views).

        The perfect and biased paths consume exactly one ``rng`` draw so
        default-coin simulations reproduce the pre-CoinSpec sequences
        bit-for-bit under the same seed.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class PerfectCoin(CoinSpec):
    """The strong fair coin of the paper's protocols: ε = 1/2."""

    kind = "perfect"

    @property
    def is_default(self) -> bool:
        return True

    def spec_str(self) -> str:
        return "perfect"

    def to_dict(self) -> dict:
        return {"kind": "perfect"}

    def toss_probabilities(self) -> Tuple[Fraction, Fraction, Fraction]:
        half = Fraction(1, 2)
        return (half, half, Fraction(0))

    def sample_round(self, rng: random.Random) -> Optional[int]:
        return 1 if rng.random() < 0.5 else 0


@dataclass(frozen=True)
class BiasedCoin(CoinSpec):
    """``P(1) = p1``: an ε-Good coin with ε = min(p1, 1 - p1)."""

    p1: Fraction

    kind = "biased"

    def __post_init__(self) -> None:
        object.__setattr__(self, "p1", Fraction(self.p1))
        if not 0 < self.p1 < 1:
            raise ValidationError(
                f"biased coin needs 0 < p1 < 1, got {self.p1}"
            )

    def spec_str(self) -> str:
        return f"biased:{self.p1}"

    def to_dict(self) -> dict:
        return {"kind": "biased", "p1": str(self.p1)}

    def toss_probabilities(self) -> Tuple[Fraction, Fraction, Fraction]:
        return (1 - self.p1, self.p1, Fraction(0))

    def sample_round(self, rng: random.Random) -> Optional[int]:
        return 1 if rng.random() < float(self.p1) else 0


@dataclass(frozen=True)
class DeltaFailingCoin(CoinSpec):
    """With probability δ the round yields no common value at all.

    The surviving probability mass splits fairly: ``P(v) = (1 - δ)/2``
    for each value.  On the checker side the failed branch publishes
    *neither* coin variable, so every coin-guarded process rule stays
    disabled for the round; on the simulation side correct processes
    fall back to independent private bits (no common value exists).
    """

    delta: Fraction

    kind = "failing"

    def __post_init__(self) -> None:
        object.__setattr__(self, "delta", Fraction(self.delta))
        if not 0 < self.delta < 1:
            raise ValidationError(
                f"failing coin needs 0 < delta < 1, got {self.delta}"
            )

    def spec_str(self) -> str:
        return f"failing:{self.delta}"

    def to_dict(self) -> dict:
        return {"kind": "failing", "delta": str(self.delta)}

    def toss_probabilities(self) -> Tuple[Fraction, Fraction, Fraction]:
        good = (1 - self.delta) / 2
        return (good, good, self.delta)

    def sample_round(self, rng: random.Random) -> Optional[int]:
        if rng.random() < float(self.delta):
            return None
        return 1 if rng.random() < 0.5 else 0


@dataclass(frozen=True)
class DisagreeingCoin(CoinSpec):
    """With probability ρ processes see *split* coin values.

    Modelled with a second coin-variable pair (``cd0``/``cd1`` for the
    conventional ``cc0``/``cc1``): agreeing rounds publish one of the
    primary pair as usual, a split round publishes *both* variables of
    the secondary pair, and :meth:`adapt_process` gives every
    coin-guarded process rule a twin reading the secondary pair — so on
    a split round both coin views are live and different processes may
    move on different values.
    """

    rho: Fraction

    kind = "disagreeing"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rho", Fraction(self.rho))
        if not 0 < self.rho < 1:
            raise ValidationError(
                f"disagreeing coin needs 0 < rho < 1, got {self.rho}"
            )

    def spec_str(self) -> str:
        return f"disagreeing:{self.rho}"

    def to_dict(self) -> dict:
        return {"kind": "disagreeing", "rho": str(self.rho)}

    def toss_probabilities(self) -> Tuple[Fraction, Fraction, Fraction]:
        agree = (1 - self.rho) / 2
        return (agree, agree, self.rho)

    def needs_split_vars(self) -> bool:
        return True

    def adapt_process(self, process: ThresholdAutomaton) -> ThresholdAutomaton:
        """Extend ``process`` with the split-view coin variables.

        Every rule whose guard reads a primary coin variable gains a
        twin (named ``<rule>__d``, appended after all original rules so
        the original action order stays a prefix) with the primary pair
        substituted by the secondary pair in its guard.  Everything
        else — locations, shared variables, original rules — is kept
        as-is, so under agreeing rounds the adapted automaton behaves
        exactly like the original.
        """
        base = tuple(process.coin_vars)
        extra = split_coin_vars(base)
        mapping = dict(zip(base, extra))
        twins = []
        for rule in process.rules:
            if not (rule.guard_variables() & set(base)):
                continue
            guard = tuple(
                Guard(
                    tuple((mapping.get(name, name), coeff)
                          for name, coeff in atom.lhs),
                    atom.cmp,
                    atom.rhs,
                )
                for atom in rule.guard
            )
            twins.append(
                Rule(
                    name=f"{rule.name}{SPLIT_RULE_SUFFIX}",
                    source=rule.source,
                    target=rule.target,
                    guard=guard,
                    update=rule.update,
                )
            )
        return ThresholdAutomaton(
            name=process.name,
            locations=process.locations,
            shared_vars=process.shared_vars,
            coin_vars=base + extra,
            rules=tuple(process.rules) + tuple(twins),
            role=process.role,
        )

    def sample_round(self, rng: random.Random) -> Optional[int]:
        if rng.random() < float(self.rho):
            return None
        return 1 if rng.random() < 0.5 else 0


# ----------------------------------------------------------------------
# Parsing / resolution
# ----------------------------------------------------------------------

_KINDS: Dict[str, type] = {
    "perfect": PerfectCoin,
    "biased": BiasedCoin,
    "failing": DeltaFailingCoin,
    "disagreeing": DisagreeingCoin,
}

#: Parameter field per parameterized kind (spec grammar + JSON form).
_PARAMS: Dict[str, str] = {
    "biased": "p1",
    "failing": "delta",
    "disagreeing": "rho",
}


def _fraction(text: str, context: str) -> Fraction:
    try:
        return Fraction(text.strip())
    except (ValueError, ZeroDivisionError) as exc:
        raise ValidationError(f"{context}: bad probability {text!r}") from exc


def parse_coin_spec(text: str) -> CoinSpec:
    """Parse the ``kind[:param]`` spec grammar (see module docstring)."""
    kind, sep, param = text.strip().partition(":")
    kind = kind.strip()
    if kind not in _KINDS:
        raise ValidationError(
            f"unknown coin spec kind {kind!r}; expected one of "
            f"{sorted(_KINDS)} (grammar: 'perfect' | 'biased:1/4' | "
            f"'failing:1/8' | 'disagreeing:1/8')"
        )
    if kind == "perfect":
        if sep:
            raise ValidationError("coin spec 'perfect' takes no parameter")
        return PerfectCoin()
    if not sep or not param.strip():
        raise ValidationError(
            f"coin spec {kind!r} needs a probability, e.g. '{kind}:1/4'"
        )
    return _KINDS[kind](_fraction(param, f"coin spec {text!r}"))


def coin_spec_from_dict(data: dict) -> CoinSpec:
    """Rebuild a spec from its :meth:`CoinSpec.to_dict` JSON form."""
    try:
        kind = data["kind"]
    except (TypeError, KeyError) as exc:
        raise ValidationError(f"bad coin spec payload {data!r}") from exc
    if kind not in _KINDS:
        raise ValidationError(
            f"unknown coin spec kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    if kind == "perfect":
        return PerfectCoin()
    field = _PARAMS[kind]
    if field not in data:
        raise ValidationError(f"coin spec {kind!r} payload misses {field!r}")
    return _KINDS[kind](_fraction(str(data[field]), f"coin spec {data!r}"))


CoinLike = Union[None, str, CoinSpec]


def resolve_coin_spec(value: CoinLike) -> CoinSpec:
    """``None`` / spec string / :class:`CoinSpec` → a :class:`CoinSpec`.

    The single normalization point every ``coin=`` keyword goes
    through; ``None`` means the default :class:`PerfectCoin`.
    """
    if value is None:
        return PerfectCoin()
    if isinstance(value, CoinSpec):
        return value
    if isinstance(value, str):
        return parse_coin_spec(value)
    if isinstance(value, dict):
        return coin_spec_from_dict(value)
    raise ValidationError(
        f"cannot interpret {value!r} as a coin spec (want None, a spec "
        f"string like 'biased:1/4', a dict, or a CoinSpec)"
    )
