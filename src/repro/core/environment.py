"""Environments ``Env = (Pi, RC, N)`` of threshold automata.

An environment (§III-B) fixes the set of parameters ``Pi`` (ranging over
non-negative integers), a *resilience condition* ``RC`` — a linear
integer arithmetic formula over the parameters (e.g. ``n > 3t ∧ t >= f``)
— and a function ``N`` mapping each admissible parameter valuation to
the number of explicitly modelled processes and common coins.  For the
protocols of the paper ``N(n, t, f, cc) = (n - f, 1)``: only correct
processes are modelled explicitly, plus one common-coin automaton.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from repro.core.expression import ParamExpr, ParamExprLike
from repro.errors import ModelError, SemanticsError

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class Constraint:
    """A single linear comparison between two parameter expressions."""

    lhs: ParamExpr
    op: str
    rhs: ParamExpr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ModelError(f"unknown comparison operator {self.op!r}")

    def holds(self, valuation: Mapping[str, int]) -> bool:
        """Evaluate the constraint under a parameter valuation."""
        return _OPS[self.op](self.lhs.evaluate(valuation), self.rhs.evaluate(valuation))

    def ge_zero_forms(self) -> Tuple[ParamExpr, ...]:
        """Equivalent list of expressions required to be ``>= 0``.

        Integer semantics: ``a > b`` becomes ``a - b - 1 >= 0``; an
        equality contributes two expressions.  Used by the ILP encoder.
        """
        diff = self.lhs - self.rhs
        if self.op == ">=":
            return (diff,)
        if self.op == ">":
            return (diff - 1,)
        if self.op == "<=":
            return (-diff,)
        if self.op == "<":
            return (-diff - 1,)
        return (diff, -diff)  # equality

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


def gt(lhs: ParamExprLike, rhs: ParamExprLike) -> Constraint:
    """Constraint ``lhs > rhs``."""
    return Constraint(ParamExpr.coerce(lhs), ">", ParamExpr.coerce(rhs))


def ge(lhs: ParamExprLike, rhs: ParamExprLike) -> Constraint:
    """Constraint ``lhs >= rhs``."""
    return Constraint(ParamExpr.coerce(lhs), ">=", ParamExpr.coerce(rhs))


def eq(lhs: ParamExprLike, rhs: ParamExprLike) -> Constraint:
    """Constraint ``lhs = rhs``."""
    return Constraint(ParamExpr.coerce(lhs), "=", ParamExpr.coerce(rhs))


def le(lhs: ParamExprLike, rhs: ParamExprLike) -> Constraint:
    """Constraint ``lhs <= rhs``."""
    return Constraint(ParamExpr.coerce(lhs), "<=", ParamExpr.coerce(rhs))


def lt(lhs: ParamExprLike, rhs: ParamExprLike) -> Constraint:
    """Constraint ``lhs < rhs``."""
    return Constraint(ParamExpr.coerce(lhs), "<", ParamExpr.coerce(rhs))


@dataclass(frozen=True)
class Environment:
    """An environment ``(Pi, RC, N)``.

    Attributes:
        parameters: the names in ``Pi`` (each ranges over ``N0``).
        resilience: the conjunction ``RC`` of linear constraints.
        num_processes: expression for the number of explicitly modelled
            (correct) process automata, e.g. ``n - f``.
        num_coins: number of common-coin automata modelled (paper: 1).
    """

    parameters: Tuple[str, ...]
    resilience: Tuple[Constraint, ...]
    num_processes: ParamExpr
    num_coins: int = 1

    def __post_init__(self) -> None:
        declared = set(self.parameters)
        if len(declared) != len(self.parameters):
            raise ModelError("duplicate parameter names in environment")
        mentioned = set(self.num_processes.parameters())
        for constraint in self.resilience:
            mentioned |= set(constraint.lhs.parameters())
            mentioned |= set(constraint.rhs.parameters())
        unknown = mentioned - declared
        if unknown:
            raise ModelError(
                f"environment mentions undeclared parameters: {sorted(unknown)}"
            )
        if self.num_coins < 0:
            raise ModelError("num_coins must be non-negative")

    # ------------------------------------------------------------------
    def check_valuation(self, valuation: Mapping[str, int]) -> None:
        """Raise unless ``valuation`` covers all parameters with ints >= 0."""
        for name in self.parameters:
            if name not in valuation:
                raise SemanticsError(f"parameter {name!r} missing from valuation")
            if valuation[name] < 0:
                raise SemanticsError(
                    f"parameter {name!r} must be a non-negative integer, "
                    f"got {valuation[name]}"
                )

    def admits(self, valuation: Mapping[str, int]) -> bool:
        """True iff the valuation satisfies the resilience condition."""
        self.check_valuation(valuation)
        return all(constraint.holds(valuation) for constraint in self.resilience)

    def system_size(self, valuation: Mapping[str, int]) -> Tuple[int, int]:
        """Apply ``N``: number of modelled processes and coins.

        Raises:
            SemanticsError: when the valuation is inadmissible or yields
                a non-positive process count.
        """
        if not self.admits(valuation):
            raise SemanticsError(
                f"valuation {dict(valuation)!r} violates the resilience condition"
            )
        count = self.num_processes.evaluate(valuation)
        if count <= 0:
            raise SemanticsError(
                f"valuation {dict(valuation)!r} yields {count} modelled processes"
            )
        return count, self.num_coins

    def iter_admissible(self, max_value: int) -> Iterator[Dict[str, int]]:
        """Enumerate admissible valuations with every parameter <= max_value.

        Useful for exhaustively cross-checking parameterized verdicts on
        small instances.
        """
        names = self.parameters
        for combo in itertools.product(range(max_value + 1), repeat=len(names)):
            valuation = dict(zip(names, combo))
            if self.admits(valuation):
                yield valuation

    def describe(self) -> str:
        """One-line human-readable description."""
        rc = " & ".join(str(c) for c in self.resilience) or "true"
        return (
            f"Pi={{{', '.join(self.parameters)}}}; RC: {rc}; "
            f"N -> ({self.num_processes}, {self.num_coins})"
        )


def standard_environment(
    resilience: Sequence[Constraint],
    parameters: str = "n t f",
    num_processes: ParamExprLike = None,
    num_coins: int = 1,
) -> Environment:
    """The common case: parameters ``n t f``, ``N = (n - f, num_coins)``."""
    names = tuple(parameters.split())
    if num_processes is None:
        num_processes = ParamExpr.var("n") - ParamExpr.var("f")
    return Environment(
        parameters=names,
        resilience=tuple(resilience),
        num_processes=ParamExpr.coerce(num_processes),
        num_coins=num_coins,
    )
