"""Linear expressions over the environment parameters.

Threshold guards in the paper compare a combination of shared variables
against an affine expression over the parameters::

    b * x  >=  a_bar . p^T + a_0

This module implements the right-hand side: :class:`ParamExpr`, an
immutable affine expression ``sum(coeff_i * p_i) + const`` over named
parameters, with natural arithmetic operators so protocol models read
like the paper (e.g. ``2 * t + 1 - f``).

:func:`params` is the intended entry point::

    n, t, f = params("n t f")
    rhs = n - t - f          # a ParamExpr
    rhs.evaluate({"n": 4, "t": 1, "f": 1})   # -> 2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple, Union

from repro.errors import SemanticsError

#: Anything accepted where a parameter expression is expected.
ParamExprLike = Union["ParamExpr", int]


def _normalize(coeffs: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    """Drop zero coefficients and impose a canonical (sorted) order."""
    return tuple(sorted((name, c) for name, c in coeffs.items() if c != 0))


@dataclass(frozen=True)
class ParamExpr:
    """An immutable affine expression over named integer parameters.

    Attributes:
        coeffs: canonical (sorted, zero-free) tuple of ``(name, coeff)``.
        const: the additive integer constant.
    """

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "ParamExpr":
        """The constant expression ``value``."""
        return ParamExpr((), int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "ParamExpr":
        """The expression ``coeff * name``."""
        return ParamExpr(_normalize({name: coeff}), 0)

    @staticmethod
    def coerce(value: ParamExprLike) -> "ParamExpr":
        """Coerce an int (or ParamExpr) into a :class:`ParamExpr`."""
        if isinstance(value, ParamExpr):
            return value
        if isinstance(value, int):
            return ParamExpr.constant(value)
        raise TypeError(f"cannot interpret {value!r} as a parameter expression")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def parameters(self) -> Tuple[str, ...]:
        """Names of parameters with non-zero coefficient, sorted."""
        return tuple(name for name, _ in self.coeffs)

    def coefficient(self, name: str) -> int:
        """Coefficient of parameter ``name`` (0 when absent)."""
        for var, coeff in self.coeffs:
            if var == name:
                return coeff
        return 0

    @property
    def is_constant(self) -> bool:
        """True when the expression mentions no parameter."""
        return not self.coeffs

    def evaluate(self, valuation: Mapping[str, int]) -> int:
        """Evaluate under a full parameter valuation.

        Raises:
            SemanticsError: if a mentioned parameter is missing from
                ``valuation``.
        """
        total = self.const
        for name, coeff in self.coeffs:
            if name not in valuation:
                raise SemanticsError(
                    f"parameter {name!r} missing from valuation {dict(valuation)!r}"
                )
            total += coeff * valuation[name]
        return total

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ParamExprLike) -> "ParamExpr":
        other = ParamExpr.coerce(other)
        merged = dict(self.coeffs)
        for name, coeff in other.coeffs:
            merged[name] = merged.get(name, 0) + coeff
        return ParamExpr(_normalize(merged), self.const + other.const)

    def __radd__(self, other: ParamExprLike) -> "ParamExpr":
        return self.__add__(other)

    def __neg__(self) -> "ParamExpr":
        return ParamExpr(
            tuple((name, -coeff) for name, coeff in self.coeffs), -self.const
        )

    def __sub__(self, other: ParamExprLike) -> "ParamExpr":
        return self.__add__(-ParamExpr.coerce(other))

    def __rsub__(self, other: ParamExprLike) -> "ParamExpr":
        return ParamExpr.coerce(other).__add__(-self)

    def __mul__(self, factor: int) -> "ParamExpr":
        if not isinstance(factor, int):
            raise TypeError("parameter expressions support integer scaling only")
        return ParamExpr(
            _normalize({name: coeff * factor for name, coeff in self.coeffs}),
            self.const * factor,
        )

    def __rmul__(self, factor: int) -> "ParamExpr":
        return self.__mul__(factor)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                term = name
            elif coeff == -1:
                term = f"-{name}"
            else:
                term = f"{coeff}*{name}"
            parts.append(term)
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def params(names: Union[str, Iterable[str]]) -> Tuple[ParamExpr, ...]:
    """Create symbolic parameters from a whitespace-separated string.

    >>> n, t, f = params("n t f")
    >>> str(2 * t + 1 - f)
    '-f + 2*t + 1'
    """
    if isinstance(names, str):
        names = names.split()
    return tuple(ParamExpr.var(name) for name in names)
