"""Threshold guards over shared and coin variables.

The paper (§III-B) defines a *simple guard* as an expression

    ``b . x  >=  a_bar . p^T + a_0``     or     ``b . x  <  a_bar . p^T + a_0``

where ``x`` ranges over shared variables, and a *coin guard* with the
same shape over coin variables.  Rule ``r21`` of MMR14 compares a *sum*
of shared variables (``a0 + a1 >= n - t - f``), so the left-hand side is
a linear combination of variables rather than a single one.

Guards are built fluently from :class:`Var` objects::

    n, t, f = params("n t f")
    b0, b1 = Var("b0"), Var("b1")
    g1 = b0 >= 2 * t + 1 - f
    g2 = (b0 + b1) < n - t

A rule's guard is a *conjunction* of such atomic guards (possibly empty,
meaning ``true``); see :class:`repro.core.rules.Rule`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple, Union

from repro.core.expression import ParamExpr, ParamExprLike
from repro.errors import SemanticsError


class Cmp(enum.Enum):
    """Comparison operator of a threshold guard."""

    GE = ">="
    LT = "<"

    def flipped(self) -> "Cmp":
        """The complementary operator (negation of the guard)."""
        return Cmp.LT if self is Cmp.GE else Cmp.GE


def _normalize_lhs(coeffs: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((name, c) for name, c in coeffs.items() if c != 0))


@dataclass(frozen=True)
class Guard:
    """An atomic threshold guard ``lhs (>=|<) rhs``.

    Attributes:
        lhs: canonical tuple of ``(variable, coefficient)`` pairs.
        cmp: the comparison operator.
        rhs: affine parameter expression on the right-hand side.
    """

    lhs: Tuple[Tuple[str, int], ...]
    cmp: Cmp
    rhs: ParamExpr

    def variables(self) -> FrozenSet[str]:
        """The set of variables mentioned on the left-hand side."""
        return frozenset(name for name, _ in self.lhs)

    def negated(self) -> "Guard":
        """The logical negation: ``x >= e`` becomes ``x < e`` and vice versa."""
        return Guard(self.lhs, self.cmp.flipped(), self.rhs)

    def lhs_value(self, variables: Mapping[str, int]) -> int:
        """Evaluate the left-hand side under a variable valuation."""
        total = 0
        for name, coeff in self.lhs:
            if name not in variables:
                raise SemanticsError(
                    f"variable {name!r} missing from valuation {dict(variables)!r}"
                )
            total += coeff * variables[name]
        return total

    def evaluate(
        self, variables: Mapping[str, int], parameters: Mapping[str, int]
    ) -> bool:
        """Truth value of the guard under variable + parameter valuations."""
        lhs = self.lhs_value(variables)
        rhs = self.rhs.evaluate(parameters)
        return lhs >= rhs if self.cmp is Cmp.GE else lhs < rhs

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.lhs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        lhs = " + ".join(parts) if parts else "0"
        return f"{lhs} {self.cmp.value} {self.rhs}"


#: A rule guard: conjunction of atomic guards.  Empty tuple means ``true``.
GuardConjunction = Tuple[Guard, ...]

TRUE: GuardConjunction = ()


def conjunction_holds(
    guards: GuardConjunction,
    variables: Mapping[str, int],
    parameters: Mapping[str, int],
) -> bool:
    """Evaluate a conjunction of guards (empty conjunction is ``true``)."""
    return all(g.evaluate(variables, parameters) for g in guards)


class Var:
    """A fluent handle for a (shared or coin) variable.

    Supports ``+`` with other :class:`Var`/:class:`VarSum` objects to
    build left-hand sides, and ``>=``, ``<``, ``>`` against parameter
    expressions or integers to build :class:`Guard` objects.  ``>`` is
    sugar for ``>= rhs + 1`` (integers only take integer values).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _coeffs(self) -> Dict[str, int]:
        return {self.name: 1}

    def __add__(self, other: Union["Var", "VarSum"]) -> "VarSum":
        return VarSum(self._coeffs()).__add__(other)

    def __ge__(self, rhs: ParamExprLike) -> Guard:
        return VarSum(self._coeffs()).__ge__(rhs)

    def __lt__(self, rhs: ParamExprLike) -> Guard:
        return VarSum(self._coeffs()).__lt__(rhs)

    def __gt__(self, rhs: ParamExprLike) -> Guard:
        return VarSum(self._coeffs()).__gt__(rhs)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class VarSum:
    """A linear combination of variables used as a guard left-hand side."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Mapping[str, int]):
        self.coeffs = dict(coeffs)

    def __add__(self, other: Union[Var, "VarSum"]) -> "VarSum":
        merged = dict(self.coeffs)
        if isinstance(other, Var):
            merged[other.name] = merged.get(other.name, 0) + 1
        elif isinstance(other, VarSum):
            for name, coeff in other.coeffs.items():
                merged[name] = merged.get(name, 0) + coeff
        else:
            raise TypeError(f"cannot add {other!r} to a variable sum")
        return VarSum(merged)

    def __ge__(self, rhs: ParamExprLike) -> Guard:
        return Guard(_normalize_lhs(self.coeffs), Cmp.GE, ParamExpr.coerce(rhs))

    def __lt__(self, rhs: ParamExprLike) -> Guard:
        return Guard(_normalize_lhs(self.coeffs), Cmp.LT, ParamExpr.coerce(rhs))

    def __gt__(self, rhs: ParamExprLike) -> Guard:
        return Guard(
            _normalize_lhs(self.coeffs), Cmp.GE, ParamExpr.coerce(rhs) + 1
        )

    def __repr__(self) -> str:
        return f"VarSum({self.coeffs!r})"
