"""Locations of threshold automata.

The paper partitions the locations of a threshold automaton into border
locations ``B``, initial locations ``I``, final locations ``F`` and the
remaining intermediate locations; for binary consensus each of ``B``,
``I``, ``F`` is further split by the binary value ``0``/``1``, and final
locations may additionally be *decision* locations ``D_v ⊆ F_v``
(§III-B).  The single-round construction (Definition 3) adds copies of
border locations, here marked :attr:`LocKind.BORDER_COPY`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class LocKind(enum.Enum):
    """Structural role of a location inside a threshold automaton."""

    BORDER = "border"
    INITIAL = "initial"
    INTERMEDIATE = "intermediate"
    FINAL = "final"
    #: Copy of a border location introduced by the single-round
    #: construction of Definition 3 (the ``B'`` locations).
    BORDER_COPY = "border_copy"


@dataclass(frozen=True)
class Location:
    """A single automaton location.

    Attributes:
        name: unique identifier inside the automaton.
        kind: structural role (border/initial/final/...).
        value: for binary-consensus partitioning, the binary value 0 or 1
            associated with the location, or ``None`` when the location
            is not value-classified (e.g. intermediate locations, or the
            ``M_bot`` output of a crusader agreement).
        decision: True iff the location is a decision (accepting)
            location; only final locations may be decisions.
    """

    name: str
    kind: LocKind = LocKind.INTERMEDIATE
    value: Optional[int] = None
    decision: bool = False

    def __post_init__(self) -> None:
        if self.value not in (None, 0, 1):
            raise ValueError(f"location value must be 0, 1 or None, got {self.value!r}")
        if self.decision and self.kind is not LocKind.FINAL:
            raise ValueError(f"decision location {self.name!r} must be final")

    def __str__(self) -> str:
        return self.name


def border(name: str, value: Optional[int] = None) -> Location:
    """A border location (round entry point)."""
    return Location(name, LocKind.BORDER, value)


def initial(name: str, value: Optional[int] = None) -> Location:
    """An initial location (start of the round body)."""
    return Location(name, LocKind.INITIAL, value)


def intermediate(name: str, value: Optional[int] = None) -> Location:
    """An ordinary in-round location."""
    return Location(name, LocKind.INTERMEDIATE, value)


def final(name: str, value: Optional[int] = None, decision: bool = False) -> Location:
    """A final location; ``decision=True`` marks it accepting (in ``D_v``)."""
    return Location(name, LocKind.FINAL, value, decision)
