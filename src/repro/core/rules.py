"""Transition rules of (probabilistic) threshold automata.

A *rule* of a non-probabilistic threshold automaton (§III-B) is a tuple
``r = (from, to, phi, u)`` with source and destination locations, a
conjunction of guards ``phi`` and a non-negative update vector ``u``
over the shared and coin variables.

A rule of a *probabilistic* threshold automaton replaces the single
destination with a distribution ``delta_to`` over locations.  A rule
whose distribution is concentrated on one location is called *Dirac*.
Probabilities are exact :class:`fractions.Fraction` values (the common
coins considered in the paper are *strong*, i.e. 1/2-good, so the
typical distribution is ``{heads: 1/2, tails: 1/2}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import FrozenSet, Mapping, Tuple

from repro.core.guards import Guard, GuardConjunction
from repro.errors import ValidationError

#: Canonical update vector representation: sorted, zero-free increments.
UpdateVector = Tuple[Tuple[str, int], ...]


def make_update(updates: Mapping[str, int]) -> UpdateVector:
    """Canonicalize an update mapping; rejects negative increments.

    The paper requires update vectors in ``N^(|Gamma|+|Omega|)`` — shared
    variables only ever increase, which is what makes threshold guards
    monotone and the schema method sound.
    """
    for name, incr in updates.items():
        if incr < 0:
            raise ValidationError(
                f"update decrements variable {name!r}; updates must be non-negative"
            )
    return tuple(sorted((n, i) for n, i in updates.items() if i != 0))


@dataclass(frozen=True)
class Rule:
    """A Dirac (deterministic-destination) threshold-automaton rule."""

    name: str
    source: str
    target: str
    guard: GuardConjunction = ()
    update: UpdateVector = ()

    def guard_variables(self) -> FrozenSet[str]:
        """All variables mentioned by the rule's guard conjunction."""
        names: set = set()
        for g in self.guard:
            names |= g.variables()
        return frozenset(names)

    def updated_variables(self) -> FrozenSet[str]:
        """Variables incremented by this rule."""
        return frozenset(name for name, _ in self.update)

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    def __str__(self) -> str:
        guard = " & ".join(str(g) for g in self.guard) or "true"
        update = ", ".join(f"{n}+={i}" for n, i in self.update) or "-"
        return f"{self.name}: {self.source} -> {self.target} [{guard}] ({update})"


@dataclass(frozen=True)
class ProbRule:
    """A probabilistic rule ``(from, delta_to, phi, u)`` of a coin automaton.

    Attributes:
        branches: the distribution ``delta_to`` as ``(target, probability)``
            pairs; probabilities must be positive and sum to 1.
    """

    name: str
    source: str
    branches: Tuple[Tuple[str, Fraction], ...]
    guard: GuardConjunction = ()
    update: UpdateVector = ()

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValidationError(f"rule {self.name!r} has an empty distribution")
        total = Fraction(0)
        for target, prob in self.branches:
            if prob <= 0:
                raise ValidationError(
                    f"rule {self.name!r} has non-positive branch probability "
                    f"{prob} towards {target!r}"
                )
            total += prob
        if total != 1:
            raise ValidationError(
                f"rule {self.name!r} branch probabilities sum to {total}, not 1"
            )

    @property
    def is_dirac(self) -> bool:
        """True iff the destination distribution is a point mass."""
        return len(self.branches) == 1

    def probability(self, target: str) -> Fraction:
        """Probability assigned to ``target`` (0 if absent)."""
        for loc, prob in self.branches:
            if loc == target:
                return prob
        return Fraction(0)

    def guard_variables(self) -> FrozenSet[str]:
        names: set = set()
        for g in self.guard:
            names |= g.variables()
        return frozenset(names)

    def updated_variables(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.update)

    def __str__(self) -> str:
        guard = " & ".join(str(g) for g in self.guard) or "true"
        dist = ", ".join(f"{t}:{p}" for t, p in self.branches)
        return f"{self.name}: {self.source} -> {{{dist}}} [{guard}]"


def dirac(name: str, source: str, target: str,
          guard: GuardConjunction = (), update: UpdateVector = ()) -> ProbRule:
    """Convenience constructor for a Dirac probabilistic rule."""
    return ProbRule(name, source, ((target, Fraction(1)),), guard, update)


def fair_coin(name: str, source: str, heads: str, tails: str,
              guard: GuardConjunction = ()) -> ProbRule:
    """A strong (1/2-good) coin toss rule: 1/2 to ``heads``, 1/2 to ``tails``."""
    half = Fraction(1, 2)
    return ProbRule(name, source, ((heads, half), (tails, half)), guard)


def coin_toss(name: str, source: str,
              branches: Tuple[Tuple[str, Fraction], ...],
              guard: GuardConjunction = ()) -> ProbRule:
    """A general coin toss: any rational destination lottery.

    Zero-probability branches are dropped (a :class:`CoinSpec` with a
    vanishing extra outcome collapses to the two-branch shape);
    validation of positivity and the sum-to-1 invariant happens in
    :class:`ProbRule`.
    """
    kept = tuple((target, Fraction(p)) for target, p in branches if p != 0)
    return ProbRule(name, source, kept, guard)
