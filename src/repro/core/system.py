"""The combined system model ``(Env, TAn, PTAc)``.

The paper pairs a non-probabilistic threshold automaton for correct
processes with a probabilistic threshold automaton for the common coin,
over one environment and one shared variable space (``Vn = Vc``); their
location and rule namespaces are disjoint.  :class:`SystemModel` bundles
the three, enforces those well-formedness constraints, and carries the
protocol metadata (category A/B/C, the distinguished crusader-agreement
locations, ...) that the verification obligations in §V consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.automaton import ThresholdAutomaton
from repro.core.coin import CoinAutomaton
from repro.core.environment import Environment
from repro.core.transforms import derandomize, single_round, single_round_coin
from repro.errors import ValidationError

#: Valid protocol categories from §V-B of the paper.
CATEGORIES = ("A", "B", "C")


@dataclass
class SystemModel:
    """A protocol model: environment + process automaton + coin automaton.

    Attributes:
        name: protocol identifier (e.g. ``"mmr14"``).
        environment: the environment ``(Pi, RC, N)``.
        process: the threshold automaton for correct processes.
        coin: the probabilistic automaton for the common coin, or ``None``
            for protocols without one (e.g. the naive-voting example).
        category: the termination category ``"A"``, ``"B"`` or ``"C"``
            (§V-B), or ``None`` when termination is not analysed.
        crusader_locations: for category (C), maps the roles
            ``"M0" | "M1" | "Mbot" | "N0" | "N1" | "Nbot"`` to location
            names of the (refined) process automaton.
        description: one-line human description.
    """

    name: str
    environment: Environment
    process: ThresholdAutomaton
    coin: Optional[CoinAutomaton] = None
    category: Optional[str] = None
    crusader_locations: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.category is not None and self.category not in CATEGORIES:
            raise ValidationError(
                f"{self.name}: unknown category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )
        if self.coin is not None:
            if tuple(self.coin.shared_vars) != tuple(self.process.shared_vars):
                raise ValidationError(
                    f"{self.name}: process and coin automata disagree on "
                    f"shared variables"
                )
            if tuple(self.coin.coin_vars) != tuple(self.process.coin_vars):
                raise ValidationError(
                    f"{self.name}: process and coin automata disagree on "
                    f"coin variables"
                )
            process_locs = {loc.name for loc in self.process.locations}
            coin_locs = {loc.name for loc in self.coin.locations}
            overlap = process_locs & coin_locs
            if overlap:
                raise ValidationError(
                    f"{self.name}: location namespaces overlap: {sorted(overlap)}"
                )
            process_rules = {rule.name for rule in self.process.rules}
            coin_rules = {rule.name for rule in self.coin.rules}
            overlap = process_rules & coin_rules
            if overlap:
                raise ValidationError(
                    f"{self.name}: rule namespaces overlap: {sorted(overlap)}"
                )
        for role, loc_name in self.crusader_locations.items():
            if not self.process.has_location(loc_name):
                raise ValidationError(
                    f"{self.name}: crusader location {role}={loc_name!r} does "
                    f"not exist in the process automaton"
                )

    # ------------------------------------------------------------------
    @property
    def shared_vars(self) -> Tuple[str, ...]:
        return self.process.shared_vars

    @property
    def coin_vars(self) -> Tuple[str, ...]:
        return self.process.coin_vars

    @property
    def has_coin(self) -> bool:
        return self.coin is not None

    def size(self) -> Tuple[int, int]:
        """Combined ``(|L|, |R|)`` over the process and coin automata."""
        locs, rules = self.process.size()
        if self.coin is not None:
            coin_locs, coin_rules = self.coin.size()
            locs += coin_locs
            rules += coin_rules
        return locs, rules

    def paper_size(self) -> Tuple[int, int]:
        """``(|L|, |R|)`` counted the way the paper's Table II does.

        The paper reports the process automaton without its border
        locations and border-entry rules (e.g. MMR14: 17 locations and
        29 rules, matching Fig. 4(a) minus ``J0``/``J1`` and
        ``r1``/``r2``).  Border copies and their self-loops are likewise
        bookkeeping and excluded.
        """
        from repro.core.locations import LocKind

        skip_kinds = (LocKind.BORDER, LocKind.BORDER_COPY)
        locs = sum(
            1 for loc in self.process.locations if loc.kind not in skip_kinds
        )
        entry = set(self.process.border_entry_rules)
        rules = 0
        for rule in self.process.rules:
            if rule in entry:
                continue
            if rule.is_self_loop and not rule.guard and not rule.update:
                continue
            rules += 1
        return locs, rules

    # ------------------------------------------------------------------
    def derandomized(self) -> "SystemModel":
        """The non-probabilistic system (coin branches non-deterministic).

        The coin automaton is replaced by its Definition-1 derandomized
        threshold automaton, folded into a second process-like automaton.
        Returned as a new :class:`SystemModel` whose :attr:`coin` is
        ``None`` and whose derandomized coin is stored in
        :attr:`coin_np`.
        """
        model = SystemModel(
            name=f"{self.name}-np",
            environment=self.environment,
            process=self.process,
            coin=None,
            category=self.category,
            crusader_locations=dict(self.crusader_locations),
            description=self.description,
        )
        model.coin_np = derandomize(self.coin) if self.coin is not None else None
        return model

    def single_round(self) -> "SystemModel":
        """The single-round system of Definition 3 (still probabilistic)."""
        return SystemModel(
            name=f"{self.name}-rd",
            environment=self.environment,
            process=single_round(self.process),
            coin=single_round_coin(self.coin) if self.coin is not None else None,
            category=self.category,
            crusader_locations=dict(self.crusader_locations),
            description=self.description,
        )

    def validate_multi_round(self) -> None:
        """Run the full §III-B structural validation on both automata."""
        self.process.check_multi_round_form()
        if self.coin is not None and not self.coin.is_canonical():
            raise ValidationError(f"{self.name}: coin automaton is not canonical")

    def __repr__(self) -> str:
        locs, rules = self.size()
        return f"SystemModel({self.name!r}, |L|={locs}, |R|={rules}, category={self.category!r})"
