"""The paper's three model transformations.

* **Definition 1** — :func:`derandomize`: replace probability with
  non-determinism, turning every branch of a non-Dirac rule of the coin
  automaton ``PTAc`` into its own Dirac rule of ``TAc``.
* **Definition 3** — :func:`single_round` /
  :func:`single_round_coin`: build the single-round automaton ``TA_rd``
  by copying border locations (``B'``), redirecting round-switch rules
  into the copies and parking processes there with self-loops.
* **Fig. 6** — :func:`refine_bca`: refine the ``S -> M⊥`` transition of
  a Binary-Crusader-Agreement protocol through the bookkeeping locations
  ``N0``, ``N1``, ``N⊥`` so that the binding conditions CB2–CB4 become
  expressible as counter propositions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.automaton import ThresholdAutomaton
from repro.core.coin import CoinAutomaton
from repro.core.guards import Cmp, Guard
from repro.core.expression import ParamExpr
from repro.core.locations import LocKind, Location, intermediate
from repro.core.rules import Rule
from repro.errors import ValidationError

#: Suffix appended to a border location's name to form its ``B'`` copy.
BORDER_COPY_SUFFIX = "__end"


def border_copy_name(border: str) -> str:
    """Name of the ``B'`` copy of border location ``border``."""
    return border + BORDER_COPY_SUFFIX


def derandomize(coin: CoinAutomaton, name: Optional[str] = None) -> ThresholdAutomaton:
    """Definition 1: the non-probabilistic automaton ``TA_PTA``.

    Every Dirac rule is kept as-is; every probabilistic branch ``l`` with
    ``delta_to(l) > 0`` of a non-Dirac rule ``r`` becomes its own rule
    named ``{r.name}@{l}``.
    """
    rules = []
    for rule in coin.rules:
        if rule.is_dirac:
            target = rule.branches[0][0]
            rules.append(Rule(rule.name, rule.source, target, rule.guard, rule.update))
        else:
            for target, _prob in rule.branches:
                rules.append(
                    Rule(
                        f"{rule.name}@{target}",
                        rule.source,
                        target,
                        rule.guard,
                        rule.update,
                    )
                )
    return ThresholdAutomaton(
        name or f"{coin.name}-np",
        coin.locations,
        coin.shared_vars,
        coin.coin_vars,
        rules,
        role="coin",
    )


def _single_round_parts(
    locations: Sequence[Location],
    loc_of,
) -> Tuple[Tuple[Location, ...], Tuple[Rule, ...]]:
    """Shared part of Definition 3: B' copies and their self-loops."""
    copies = []
    loops = []
    for loc in locations:
        if loc.kind is not LocKind.BORDER:
            continue
        copy = Location(
            border_copy_name(loc.name), LocKind.BORDER_COPY, loc.value, False
        )
        copies.append(copy)
        loops.append(Rule(f"loop_{copy.name}", copy.name, copy.name))
    return tuple(copies), tuple(loops)


def single_round(
    automaton: ThresholdAutomaton, name: Optional[str] = None
) -> ThresholdAutomaton:
    """Definition 3 applied to a (derandomized) threshold automaton.

    Round-switch rules ``(f, b, true, 0)`` are redirected to the border
    copies ``(f, b', true, 0)``; everything else is preserved.
    """
    copies, loops = _single_round_parts(automaton.locations, automaton.location)
    switch = set(automaton.round_switch_rules)
    rules = []
    for rule in automaton.rules:
        if rule in switch:
            rules.append(
                Rule(rule.name, rule.source, border_copy_name(rule.target))
            )
        else:
            rules.append(rule)
    rules.extend(loops)
    result = ThresholdAutomaton(
        name or f"{automaton.name}-rd",
        tuple(automaton.locations) + copies,
        automaton.shared_vars,
        automaton.coin_vars,
        rules,
        role=automaton.role,
    )
    result.check_single_round_form()
    return result


def single_round_coin(
    coin: CoinAutomaton, name: Optional[str] = None
) -> CoinAutomaton:
    """Definition 3 applied directly to the probabilistic coin automaton.

    Needed for the single-round *probabilistic* counter system
    ``Sys(TAn_rd, TAc_rd)`` of Lemma 2, where coin branches stay
    probabilistic.  Round-switch rules of the coin are its rules from
    final locations to border locations.
    """
    from repro.core.rules import ProbRule, dirac

    copies, loop_rules = _single_round_parts(coin.locations, coin.location)
    rules = []
    for rule in coin.rules:
        source_kind = coin.location(rule.source).kind
        is_switch = (
            source_kind is LocKind.FINAL
            and rule.is_dirac
            and coin.location(rule.branches[0][0]).kind is LocKind.BORDER
        )
        if is_switch:
            rules.append(
                dirac(rule.name, rule.source, border_copy_name(rule.branches[0][0]))
            )
        else:
            rules.append(rule)
    for loop in loop_rules:
        rules.append(dirac(loop.name, loop.source, loop.target))
    return CoinAutomaton(
        name or f"{coin.name}-rd",
        tuple(coin.locations) + copies,
        coin.shared_vars,
        coin.coin_vars,
        rules,
    )


def refine_bca(
    automaton: ThresholdAutomaton,
    rule_name: str,
    m0_var: str,
    m1_var: str,
    n0: str = "N0",
    n1: str = "N1",
    nbot: str = "Nbot",
    name: Optional[str] = None,
) -> ThresholdAutomaton:
    """Fig. 6: refine the ``S -> M⊥`` rule of a category-(C) protocol.

    The rule ``r3 = (S, M⊥, φ, 0)`` is replaced by::

        r3A = (S, N0,  φ ∧ m0 > 0, 0)
        r3B = (S, N1,  φ ∧ m1 > 0, 0)
        r3C = (S, N⊥,  φ ∧ m0 = 0 ∧ m1 = 0, 0)
        r3{0,1,⊥} = (N{0,1,⊥}, M⊥, true, 0)

    which lets the binding conditions CB2–CB4 refer to the counters of
    ``N0``/``N1``/``N⊥`` instead of unsupported propositions about the
    exact number of received messages.

    Args:
        automaton: the process automaton containing ``rule_name``.
        rule_name: name of the ``S -> M⊥`` rule to refine.
        m0_var / m1_var: shared variables counting received messages
            with value 0 / 1 in the refined step.
        n0 / n1 / nbot: names for the three bookkeeping locations.
    """
    try:
        rule = automaton.rule(rule_name)
    except KeyError:
        raise ValidationError(
            f"{automaton.name}: no rule named {rule_name!r} to refine"
        ) from None
    if rule.update:
        raise ValidationError(
            f"{automaton.name}: rule {rule_name!r} must keep shared variables "
            f"unchanged to be refinable"
        )
    for fresh in (n0, n1, nbot):
        if automaton.has_location(fresh):
            raise ValidationError(
                f"{automaton.name}: location {fresh!r} already exists"
            )
    for var in (m0_var, m1_var):
        if var not in automaton.shared_vars:
            raise ValidationError(
                f"{automaton.name}: {var!r} is not a shared variable"
            )

    positive_m0 = Guard(((m0_var, 1),), Cmp.GE, ParamExpr.constant(1))
    positive_m1 = Guard(((m1_var, 1),), Cmp.GE, ParamExpr.constant(1))
    zero_m0 = Guard(((m0_var, 1),), Cmp.LT, ParamExpr.constant(1))
    zero_m1 = Guard(((m1_var, 1),), Cmp.LT, ParamExpr.constant(1))

    new_locations = tuple(automaton.locations) + (
        intermediate(n0, value=0),
        intermediate(n1, value=1),
        intermediate(nbot),
    )
    new_rules = [r for r in automaton.rules if r.name != rule_name]
    new_rules.extend(
        [
            Rule(f"{rule_name}A", rule.source, n0, rule.guard + (positive_m0,)),
            Rule(f"{rule_name}B", rule.source, n1, rule.guard + (positive_m1,)),
            Rule(f"{rule_name}C", rule.source, nbot, rule.guard + (zero_m0, zero_m1)),
            Rule(f"{rule_name}0", n0, rule.target),
            Rule(f"{rule_name}1", n1, rule.target),
            Rule(f"{rule_name}bot", nbot, rule.target),
        ]
    )
    return ThresholdAutomaton(
        name or f"{automaton.name}-refined",
        new_locations,
        automaton.shared_vars,
        automaton.coin_vars,
        new_rules,
        role=automaton.role,
    )
