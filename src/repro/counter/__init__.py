"""Counter-system semantics (explicit, for fixed parameter valuations).

Implements §III-C/D/E of the paper: configurations, actions, the
probabilistic transition function, schedules and paths, adversaries
(including round-rigid ones), the round-rigid reordering of Theorem 1,
and the fairness/termination side conditions of Theorem 2.
"""

from repro.counter.actions import Action
from repro.counter.adversary import (
    Adversary,
    FifoAdversary,
    RandomAdversary,
    RoundRigidAdversary,
    ScriptedAdversary,
)
from repro.counter.config import Config
from repro.counter.fairness import (
    all_fair_executions_terminate,
    find_progress_cycle,
    is_non_blocking,
)
from repro.counter.mdp import SampledPath, sample_path
from repro.counter.reorder import check_reorder_theorem, round_rigid_reorder
from repro.counter.schedule import (
    Path,
    Schedule,
    apply_schedule,
    is_applicable,
    path,
    random_schedule,
)
from repro.counter.program import (
    CompiledRule,
    ProgramCache,
    ProtocolProgram,
    clear_program_cache,
    shared_program,
)
from repro.counter.system import CounterSystem, clear_shared_caches, shared_system

__all__ = [
    "Action",
    "Adversary",
    "CompiledRule",
    "Config",
    "CounterSystem",
    "ProgramCache",
    "ProtocolProgram",
    "FifoAdversary",
    "Path",
    "RandomAdversary",
    "RoundRigidAdversary",
    "SampledPath",
    "Schedule",
    "ScriptedAdversary",
    "all_fair_executions_terminate",
    "apply_schedule",
    "check_reorder_theorem",
    "clear_program_cache",
    "clear_shared_caches",
    "find_progress_cycle",
    "is_applicable",
    "is_non_blocking",
    "path",
    "random_schedule",
    "round_rigid_reorder",
    "sample_path",
    "shared_program",
    "shared_system",
]
