"""Actions of counter systems.

An action ``alpha = (r, k)`` is the execution of rule ``r`` in round
``k`` by one automaton (§III-C).  In the *non-probabilistic* counter
system (§III-D) every probabilistic branch of a non-Dirac coin rule is
its own action; we record the chosen branch target in :attr:`branch`.
For Dirac/process rules ``branch`` is ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Action:
    """One rule execution, labelled with its round (and coin branch)."""

    rule: str
    round: int = 0
    branch: Optional[str] = None

    def with_round(self, round_no: int) -> "Action":
        """The same action relabelled to a different round."""
        return Action(self.rule, round_no, self.branch)

    def __str__(self) -> str:
        branch = f"@{self.branch}" if self.branch is not None else ""
        return f"({self.rule}{branch}, {self.round})"
