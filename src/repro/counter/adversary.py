"""Adversaries (§III-E).

An adversary resolves the scheduling non-determinism of the MDP: given
the history (a non-empty sequence of configurations) it selects an
action applicable to the last configuration.  Coin branches stay
probabilistic — sampling them is the job of
:mod:`repro.counter.mdp`.

Round-rigid adversaries additionally promise that the produced action
sequence decomposes into per-round blocks ``s0 · s1 · s2 ...``; the
:class:`RoundRigidAdversary` wrapper enforces this by filtering the
options offered to the wrapped adversary.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.counter.actions import Action
from repro.counter.config import Config
from repro.counter.system import CounterSystem


class Adversary:
    """Base class: a function from histories to applicable actions."""

    def choose(
        self,
        system: CounterSystem,
        history: Sequence[Config],
        options: Sequence[Action],
    ) -> Optional[Action]:
        """Pick one of ``options`` (or None to stop).  Override me."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-run state (called once per generated path)."""


class RandomAdversary(Adversary):
    """Uniformly random choice — the baseline fair-ish scheduler."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose(self, system, history, options):
        if not options:
            return None
        return options[self._rng.randrange(len(options))]


class FifoAdversary(Adversary):
    """Deterministic scheduler: always the first enabled action.

    With the stable ordering of :meth:`CounterSystem.enabled_actions`,
    this drives every process as far as possible in rule-declaration
    order — useful for reproducible traces.
    """

    def choose(self, system, history, options):
        return options[0] if options else None


class ScriptedAdversary(Adversary):
    """Replays a fixed action list, then stops.

    Used to replay counterexample schedules produced by the checkers.
    """

    def __init__(self, actions: Sequence[Action]):
        self._script: List[Action] = list(actions)
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def choose(self, system, history, options):
        if self._pos >= len(self._script):
            return None
        action = self._script[self._pos]
        self._pos += 1
        if action not in options:
            return None
        return action


class RoundRigidAdversary(Adversary):
    """Restricts any inner adversary to round-rigid behaviour.

    Only actions of the lowest unfinished round are offered to the inner
    adversary: an action of round ``k`` becomes available only when no
    action of a round ``< k`` is enabled any more.
    """

    def __init__(self, inner: Adversary):
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def choose(self, system, history, options):
        if not options:
            return None
        lowest = min(action.round for action in options)
        restricted = [action for action in options if action.round == lowest]
        return self.inner.choose(system, history, restricted)


#: Factory signature used by the Monte-Carlo driver in repro.counter.mdp.
AdversaryFactory = Callable[[], Adversary]
