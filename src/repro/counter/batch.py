"""Frontier-batched vectorized successor expansion.

The scalar engine (:meth:`repro.counter.system.CounterSystem.
successor_groups`) expands one configuration at a time: per enabled
``(rule, round)`` pair it walks the guard atoms in a Python loop,
copies the flat cell tuple into a list, applies the move and interns
the result.  On a BFS frontier of thousands of configurations that is
thousands of interpreter round-trips doing the *same* linear algebra.

This module batches the whole frontier instead:

* :class:`BatchPlan` — the valuation-independent matrix form of a
  compiled :class:`~repro.counter.program.ProtocolProgram`: one dense
  guard-coefficient matrix over the round block (one row per guard
  atom of every non-stutter rule, in rule order), an atom→rule
  indicator used to AND a rule's atoms with one matmul, and the
  per-rule source-offset vector.  Built lazily once per program via
  :meth:`~repro.counter.program.ProtocolProgram.batch_plan`.
* :class:`BatchExpander` — binds a plan to one
  :class:`~repro.counter.system.CounterSystem` (the guard thresholds
  are the only valuation-dependent piece) and exposes
  :meth:`BatchExpander.ensure`: pack every not-yet-cached frontier
  configuration into one contiguous ``int64`` array (grouped by
  ``rounds`` horizon so rows are uniform), evaluate *all* guard linear
  forms over the *entire* frontier with matrix ops, mask disabled
  ``(rule, round)`` pairs and empty source counters in bulk,
  materialize successor rows with vectorized row adds, and only then
  intern the resulting tuples and fill the system's ``_succ_cache``
  with exactly the :data:`~repro.counter.system.MoveGroup` tuples the
  scalar path produces.

Order-preservation contract
---------------------------
The cached groups are assembled rule-major then by round — the same
order :meth:`~repro.counter.system.CounterSystem._enabled_rule_rounds`
yields — and each group's entries follow the rule's branch order, so a
consumer flattening the memoised groups observes exactly the scalar
action order.  BFS exploration order, verdicts and ``states_explored``
(including ``max_states`` early exits) are therefore bit-identical to
the scalar engine; the differential suite
(``tests/checker/test_batch_expansion.py``) pins this on every registry
protocol and the fuzz corpus.

Selection
---------
The batch path is the default wherever numpy is importable.  Opt out
per checker (``ExplicitChecker(..., expansion="scalar")``), per task
(the registered ``explicit-scalar`` engine), or process-wide with the
``REPRO_ENGINE_BATCH=0`` environment escape hatch.  Without numpy every
knob quietly resolves to the scalar engine — the import is gated, never
required.
"""

from __future__ import annotations

import os
from itertools import chain, repeat
from typing import Dict, Iterable, List, Optional, Tuple

try:  # gated: the engine must keep working on numpy-less interpreters
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via resolve_expansion
    _np = None

from repro.core.guards import Cmp
from repro.counter.actions import Action
from repro.counter.config import Config
from repro.errors import SemanticsError

__all__ = [
    "BatchExpander",
    "BatchPlan",
    "CHUNK_ROWS",
    "ENV_FLAG",
    "batch_available",
    "build_plan",
    "default_expansion",
    "expander_for",
    "resolve_expansion",
]

#: Environment escape hatch: ``REPRO_ENGINE_BATCH=0`` forces the scalar
#: expansion path process-wide (read at checker construction, so tests
#: can flip it per case).
ENV_FLAG = "REPRO_ENGINE_BATCH"

#: Frontier rows packed per numpy block — bounds peak array memory
#: (``CHUNK_ROWS * rounds * block * 8`` bytes per chunk, a few tens of
#: MB at protocol-sized blocks) without changing results (chunks of one
#: frontier are independent).  Large chunks amortize the per-chunk
#: matmul / scatter call overhead over more rows.
CHUNK_ROWS = 16384


def batch_available() -> bool:
    """Is the vectorized path importable in this interpreter?"""
    return _np is not None


def default_expansion() -> str:
    """The process default: ``"batch"`` unless numpy is missing or the
    ``REPRO_ENGINE_BATCH=0`` escape hatch is set."""
    if _np is None or os.environ.get(ENV_FLAG, "1") == "0":
        return "scalar"
    return "batch"


def resolve_expansion(expansion: Optional[str]) -> str:
    """Normalise an expansion knob to ``"batch"`` or ``"scalar"``.

    ``None`` resolves to :func:`default_expansion`; an explicit
    ``"batch"`` on a numpy-less interpreter degrades to ``"scalar"``
    (results are identical by contract, so the fallback is silent).
    """
    if expansion is None:
        return default_expansion()
    if expansion not in ("batch", "scalar"):
        raise SemanticsError(
            f"unknown expansion {expansion!r}; expected 'batch' or 'scalar'"
        )
    if expansion == "batch" and _np is None:
        return "scalar"
    return expansion


class BatchPlan:
    """Valuation-independent matrix form of one compiled program.

    All arrays range over the *non-stutter* rules in program order (the
    rules :meth:`~repro.counter.system.CounterSystem.successor_groups`
    enumerates) and over their guard atoms flattened in that same
    order:

    * ``coeffs`` — ``(n_atoms, block)`` dense guard left-hand sides as
      within-round-block coefficient rows;
    * ``lt_mask`` — ``(n_atoms,)`` True where the atom compares with
      ``<`` (so ``satisfied = (lhs >= rhs) XOR lt_mask``);
    * ``atom_indicator`` / ``atom_counts`` — ``(n_atoms, n_rules)`` /
      ``(n_rules,)``: a rule is guard-enabled when its satisfied-atom
      count (one matmul) equals its atom count;
    * ``src_offsets`` — ``(n_rules,)`` within-block source-location
      offsets for the non-empty-source mask.

    Guard *thresholds* are the only valuation-dependent piece and live
    on the :class:`BatchExpander` binding this plan to a system.
    """

    __slots__ = (
        "rule_names",
        "n_rules",
        "n_atoms",
        "coeffs",
        "lt_mask",
        "atom_indicator",
        "atom_counts",
        "src_offsets",
    )

    def __init__(self, program) -> None:
        if _np is None:  # pragma: no cover - guarded by build_plan
            raise SemanticsError("numpy is required to build a BatchPlan")
        rules = [rule for rule in program.rules if not rule.stutter]
        block = program.block
        self.rule_names: Tuple[str, ...] = tuple(rule.name for rule in rules)
        self.n_rules = len(rules)
        coeff_rows: List[List[int]] = []
        lt_flags: List[bool] = []
        atom_rule: List[int] = []
        for index, rule in enumerate(rules):
            for lhs, cmp, _rhs in rule.guard_flat:
                row = [0] * block
                for offset, coeff in lhs:
                    row[offset] += coeff
                coeff_rows.append(row)
                lt_flags.append(cmp is Cmp.LT)
                atom_rule.append(index)
        self.n_atoms = len(coeff_rows)
        self.coeffs = _np.array(coeff_rows, dtype=_np.int64).reshape(
            self.n_atoms, block
        )
        self.lt_mask = _np.array(lt_flags, dtype=bool)
        indicator = _np.zeros((self.n_atoms, self.n_rules), dtype=_np.int64)
        for atom, rule_index in enumerate(atom_rule):
            indicator[atom, rule_index] = 1
        self.atom_indicator = indicator
        self.atom_counts = indicator.sum(axis=0)
        self.src_offsets = _np.array(
            [rule.source for rule in rules], dtype=_np.intp
        )


def build_plan(program) -> Optional[BatchPlan]:
    """A :class:`BatchPlan` for ``program``, or ``None`` without numpy."""
    if _np is None:
        return None
    return BatchPlan(program)


class BatchExpander:
    """One system's frontier-batched successor expander.

    Owns the per-valuation guard threshold vector (bound once from the
    system's :class:`~repro.counter.program.CompiledRule` tuple) and a
    small per-``(rule, round, branch)`` :class:`Action` cache — the
    frozen-dataclass constructions the scalar path pays per successor
    are paid here once per distinct move label.
    """

    def __init__(self, system, plan: BatchPlan) -> None:
        self.system = system
        self.plan = plan
        self.block = system.block
        self.rules = tuple(r for r in system._rule_list if not r.stutter)
        if tuple(r.name for r in self.rules) != plan.rule_names:
            raise SemanticsError(
                "batch plan is misaligned with the system's bound rules"
            )
        thresholds = [
            rhs for rule in self.rules for _lhs, _cmp, rhs in rule.guard_flat
        ]
        self.thresholds = _np.array(thresholds, dtype=_np.int64)
        self._actions: Dict[Tuple[int, int, int], Action] = {}

    # ------------------------------------------------------------------
    def ensure(self, config: Config, frontier: Iterable[Config]) -> None:
        """Make ``config``'s successor groups cached, batching the frontier.

        A no-op (one dict lookup) when ``config`` is already cached;
        otherwise the whole current frontier's uncached configurations
        are packed and expanded together — the BFS/game loops call this
        once per pop, so a cache miss amortises the vectorized pass
        over everything currently queued.
        """
        if config in self.system._succ_cache:
            return
        self.expand_frontier(chain((config,), frontier))

    def expand_frontier(self, configs: Iterable[Config]) -> int:
        """Batch-expand every uncached configuration; returns how many.

        Frontier rows are grouped by ``rounds`` horizon (rows of one
        packed array must be uniform) and chunked at
        :data:`CHUNK_ROWS`; each uncached configuration ends up with
        its full successor-group tuple in the system's ``_succ_cache``,
        bit-identical to what the scalar path would memoise.
        """
        system = self.system
        cache = system._succ_cache
        by_rounds: Dict[int, List[Config]] = {}
        seen = set()
        for config in configs:
            # Frontier configs come from the BFS worklists already
            # interned; value-keyed dedup is all that is needed here.
            if config in seen or config in cache:
                continue
            seen.add(config)
            by_rounds.setdefault(config.rounds, []).append(config)
        expanded = 0
        row_intern: Dict[bytes, Config] = {}
        for rounds in sorted(by_rounds):
            group = by_rounds[rounds]
            for start in range(0, len(group), CHUNK_ROWS):
                chunk = group[start : start + CHUNK_ROWS]
                self._expand_chunk(rounds, chunk, row_intern)
                expanded += len(chunk)
        return expanded

    # ------------------------------------------------------------------
    def _expand_chunk(
        self,
        rounds: int,
        configs: List[Config],
        row_intern: Dict[bytes, Config],
    ) -> None:
        np = _np
        system = self.system
        plan = self.plan
        block = self.block
        size = len(configs)
        width = rounds * block
        packed = np.fromiter(
            chain.from_iterable(config.data for config in configs),
            dtype=np.int64,
            count=size * width,
        ).reshape(size, width)

        # ---- guard + source masks for every (rule, round) pair -------
        # One GEMM over every (config, round) block at once: rows of
        # ``stacked`` are round blocks in round-major order per config.
        stacked = packed.reshape(size * rounds, block)
        if plan.n_atoms:
            totals = stacked @ plan.coeffs.T
            satisfied = (totals >= self.thresholds) ^ plan.lt_mask
            guard_ok = (
                satisfied.astype(np.int64) @ plan.atom_indicator
            ) == plan.atom_counts
        else:
            guard_ok = np.ones((size * rounds, plan.n_rules), dtype=bool)
        enabled = guard_ok & (stacked[:, plan.src_offsets] >= 1)
        # (size, rounds, n_rules) -> round-major (rounds, size, n_rules)
        enabled = enabled.reshape(size, rounds, plan.n_rules).swapaxes(0, 1)

        # ---- successor rows, rule-major then by round -----------------
        groups: List[List[tuple]] = [[] for _ in range(size)]
        padded = None  # lazy zero-extended view for horizon-growing moves
        for rule_index, rule in enumerate(self.rules):
            source = rule.source
            update_offsets = rule.update_offsets
            for round_no in range(rounds):
                column = enabled[round_no, :, rule_index]
                if not column.any():
                    continue
                rows = np.nonzero(column)[0]
                dst_round = round_no + 1 if rule.is_round_switch else round_no
                if dst_round + 1 > rounds:
                    if padded is None:
                        padded = np.hstack(
                            [packed, np.zeros((size, block), dtype=np.int64)]
                        )
                    base = padded[rows]
                    out_rounds = rounds + 1
                else:
                    base = packed[rows]
                    out_rounds = rounds
                round_base = round_no * block
                delta = np.zeros(base.shape[1], dtype=np.int64)
                delta[round_base + source] -= 1
                for offset, increment in update_offsets:
                    delta[round_base + offset] += increment
                row_ids = rows.tolist()
                if rule.is_dirac:
                    # Branch destination folded into the delta: one
                    # vectorized add produces the successor rows.
                    delta[dst_round * block + rule.branches[0][0]] += 1
                    succs = self._intern_rows(
                        base + delta, out_rounds, row_intern
                    )
                    action = self._action(rule_index, round_no, -1)
                    # zip(zip(...)) builds the (action, succ) pairs and
                    # their singleton groups at C speed; only the row
                    # scatter stays in the interpreter.
                    entries = zip(zip(repeat(action), succs))
                else:
                    pair_streams = []
                    for branch_index, (dst, _prob) in enumerate(rule.branches):
                        branch_delta = delta.copy()
                        branch_delta[dst_round * block + dst] += 1
                        succs = self._intern_rows(
                            base + branch_delta, out_rounds, row_intern
                        )
                        action = self._action(
                            rule_index, round_no, branch_index
                        )
                        pair_streams.append(zip(repeat(action), succs))
                    entries = zip(*pair_streams)
                for row, entry in zip(row_ids, entries):
                    groups[row].append(entry)

        succ_cache = system._succ_cache
        for index, config in enumerate(configs):
            system._memo_insert(succ_cache, config, tuple(groups[index]))

    def _intern_rows(
        self,
        array,
        out_rounds: int,
        row_intern: Dict[bytes, Config],
    ) -> List[Config]:
        """Interned configurations for a block of successor rows.

        Rows are keyed by their raw little-endian byte image (a void
        reinterpretation of the row — one bytes object per row, no
        per-cell int boxing), so ``row_intern`` short-circuits rows
        repeated *within* one frontier expansion (different
        predecessors reaching the same successor) before paying the
        cell-tuple construction and intern again.  Distinct widths
        never collide: the byte length encodes the round horizon.
        """
        system = self.system
        intern = system.intern
        width_kappa = system.n_locs
        width_g = system.n_vars
        np = _np
        data = np.ascontiguousarray(array)
        keys = data.view(np.dtype((np.void, data.shape[1] * 8))).ravel().tolist()
        fetch = row_intern.get
        out: List[Optional[Config]] = [fetch(key) for key in keys]
        misses = [index for index, hit in enumerate(out) if hit is None]
        if misses:
            # Bulk-convert only the missed rows in one C-level tolist
            # (a repeated row misses more than once within one array;
            # intern() canonicalizes, so the duplicates cost a little
            # and break nothing).
            for index, cells in zip(misses, data[misses].tolist()):
                config = intern(
                    Config.from_flat(
                        tuple(cells), width_kappa, width_g, out_rounds
                    )
                )
                row_intern[keys[index]] = config
                out[index] = config
        return out

    def _action(self, rule_index: int, round_no: int, branch_index: int) -> Action:
        """Memoised :class:`Action` per (rule, round, branch) label."""
        key = (rule_index, round_no, branch_index)
        action = self._actions.get(key)
        if action is None:
            rule = self.rules[rule_index]
            if branch_index < 0:
                action = Action(rule.name, round_no)
            else:
                action = Action(
                    rule.name, round_no, rule.branch_names[branch_index]
                )
            self._actions[key] = action
        return action


def expander_for(system) -> Optional[BatchExpander]:
    """A :class:`BatchExpander` bound to ``system`` (``None`` sans numpy)."""
    plan = system.program.batch_plan()
    if plan is None:
        return None
    return BatchExpander(system, plan)
