"""Configurations of counter systems (§III-C).

A configuration ``c = (kappa, g, p)`` tracks, per round, the counter of
every location and the value of every shared/coin variable, plus the
(fixed) parameter valuation.  Configurations are immutable and hashable
so they can serve as explicit-state model-checking states.

The dense representation indexes locations and variables by integers;
the owning :class:`repro.counter.system.CounterSystem` holds the
name-to-index maps.  Rounds are tracked explicitly and extended lazily:
``kappa[k][i]`` is the counter of location ``i`` in round ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import SemanticsError

Row = Tuple[int, ...]


@dataclass(frozen=True)
class Config:
    """An immutable counter-system configuration.

    Attributes:
        kappa: per-round location counters, ``kappa[round][loc_index]``.
        g: per-round variable values, ``g[round][var_index]``.
    """

    kappa: Tuple[Row, ...]
    g: Tuple[Row, ...]

    @property
    def rounds(self) -> int:
        """Number of rounds currently tracked."""
        return len(self.kappa)

    # ------------------------------------------------------------------
    def counter(self, round_no: int, loc_index: int) -> int:
        """Value of a location counter; rounds beyond the horizon are 0."""
        if round_no >= len(self.kappa):
            return 0
        return self.kappa[round_no][loc_index]

    def variable(self, round_no: int, var_index: int) -> int:
        """Value of a variable; rounds beyond the horizon are 0."""
        if round_no >= len(self.g):
            return 0
        return self.g[round_no][var_index]

    def ensure_rounds(self, rounds: int) -> "Config":
        """A configuration tracking at least ``rounds`` rounds."""
        if rounds <= self.rounds:
            return self
        width_kappa = len(self.kappa[0]) if self.kappa else 0
        width_g = len(self.g[0]) if self.g else 0
        zero_kappa = (0,) * width_kappa
        zero_g = (0,) * width_g
        extra = rounds - self.rounds
        return Config(
            self.kappa + (zero_kappa,) * extra,
            self.g + (zero_g,) * extra,
        )

    # ------------------------------------------------------------------
    def bump(
        self,
        round_no: int,
        src_index: int,
        dst_index: int,
        dst_round: int,
        updates: Tuple[Tuple[int, int], ...],
    ) -> "Config":
        """Apply a move: ``src`` down in ``round_no``, ``dst`` up in
        ``dst_round``, variable increments in ``round_no``.

        Raises:
            SemanticsError: when the source counter is already 0.
        """
        base = self.ensure_rounds(max(round_no, dst_round) + 1)
        kappa = [list(row) for row in base.kappa]
        if kappa[round_no][src_index] < 1:
            raise SemanticsError(
                f"cannot move from empty location index {src_index} "
                f"in round {round_no}"
            )
        kappa[round_no][src_index] -= 1
        kappa[dst_round][dst_index] += 1
        if updates:
            g = [list(row) for row in base.g]
            for var_index, increment in updates:
                g[round_no][var_index] += increment
            new_g = tuple(tuple(row) for row in g)
        else:
            new_g = base.g
        return Config(tuple(tuple(row) for row in kappa), new_g)

    def round_population(self, round_no: int) -> int:
        """Total number of automata currently placed in ``round_no``."""
        if round_no >= len(self.kappa):
            return 0
        return sum(self.kappa[round_no])

    def __str__(self) -> str:
        rows = []
        for k in range(self.rounds):
            rows.append(f"round {k}: kappa={self.kappa[k]} g={self.g[k]}")
        return "; ".join(rows)
