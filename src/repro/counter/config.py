"""Configurations of counter systems (§III-C) — flat state layout.

A configuration ``c = (kappa, g, p)`` tracks, per round, the counter of
every location and the value of every shared/coin variable, plus the
(fixed) parameter valuation.  Configurations are immutable and hashable
so they can serve as explicit-state model-checking states.

Flat state layout
-----------------
The original implementation stored ``kappa`` and ``g`` as tuples of
per-round tuples; every transition re-allocated the whole nested
structure and every dict lookup re-hashed it row by row.  States are
now a **single flat** ``tuple[int, ...]`` of per-round *blocks*::

    data = ( kappa[0] | g[0] | kappa[1] | g[1] | ... )

i.e. the cell of location ``i`` in round ``k`` lives at offset
``k * block + i`` and variable ``j`` at ``k * block + width_kappa + j``
where ``block = width_kappa + width_g``.  The hash of the flat tuple is
computed once at construction and cached, so set/dict membership tests
during state-space exploration never re-hash the payload; the owning
:class:`repro.counter.system.CounterSystem` additionally *interns*
configurations so equal states are pointer-equal and comparisons stop
at identity.

The layout geometry (``width_kappa``/``width_g``/``block``) is a
property of the model *structure*, not of the parameter valuation — it
is computed once in the shared
:class:`~repro.counter.program.ProtocolProgram`, so configurations
produced under different valuations of the same protocol share one
layout and compare/hash uniformly.

The nested-tuple views ``.kappa`` / ``.g`` are kept as reconstructing
properties for compatibility (tests, debugging, pretty-printing) — hot
paths read ``.data`` directly.  Rounds are tracked explicitly and
extended lazily with zero blocks.

The flat layout doubles as the **packing contract** of the
frontier-batched expansion engine: :mod:`repro.counter.batch` stacks
the ``data`` tuples of a whole BFS frontier (grouped by ``rounds`` so
rows are uniform) into one contiguous numpy ``int64`` matrix — row
``i`` *is* ``frontier[i].data`` — evaluates every compiled guard over
the matrix at once, and converts successor rows back through
:meth:`Config.from_flat`.  Any change to the block order or cell
offsets here must be mirrored in ``batch.py``'s ``BatchPlan``
geometry (and is caught by ``tests/checker/test_batch_expansion.py``).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import SemanticsError

Row = Tuple[int, ...]


class Config:
    """An immutable flat counter-system configuration.

    Construct either from the legacy nested-tuple rows (``Config(kappa,
    g)``) or, on hot paths, via :meth:`from_flat` which skips all
    conversion work.  Treat instances as frozen: the engine relies on
    the cached hash never going stale.
    """

    __slots__ = ("data", "width_kappa", "width_g", "rounds", "_hash", "intern_id")

    def __init__(
        self,
        kappa: Sequence[Sequence[int]] = (),
        g: Sequence[Sequence[int]] = (),
    ):
        width_kappa = len(kappa[0]) if kappa else 0
        width_g = len(g[0]) if g else 0
        rounds = max(len(kappa), len(g))
        zero_kappa = (0,) * width_kappa
        zero_g = (0,) * width_g
        cells: list = []
        for k in range(rounds):
            cells.extend(kappa[k] if k < len(kappa) else zero_kappa)
            cells.extend(g[k] if k < len(g) else zero_g)
        self.data = tuple(cells)
        self.width_kappa = width_kappa
        self.width_g = width_g
        self.rounds = rounds
        self._hash = hash((width_kappa, self.data))
        self.intern_id = -1

    @classmethod
    def from_flat(
        cls, data: Tuple[int, ...], width_kappa: int, width_g: int, rounds: int
    ) -> "Config":
        """Wrap an already-flat cell tuple (no validation — hot path)."""
        obj = object.__new__(cls)
        obj.data = data
        obj.width_kappa = width_kappa
        obj.width_g = width_g
        obj.rounds = rounds
        obj._hash = hash((width_kappa, data))
        obj.intern_id = -1
        return obj

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Config):
            return NotImplemented
        return (
            self.data == other.data
            and self.width_kappa == other.width_kappa
            and self.width_g == other.width_g
        )

    # ------------------------------------------------------------------
    # Nested-tuple views (compatibility / debugging)
    # ------------------------------------------------------------------
    @property
    def kappa(self) -> Tuple[Row, ...]:
        """Per-round location counters, ``kappa[round][loc_index]``."""
        block = self.width_kappa + self.width_g
        return tuple(
            self.data[k * block : k * block + self.width_kappa]
            for k in range(self.rounds)
        )

    @property
    def g(self) -> Tuple[Row, ...]:
        """Per-round variable values, ``g[round][var_index]``."""
        block = self.width_kappa + self.width_g
        return tuple(
            self.data[k * block + self.width_kappa : (k + 1) * block]
            for k in range(self.rounds)
        )

    # ------------------------------------------------------------------
    def counter(self, round_no: int, loc_index: int) -> int:
        """Value of a location counter; rounds beyond the horizon are 0."""
        if round_no >= self.rounds:
            return 0
        return self.data[round_no * (self.width_kappa + self.width_g) + loc_index]

    def variable(self, round_no: int, var_index: int) -> int:
        """Value of a variable; rounds beyond the horizon are 0."""
        if round_no >= self.rounds:
            return 0
        block = self.width_kappa + self.width_g
        return self.data[round_no * block + self.width_kappa + var_index]

    def ensure_rounds(self, rounds: int) -> "Config":
        """A configuration tracking at least ``rounds`` rounds."""
        if rounds <= self.rounds:
            return self
        block = self.width_kappa + self.width_g
        extra = (0,) * ((rounds - self.rounds) * block)
        return Config.from_flat(
            self.data + extra, self.width_kappa, self.width_g, rounds
        )

    # ------------------------------------------------------------------
    def apply_move(
        self,
        rounds_needed: int,
        src_offset: int,
        dst_offset: int,
        update_offsets: Iterable[Tuple[int, int]],
    ) -> "Config":
        """Fast-path move on precomputed flat offsets.

        ``src_offset`` / ``dst_offset`` / ``update_offsets`` are
        absolute indices into :attr:`data` (already scaled by round and
        block width); the caller — typically
        :meth:`repro.counter.system.CounterSystem.apply_unchecked` —
        guarantees they are in range for ``rounds_needed`` rounds.

        Raises:
            SemanticsError: when the source counter is already 0.
        """
        base = self if self.rounds >= rounds_needed else self.ensure_rounds(rounds_needed)
        cells = list(base.data)
        if cells[src_offset] < 1:
            raise SemanticsError(
                f"cannot move from empty cell offset {src_offset}"
            )
        cells[src_offset] -= 1
        cells[dst_offset] += 1
        for offset, increment in update_offsets:
            cells[offset] += increment
        return Config.from_flat(
            tuple(cells), base.width_kappa, base.width_g, base.rounds
        )

    def bump(
        self,
        round_no: int,
        src_index: int,
        dst_index: int,
        dst_round: int,
        updates: Tuple[Tuple[int, int], ...],
    ) -> "Config":
        """Apply a move: ``src`` down in ``round_no``, ``dst`` up in
        ``dst_round``, variable increments (by *var index*) in
        ``round_no``.

        Raises:
            SemanticsError: when the source counter is already 0.
        """
        rounds_needed = max(round_no, dst_round) + 1
        base = self if self.rounds >= rounds_needed else self.ensure_rounds(rounds_needed)
        block = base.width_kappa + base.width_g
        src_offset = round_no * block + src_index
        if base.data[src_offset] < 1:
            raise SemanticsError(
                f"cannot move from empty location index {src_index} "
                f"in round {round_no}"
            )
        g_base = round_no * block + base.width_kappa
        return base.apply_move(
            rounds_needed,
            src_offset,
            dst_round * block + dst_index,
            [(g_base + var_index, incr) for var_index, incr in updates],
        )

    def round_population(self, round_no: int) -> int:
        """Total number of automata currently placed in ``round_no``."""
        if round_no >= self.rounds:
            return 0
        block = self.width_kappa + self.width_g
        start = round_no * block
        return sum(self.data[start : start + self.width_kappa])

    def __str__(self) -> str:
        kappa, g = self.kappa, self.g
        rows = []
        for k in range(self.rounds):
            rows.append(f"round {k}: kappa={kappa[k]} g={g[k]}")
        return "; ".join(rows)

    def __repr__(self) -> str:
        return f"Config(kappa={self.kappa!r}, g={self.g!r})"
