"""Fairness and termination of single-round systems.

Theorem 2 requires the single-round system to be *non-blocking* and all
its fair executions to terminate.  An infinite path is fair when no
transition stays applicable forever (§III-D); in a single-round system
whose border copies only carry self-loops, fair termination is
equivalent to the absence of *progress cycles* — cycles in the
reachable configuration graph built from configuration-changing
actions.  Shared variables only grow, so any such cycle would have to
move processes around a zero-update location cycle; canonical automata
make this detectable by plain cycle search on the explicit graph.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.counter.actions import Action
from repro.counter.config import Config
from repro.counter.system import CounterSystem
from repro.errors import DeadlineExceeded, StateBudgetExceeded


def _check_deadline(count: int, deadline: Optional[float]) -> None:
    """Raise once ``deadline`` has passed (polled every 256 expansions)."""
    if deadline is not None and not count & 0xFF and (
        time.perf_counter() > deadline
    ):
        raise DeadlineExceeded("side-condition wall-clock budget exhausted")


def progress_successors(system: CounterSystem, config: Config) -> List[Config]:
    """Successor configurations via configuration-changing actions.

    Served from :meth:`CounterSystem.successor_groups`, so the side
    conditions share the explored graph with the reach/game queries run
    on the same system.  The "did the configuration change" test uses
    value equality (interning makes the common identical case a
    pointer check inside ``__eq__``, but identity is not semantically
    load-bearing — the intern table may be recycled).
    """
    result = []
    for group in system.successor_groups(config):
        for _action, successor in group:
            if successor != config:
                result.append(successor)
    return result


def find_progress_cycle(
    system: CounterSystem,
    initial: Iterable[Config],
    max_states: int = 200_000,
    deadline: Optional[float] = None,
) -> Optional[Tuple[Config, ...]]:
    """Search the reachable graph for a cycle of progress actions.

    Returns a witness cycle (as a tuple of configurations) or ``None``
    when every fair execution terminates.  An exhausted ``max_states``
    budget raises :class:`~repro.errors.StateBudgetExceeded` (the search
    is incomplete — "no cycle found so far" must not read as "none
    exists"); a passed ``deadline`` (absolute ``perf_counter`` time)
    raises :class:`~repro.errors.DeadlineExceeded` once exceeded.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Config, int] = {}
    parent: Dict[Config, Optional[Config]] = {}

    for root in initial:
        if colour.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[Config, Iterable[Config]]] = [
            (root, iter(progress_successors(system, root)))
        ]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                state = colour.get(succ, WHITE)
                if state == GREY:
                    # Reconstruct the cycle from the grey stack.
                    cycle = [succ, node]
                    cursor = parent[node]
                    while cursor is not None and cursor != succ:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.reverse()
                    return tuple(cycle)
                if state == WHITE:
                    if len(colour) >= max_states:
                        raise StateBudgetExceeded(
                            f"progress-cycle search exceeded {max_states} states"
                        )
                    _check_deadline(len(colour), deadline)
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(progress_successors(system, succ))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def all_fair_executions_terminate(
    system: CounterSystem,
    initial: Optional[Iterable[Config]] = None,
    max_states: int = 200_000,
    deadline: Optional[float] = None,
) -> bool:
    """Theorem 2's side condition for the single-round system."""
    configs = list(initial) if initial is not None else list(system.initial_configs())
    return find_progress_cycle(
        system, configs, max_states=max_states, deadline=deadline
    ) is None


def is_non_blocking(
    system: CounterSystem,
    initial: Optional[Iterable[Config]] = None,
    max_states: int = 200_000,
    deadline: Optional[float] = None,
) -> bool:
    """Every reachable configuration with an unfinished automaton can move.

    "Unfinished" means some process sits outside border-copy/final
    locations (or the coin outside its final/copy locations).  We
    explore the reachable graph and verify that every such configuration
    enables at least one progress action.  The resting-location set is
    precompiled into the shared :class:`~repro.counter.program.
    ProtocolProgram` (it depends only on location kinds).
    """
    resting = system.program.resting_locations
    configs = list(initial) if initial is not None else list(system.initial_configs())
    seen: Set[Config] = set(configs)
    frontier = list(configs)
    pops = 0
    while frontier:
        if len(seen) > max_states:
            raise StateBudgetExceeded(
                f"non-blocking search exceeded {max_states} states"
            )
        # Poll on a per-iteration counter: len(seen) grows in batches
        # and could stride over the residue forever.
        pops += 1
        _check_deadline(pops, deadline)
        config = frontier.pop()
        successors = progress_successors(system, config)
        busy = any(
            config.counter(k, i) > 0
            for k in range(config.rounds)
            for i in range(len(system.locations))
            if i not in resting
        )
        if busy and not successors:
            return False
        for succ in successors:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return True
