"""MDP semantics: Markov chains induced by an adversary (§III-E).

Fixing an initial configuration ``c`` and an adversary ``a`` turns the
counter-system MDP into a Markov chain ``M_a^c``.  This module samples
paths of that chain: the adversary resolves scheduling, and the
probabilistic branches of coin rules are sampled according to their
exact :class:`fractions.Fraction` probabilities.

This is the substrate for empirical almost-sure-termination experiments
(the expected-round measurements quoted in the paper's §II) and for
randomized testing of the verification verdicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.counter.actions import Action
from repro.counter.adversary import Adversary
from repro.counter.config import Config
from repro.counter.program import _lottery
from repro.counter.schedule import Schedule
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError


@dataclass
class SampledPath:
    """One sampled run of the Markov chain ``M_a^c``."""

    configs: List[Config] = field(default_factory=list)
    actions: List[Action] = field(default_factory=list)
    #: True when the run stopped because no action was enabled.
    exhausted: bool = False

    @property
    def last(self) -> Config:
        return self.configs[-1]

    def schedule(self) -> Schedule:
        return Schedule(tuple(self.actions))

    def __len__(self) -> int:
        return len(self.actions)


def sample_path(
    system: CounterSystem,
    config: Config,
    adversary: Adversary,
    rng: random.Random,
    max_steps: int,
    stop: Optional[Callable[[Config], bool]] = None,
) -> SampledPath:
    """Sample a run of up to ``max_steps`` steps.

    The adversary chooses among *rules* (offered as derandomized
    actions with their branch stripped); when the chosen rule is
    probabilistic the branch is sampled from its distribution, so the
    adversary cannot predict coin outcomes (it is not omniscient — the
    *adaptive* power of the §II attack lives in the simulator layer,
    where the attacking scheduler inspects the revealed coin).

    Args:
        stop: optional predicate; sampling ends once it holds.
    """
    adversary.reset()
    out = SampledPath(configs=[config])
    current = config
    for _ in range(max_steps):
        if stop is not None and stop(current):
            return out
        options = system.rule_options(current)
        choice = adversary.choose(system, out.configs, options)
        if choice is None:
            out.exhausted = True
            return out
        if choice not in options:
            # Adversaries must pick from the offered (applicable)
            # options; enforcing it here lets the step itself skip the
            # guard re-evaluation via apply_unchecked.
            raise SemanticsError(
                f"adversary chose {choice}, not among the enabled options"
            )
        rule = system.rules[choice.rule]
        if rule.is_dirac:
            action = Action(choice.rule, choice.round)
            current = system.apply_unchecked(current, rule, choice.round)
        else:
            branch, dst_index = _sample_branch(rule, rng)
            action = Action(choice.rule, choice.round, branch)
            current = system.apply_unchecked(
                current, rule, choice.round, dst_index
            )
        out.actions.append(action)
        out.configs.append(current)
    return out


def _sample_branch(rule, rng: random.Random) -> Tuple[str, int]:
    """Sample a destination of a non-Dirac rule by exact probability.

    Returns the branch name *and* its compiled destination index (the
    caller feeds the index straight to ``apply_unchecked``).

    The ticket space is the LCM of the branch denominators: with
    branches 1/2 and 1/3 the lottery runs over 6 tickets (3 + 2 + 1
    leftover) — the previous ``max``-based space of 3 tickets
    oversampled the first branch (2/3 instead of 1/2).  The lottery
    (space size + cumulative thresholds) is precompiled into the
    shared :class:`~repro.counter.program.ProtocolProgram`, so the
    per-step work is one ``randrange`` and a short threshold scan; the
    draw is identical to the per-step LCM computation it replaced.
    """
    lottery = getattr(rule, "lottery", None)
    if lottery is None:  # hand-built rule object without a program
        lottery = _lottery(rule.branches)
    denominator, thresholds = lottery
    ticket = rng.randrange(denominator)
    for index, threshold in enumerate(thresholds):
        if ticket < threshold:
            return rule.branch_names[index], rule.branches[index][0]
    return rule.branch_names[-1], rule.branches[-1][0]
