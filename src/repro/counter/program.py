"""Valuation-independent compiled protocol programs.

The paper's headline workload is *cross-validation*: one protocol model
checked under many parameter valuations (n, t, f) and fault scenarios.
Compilation — flattening every rule's guards and updates to offsets
into the flat :class:`~repro.counter.config.Config` layout, building
the location/variable index maps, classifying round switches and
stutters — depends only on the *structure* of the
:class:`~repro.core.system.SystemModel`, never on the valuation; only
the guard right-hand sides (affine :class:`~repro.core.expression.
ParamExpr` over the parameters) and the automaton counts need concrete
parameters.

This module splits that work out of :class:`~repro.counter.system.
CounterSystem`:

* :class:`ProtocolProgram` — the *shared* compiled form of one model:
  index maps, flat-layout geometry, the rule list with symbolic guard
  right-hand sides, start locations, branch lotteries.  Compiled once
  per model structure.
* :meth:`ProtocolProgram.bind_rules` — evaluates the guard right-hand
  sides under one valuation and returns the concrete
  :class:`CompiledRule` tuple (memoised per valuation, so every
  ``CounterSystem`` at the same valuation shares one rule tuple).
* :class:`ProgramCache` / :func:`shared_program` — a process-wide cache
  keyed by *structural* model identity, so the checkers, the MDP
  sampler, the benchmarks and every valuation of a sweep share one
  compiled program even though protocol factories return a fresh
  ``SystemModel`` instance per call.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.expression import ParamExpr
from repro.core.guards import Cmp
from repro.core.locations import LocKind, Location
from repro.core.system import SystemModel
from repro.counter.store import InternTable

__all__ = [
    "CompiledGuard",
    "CompiledRule",
    "ProgramCache",
    "ProgramRule",
    "ProtocolProgram",
    "bounded_insert",
    "clear_program_cache",
    "program_key",
    "shared_program",
]


def bounded_insert(cache: Dict, key, value, cap: int, on_evict=None) -> None:
    """Insert with FIFO eviction of the oldest quarter at ``cap``.

    The one eviction policy shared by every bounded cache in the engine
    (successor groups, rule options, bound rules, programs, systems):
    when the cache reaches ``cap``, the oldest quarter *by insertion
    order* is dropped.  Hits do **not** refresh a key's position — this
    is plain FIFO, not LRU — which keeps the hit path a single dict
    lookup.  At least one entry is always evicted at the cap, so the
    bound holds for any ``cap >= 1``.

    ``on_evict`` (optional) is called with the number of evicted
    entries whenever eviction happens — the single notification point
    observers key on (the graph store's cache-epoch bookkeeping), so a
    future policy change cannot silently strand them.
    """
    if len(cache) >= cap:
        evict = max(1, len(cache) // 4)
        for stale in list(itertools.islice(iter(cache), evict)):
            del cache[stale]
        if on_evict is not None:
            on_evict(evict)
    cache[key] = value

#: A bound guard atom: (lhs as (index, coeff) pairs, cmp, rhs int).
CompiledGuard = Tuple[Tuple[Tuple[int, int], ...], Cmp, int]

#: A symbolic guard atom: rhs still an affine parameter expression.
SymbolicGuard = Tuple[Tuple[Tuple[int, int], ...], Cmp, ParamExpr]

#: Branch lottery of a non-Dirac rule: (ticket-space size, cumulative
#: ticket thresholds per branch) — precomputed so the MDP sampler draws
#: a branch without recomputing LCMs per step.
Lottery = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class CompiledRule:
    """A rule bound to a fixed valuation (concrete guard thresholds)."""

    name: str
    owner: str  # "process" or "coin"
    source: int
    #: (target_index, probability) — a single pair for Dirac/process rules.
    branches: Tuple[Tuple[int, Fraction], ...]
    guard: Tuple[CompiledGuard, ...]
    update: Tuple[Tuple[int, int], ...]
    is_round_switch: bool
    source_name: str
    branch_names: Tuple[str, ...]
    #: Guard atoms with lhs as (round-block offset, coeff) pairs.
    guard_flat: Tuple[CompiledGuard, ...] = ()
    #: Updates as (round-block offset, increment) pairs.
    update_offsets: Tuple[Tuple[int, int], ...] = ()
    #: Provably a no-op self-loop (skipped when stutters are excluded).
    stutter: bool = False
    #: Precomputed branch lottery for non-Dirac rules (None for Dirac).
    lottery: Optional[Lottery] = None

    @property
    def is_dirac(self) -> bool:
        return len(self.branches) == 1


@dataclass(frozen=True)
class ProgramRule:
    """The valuation-independent compiled form of one rule.

    Everything except the guard right-hand sides is final: branch
    targets/probabilities, flat offsets, round-switch and stutter
    classification.  :meth:`bind` evaluates the symbolic right-hand
    sides under a concrete valuation and yields a :class:`CompiledRule`.
    """

    name: str
    owner: str
    source: int
    branches: Tuple[Tuple[int, Fraction], ...]
    guard: Tuple[SymbolicGuard, ...]
    guard_flat: Tuple[SymbolicGuard, ...]
    update: Tuple[Tuple[int, int], ...]
    update_offsets: Tuple[Tuple[int, int], ...]
    is_round_switch: bool
    source_name: str
    branch_names: Tuple[str, ...]
    stutter: bool
    lottery: Optional[Lottery]

    def bind(self, valuation: Mapping[str, int]) -> CompiledRule:
        """Evaluate the guard thresholds under ``valuation``."""
        thresholds = [rhs.evaluate(valuation) for _lhs, _cmp, rhs in self.guard]
        return CompiledRule(
            name=self.name,
            owner=self.owner,
            source=self.source,
            branches=self.branches,
            guard=tuple(
                (lhs, cmp, value)
                for (lhs, cmp, _rhs), value in zip(self.guard, thresholds)
            ),
            update=self.update,
            is_round_switch=self.is_round_switch,
            source_name=self.source_name,
            branch_names=self.branch_names,
            guard_flat=tuple(
                (lhs, cmp, value)
                for (lhs, cmp, _rhs), value in zip(self.guard_flat, thresholds)
            ),
            update_offsets=self.update_offsets,
            stutter=self.stutter,
            lottery=self.lottery,
        )


def program_key(model: SystemModel) -> tuple:
    """Structural identity of a model, for program-cache keying.

    Protocol factories return a fresh :class:`SystemModel` per call, so
    object identity cannot share compiled programs across valuations.
    All compilation inputs are hashable value types (frozen dataclasses
    and tuples), so the key is simply the tuple of them: two factory
    calls of the same protocol produce equal keys, while any structural
    edit (a rule, a guard, a location kind) produces a different one.
    """
    process = model.process
    coin = model.coin
    return (
        model.name,
        model.environment,
        process.locations,
        process.shared_vars,
        process.coin_vars,
        process.rules,
        None
        if coin is None
        else (coin.locations, coin.shared_vars, coin.coin_vars, coin.rules),
    )


class ProtocolProgram:
    """A model compiled once, shareable by every valuation.

    Owns the valuation-independent artefacts: location/variable index
    maps, the flat-layout geometry (``n_locs``/``n_vars``/``block``),
    the ordered rule list with symbolic guard thresholds, the start
    locations and the resting-location set the fairness side conditions
    consume.  Per-valuation state (intern table, successor caches,
    automaton counts) lives in :class:`~repro.counter.system.
    CounterSystem`, which *binds* this program to concrete parameters.
    """

    #: Bound per-valuation rule tuples kept alive (entries, FIFO evicted).
    BOUND_CACHE_CAP = 128

    def __init__(self, model: SystemModel, key: Optional[tuple] = None):
        self.key = key if key is not None else program_key(model)
        self.model_name = model.name
        self.environment = model.environment
        self.has_coin = model.coin is not None

        # ---- index maps ------------------------------------------------
        locations: List[Location] = list(model.process.locations)
        location_owner: List[str] = ["process"] * len(locations)
        if model.coin is not None:
            locations.extend(model.coin.locations)
            location_owner.extend(["coin"] * len(model.coin.locations))
        self.locations: Tuple[Location, ...] = tuple(locations)
        self.location_owner: Tuple[str, ...] = tuple(location_owner)
        self.loc_index: Dict[str, int] = {
            loc.name: i for i, loc in enumerate(self.locations)
        }
        self.variables: Tuple[str, ...] = tuple(model.shared_vars) + tuple(
            model.coin_vars
        )
        self.var_index: Dict[str, int] = {v: i for i, v in enumerate(self.variables)}

        # ---- flat layout -----------------------------------------------
        self.n_locs = len(self.locations)
        self.n_vars = len(self.variables)
        #: Cells per round in the flat layout: ``kappa row | g row``.
        self.block = self.n_locs + self.n_vars

        # ---- compiled rules (model order: process first, then coin) ----
        rules: List[ProgramRule] = []
        for rule in model.process.rules:
            rules.append(self._compile_dirac(rule, "process", model.process))
        if model.coin is not None:
            for prob_rule in model.coin.rules:
                rules.append(self._compile_prob(prob_rule, model.coin))
        self.rules: Tuple[ProgramRule, ...] = tuple(rules)

        self.process_start = _start_locations(model.process.locations)
        self.coin_start = (
            _start_locations(model.coin.locations) if model.coin else ()
        )
        #: Locations where an automaton may rest forever without
        #: violating fairness (border copies and final locations) —
        #: consumed by :func:`repro.counter.fairness.is_non_blocking`.
        self.resting_locations = frozenset(
            index
            for index, loc in enumerate(self.locations)
            if loc.kind in (LocKind.BORDER_COPY, LocKind.FINAL)
        )

        #: valuation-key -> (rules dict, ordered rule tuple)
        self._bound: Dict[tuple, Tuple[Dict[str, CompiledRule], Tuple[CompiledRule, ...]]] = {}

        #: One config intern table shared by every valuation's
        #: CounterSystem: configurations are valuation-independent
        #: values over this program's flat layout, so canonicalisation
        #: happens once per structure, not once per system (see
        #: :class:`repro.counter.store.InternTable`).
        self.intern_table = InternTable()

        #: Lazily-built valuation-independent batch-expansion arrays
        #: (:class:`repro.counter.batch.BatchPlan`); ``False`` = not yet
        #: attempted, ``None`` = numpy unavailable.
        self._batch_plan: object = False

    # ------------------------------------------------------------------
    # Compilation (valuation-independent)
    # ------------------------------------------------------------------
    def _compile_guard(self, guard) -> Tuple[SymbolicGuard, ...]:
        return tuple(
            (
                tuple((self.var_index[name], coeff) for name, coeff in atom.lhs),
                atom.cmp,
                atom.rhs,
            )
            for atom in guard
        )

    def _flatten_guard(
        self, guard: Tuple[SymbolicGuard, ...]
    ) -> Tuple[SymbolicGuard, ...]:
        n_locs = self.n_locs
        return tuple(
            (tuple((n_locs + var_idx, coeff) for var_idx, coeff in lhs), cmp, rhs)
            for lhs, cmp, rhs in guard
        )

    def _compile_update(self, update) -> Tuple[Tuple[int, int], ...]:
        return tuple((self.var_index[name], incr) for name, incr in update)

    @staticmethod
    def _is_round_switch(automaton, source: str, target: str) -> bool:
        return (
            automaton.location(source).kind is LocKind.FINAL
            and automaton.location(target).kind is LocKind.BORDER
        )

    def _compile_dirac(self, rule, owner: str, automaton) -> ProgramRule:
        guard = self._compile_guard(rule.guard)
        update = self._compile_update(rule.update)
        source = self.loc_index[rule.source]
        target = self.loc_index[rule.target]
        is_switch = self._is_round_switch(automaton, rule.source, rule.target)
        return ProgramRule(
            name=rule.name,
            owner=owner,
            source=source,
            branches=((target, Fraction(1)),),
            guard=guard,
            guard_flat=self._flatten_guard(guard),
            update=update,
            update_offsets=tuple(
                (self.n_locs + var_idx, incr) for var_idx, incr in update
            ),
            is_round_switch=is_switch,
            source_name=rule.source,
            branch_names=(rule.target,),
            stutter=(not update and target == source and not is_switch),
            lottery=None,
        )

    def _compile_prob(self, rule, automaton) -> ProgramRule:
        branches = tuple(
            (self.loc_index[target], prob) for target, prob in rule.branches
        )
        is_switch = rule.is_dirac and self._is_round_switch(
            automaton, rule.source, rule.branches[0][0]
        )
        guard = self._compile_guard(rule.guard)
        update = self._compile_update(rule.update)
        source = self.loc_index[rule.source]
        return ProgramRule(
            name=rule.name,
            owner="coin",
            source=source,
            branches=branches,
            guard=guard,
            guard_flat=self._flatten_guard(guard),
            update=update,
            update_offsets=tuple(
                (self.n_locs + var_idx, incr) for var_idx, incr in update
            ),
            is_round_switch=is_switch,
            source_name=rule.source,
            branch_names=tuple(target for target, _ in rule.branches),
            stutter=(
                len(branches) == 1
                and not update
                and branches[0][0] == source
                and not is_switch
            ),
            lottery=_lottery(branches) if len(branches) > 1 else None,
        )

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind_rules(
        self, valuation: Mapping[str, int]
    ) -> Tuple[Dict[str, CompiledRule], Tuple[CompiledRule, ...]]:
        """Concrete rules under ``valuation`` (memoised per valuation).

        Returns the ``(by-name dict, ordered tuple)`` pair every
        :class:`~repro.counter.system.CounterSystem` at this valuation
        shares.  The dict preserves model order (process rules first,
        then coin rules) — enumeration order, and therefore BFS
        exploration order downstream, is part of the engine contract.
        """
        key = tuple(sorted(valuation.items()))
        cached = self._bound.get(key)
        if cached is not None:
            return cached
        rule_list = tuple(rule.bind(valuation) for rule in self.rules)
        bound = ({rule.name: rule for rule in rule_list}, rule_list)
        bounded_insert(self._bound, key, bound, self.BOUND_CACHE_CAP)
        return bound

    def batch_plan(self):
        """The shared :class:`~repro.counter.batch.BatchPlan` of this
        program — guard coefficient matrices, atom→rule indicators and
        source-offset vectors over the non-stutter rules, computed once
        per structure (thresholds are bound per valuation by the
        :class:`~repro.counter.batch.BatchExpander`).  ``None`` when
        numpy is unavailable; the import is lazy so the scalar engine
        never pays for it.
        """
        plan = self._batch_plan
        if plan is False:
            from repro.counter.batch import build_plan

            plan = build_plan(self)
            self._batch_plan = plan
        return plan

    def __repr__(self) -> str:
        return (
            f"ProtocolProgram({self.model_name!r}, |L|={self.n_locs}, "
            f"|R|={len(self.rules)})"
        )


def _lottery(branches: Sequence[Tuple[int, Fraction]]) -> Lottery:
    """Cumulative ticket thresholds over the LCM of the denominators.

    With branches 1/2 and 1/3 the lottery runs over 6 tickets: branch
    thresholds (3, 5) and a 1-ticket remainder that falls to the last
    branch — exactly the draw :func:`repro.counter.mdp._sample_branch`
    used to rebuild per step.
    """
    denominator = math.lcm(*(prob.denominator for _target, prob in branches))
    cumulative = 0
    thresholds = []
    for _target, prob in branches:
        cumulative += prob.numerator * (denominator // prob.denominator)
        thresholds.append(cumulative)
    return denominator, tuple(thresholds)


def _start_locations(locations: Sequence[Location]) -> Tuple[Location, ...]:
    borders = tuple(l for l in locations if l.kind is LocKind.BORDER)
    if borders:
        return borders
    return tuple(l for l in locations if l.kind is LocKind.INITIAL)


class ProgramCache:
    """Process-wide cache of compiled programs, keyed structurally.

    Structural keying is what makes sharing effective: registry
    factories build a fresh ``SystemModel`` per call, and the checkers
    additionally apply the single-round transform, so the same protocol
    reaches the engine as many distinct-but-equal instances.  The
    computed key is stashed on the model instance (``_program_key``,
    together with every input it was derived from) so repeated lookups
    through the same object skip the structural walk; a model whose
    ``name``/``environment``/``process``/``coin`` have been
    *reassigned* since fails the identity check and is re-keyed, so it
    cannot silently reuse the stale compiled program.  (The automata
    and environment are themselves immutable once built — tuples and
    frozen dataclasses — so reassignment is the only mutation channel.)
    """

    #: Distinct compiled programs kept alive (entries, FIFO evicted).
    CAP = 64

    def __init__(self) -> None:
        self._programs: Dict[tuple, ProtocolProgram] = {}

    def get(self, model: SystemModel) -> ProtocolProgram:
        stash = model.__dict__.get("_program_key")
        if (
            stash is not None
            and stash[1] == model.name
            and stash[2] is model.environment
            and stash[3] is model.process
            and stash[4] is model.coin
        ):
            key = stash[0]
        else:
            key = program_key(model)
            model.__dict__["_program_key"] = (
                key, model.name, model.environment, model.process, model.coin
            )
        program = self._programs.get(key)
        if program is None:
            program = ProtocolProgram(model, key=key)
            bounded_insert(self._programs, key, program, self.CAP)
        return program

    def __len__(self) -> int:
        return len(self._programs)

    def clear(self) -> None:
        self._programs.clear()


#: The process-wide program cache shared by checkers, sampler, benches.
_PROGRAM_CACHE = ProgramCache()


def shared_program(model: SystemModel) -> ProtocolProgram:
    """The process-wide compiled program for ``model`` (see module doc)."""
    return _PROGRAM_CACHE.get(model)


def clear_program_cache() -> None:
    """Drop every cached program (benchmarks' cold-start path, tests)."""
    _PROGRAM_CACHE.clear()
