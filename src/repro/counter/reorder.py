"""Round-rigid reordering — Theorem 1 as an algorithm.

Theorem 1 of the paper states that every finite schedule applicable to a
configuration can be reordered into a *round-rigid* schedule (actions
sorted by round) that is still applicable and reaches the same final
configuration, and is stutter-equivalent w.r.t. the per-round atomic
propositions.

The constructive argument swaps adjacent actions ``(alpha_k, alpha_j)``
with ``k > j``: an action of round ``j`` only reads round-``j`` state,
which an action of a strictly later round never modifies (round-``k``
actions touch rounds ``k`` and, for round switches, ``k+1``); and the
effects of the round-``j`` action can only *increase* the counters and
variables a later-round action depends on.  A stable sort by round
realizes exactly this sequence of swaps, so :func:`round_rigid_reorder`
is a stable sort — and the property-based tests verify applicability and
final-configuration equality on random schedules.
"""

from __future__ import annotations

from typing import Tuple

from repro.counter.config import Config
from repro.counter.schedule import Schedule, apply_schedule, is_applicable
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError


def round_rigid_reorder(schedule: Schedule) -> Schedule:
    """The round-rigid reordering ``tau'`` of ``tau`` (stable by round)."""
    indexed = list(enumerate(schedule.actions))
    indexed.sort(key=lambda pair: (pair[1].round, pair[0]))
    return Schedule(tuple(action for _idx, action in indexed))


def check_reorder_theorem(
    system: CounterSystem, config: Config, schedule: Schedule
) -> Tuple[Schedule, Config]:
    """Verify Theorem 1 on one instance.

    Reorders ``schedule`` round-rigidly, checks that the result is
    applicable to ``config`` and reaches the same final configuration,
    and returns ``(tau', tau'(config))``.

    Raises:
        SemanticsError: if either guarantee of the theorem fails — which
            would indicate a bug in the semantics, not in the theorem.
    """
    if not is_applicable(system, config, schedule):
        raise SemanticsError("input schedule is not applicable")
    reordered = round_rigid_reorder(schedule)
    if not is_applicable(system, config, reordered):
        raise SemanticsError(
            f"round-rigid reordering is not applicable: {reordered}"
        )
    original_final = apply_schedule(system, config, schedule)
    reordered_final = apply_schedule(system, config, reordered)
    if original_final != reordered_final:
        raise SemanticsError(
            "round-rigid reordering reaches a different configuration"
        )
    return reordered, reordered_final
