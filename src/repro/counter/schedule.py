"""Schedules and paths (§III-D).

A *schedule* is a (finite) sequence of actions; it is applicable to a
configuration when each action is applicable to the configuration
obtained by executing its predecessors.  ``path(c, tau)`` interleaves
the visited configurations with the executed actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.counter.actions import Action
from repro.counter.config import Config
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError


@dataclass(frozen=True)
class Schedule:
    """An immutable finite sequence of actions."""

    actions: Tuple[Action, ...]

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __getitem__(self, index):
        return self.actions[index]

    def rounds_used(self) -> Tuple[int, ...]:
        """Sorted distinct round labels appearing in the schedule."""
        return tuple(sorted({action.round for action in self.actions}))

    def restricted_to_round(self, round_no: int) -> "Schedule":
        """The sub-schedule of actions labelled with ``round_no``."""
        return Schedule(
            tuple(action for action in self.actions if action.round == round_no)
        )

    def is_round_rigid(self) -> bool:
        """True iff round labels are non-decreasing (s0 · s1 · s2 ...)."""
        rounds = [action.round for action in self.actions]
        return all(a <= b for a, b in zip(rounds, rounds[1:]))

    def concat(self, other: "Schedule") -> "Schedule":
        return Schedule(self.actions + other.actions)

    def __str__(self) -> str:
        return " ".join(str(action) for action in self.actions)


@dataclass(frozen=True)
class Path:
    """``path(c0, tau)``: configurations interleaved with actions."""

    configs: Tuple[Config, ...]
    schedule: Schedule

    @property
    def first(self) -> Config:
        return self.configs[0]

    @property
    def last(self) -> Config:
        return self.configs[-1]

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[Config]:
        return iter(self.configs)


def is_applicable(
    system: CounterSystem, config: Config, schedule: Schedule
) -> bool:
    """Is the whole schedule applicable to ``config``?"""
    current = config
    for action in schedule:
        if not system.is_applicable(current, action):
            return False
        current = system.apply(current, action)
    return True


def apply_schedule(
    system: CounterSystem, config: Config, schedule: Schedule
) -> Config:
    """Execute the schedule; raises if some action is inapplicable."""
    current = config
    for action in schedule:
        current = system.apply(current, action)
    return current


def path(system: CounterSystem, config: Config, schedule: Schedule) -> Path:
    """The path visited by executing ``schedule`` from ``config``."""
    configs: List[Config] = [config]
    current = config
    for action in schedule:
        current = system.apply(current, action)
        configs.append(current)
    return Path(tuple(configs), schedule)


def random_schedule(
    system: CounterSystem,
    config: Config,
    rng,
    max_steps: int,
    include_stutters: bool = False,
) -> Schedule:
    """A random applicable schedule of up to ``max_steps`` actions.

    Used by property-based tests (e.g. for Theorem 1) to generate
    arbitrary applicable schedules.
    """
    actions: List[Action] = []
    current = config
    for _ in range(max_steps):
        options = system.enabled_actions(current, include_stutters=include_stutters)
        if not options:
            break
        action = options[rng.randrange(len(options))]
        actions.append(action)
        current = system.apply(current, action)
    return Schedule(tuple(actions))
