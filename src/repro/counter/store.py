"""Persistent cross-process state-graph store for the counter engine.

PR 3 made the in-process caches shareable: one compiled
:class:`~repro.counter.program.ProtocolProgram` per model structure and
one bound :class:`~repro.counter.system.CounterSystem` per valuation,
kept warm across checkers.  This module extends that sharing across
*processes* and across *valuations*:

* :class:`InternTable` — one configuration intern table per compiled
  program, shared by **all** valuations of a protocol.  ``Config``
  tuples are valuation-independent (the flat layout is a property of
  the structure), so interning happens once per structure: two
  valuations that reach the same configuration intern to the same
  object, and cross-valuation sweeps stop re-canonicalising the shared
  prefix of their state spaces.
* :class:`GraphStore` — serialized state graphs keyed by
  ``(program digest, valuation, code version)``, each entry a system's
  warm successor-group/rule-option caches and its explored reach set.
  A sweep worker starting cold loads the graph a previous process
  already expanded and replays every query on memoised successors.

Storage backends
----------------
The store front end is backend-agnostic: raw segment I/O goes through
the :class:`StoreBackend` protocol, with two shipped implementations —

* :class:`LocalDirBackend` (default) — one directory of ``*.graph``
  files, the PR 4 layout; canonical snapshots live at
  ``<key>.graph`` and delta segments at ``<key>~<writer>.graph``.
* :class:`SQLiteBackend` — a single-file shared graph corpus
  (``sqlite:<path>``): one ``segments`` table in WAL mode with a busy
  timeout and a locked/busy retry loop, so a whole sweep fleet can
  append to and read one corpus concurrently.

Both speak the same entry contract (header line with identity fields +
body sha256 checksum, pickled int-tuple payload loaded through a
class-refusing restricted unpickler), so entries are byte-compatible
across backends.  :func:`as_backend` resolves a spec — a directory
path, a ``sqlite:`` URI, or a ready backend instance.

Delta segments
--------------
Flushes append **delta segments** instead of rewriting whole-graph
snapshots: each flush serializes only the cache entries grown since the
last flush/load of the same system, keyed off the PR 4
``(cache epoch, succ entries, option entries)`` triple
(:meth:`~repro.counter.system.CounterSystem.cache_state`).  A
destructive cache event (FIFO eviction, intern-table generation reset)
bumps the epoch and degrades the next flush to a full segment — never
to a lost delta.  Loads merge every segment for a key (union of
entries; memoised expansions of one configuration are identical in
every segment, so merge order cannot change results).
:func:`compact_backend` — surfaced as ``harness cache compact`` —
squashes a key's segments into one canonical snapshot and drops
checksum-corrupt segments along the way.

Durability contract (mirrors :class:`~repro.api.sweep.ResultCache`):

* directory-backend writes go to a **unique per-writer temp file**
  (``<name>.<pid>.<token>.tmp``) followed by an atomic
  :meth:`~pathlib.Path.replace`; SQLite writes are single transactions
  — either way concurrent writers of one key interleave freely and
  readers only ever see complete segments;
* all I/O is **best-effort** — a missing, truncated, hand-edited or
  stale entry (or a full disk / locked-out database) is a cold miss
  recorded on the store, never a crash; entries carry a body checksum
  so accidental corruption is detected rather than deserialized, and
  payloads load through a restricted unpickler that refuses every
  class lookup, so a crafted pickle cannot execute code;
* temp-file orphans from crashed writers are pruned on directory-
  backend init (SQLite needs no temp files).

Threat model: the store (directory or database file) is *trusted
input*, like any local cache.  The checksum and unpickler close the
accident and code-execution holes, but an internally-consistent forged
entry (valid checksum over wrong successor ids) would be replayed as-is
— do not point the store at storage writable by parties you would not
let edit your results.

Loading is results-neutral by construction: a stored graph is exactly
the memoised successor structure a cold expansion produces, so
warm-from-disk verdicts and ``states_explored`` are bit-identical to
cold runs.  Entries are keyed by :func:`~repro.version.code_version`,
so any engine change degrades the whole store to cold misses instead
of replaying stale semantics.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import pickle
import random
import sqlite3
import time
import uuid
import weakref
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.counter.actions import Action
from repro.counter.config import Config
from repro.testing import faults
from repro.version import code_version, stable_digest

__all__ = [
    "GraphStore",
    "InternTable",
    "LocalDirBackend",
    "SQLiteBackend",
    "StoreBackend",
    "activate_graph_store",
    "active_graph_store",
    "as_backend",
    "compact_backend",
    "deactivate_graph_store",
    "program_digest",
    "prune_stale_temp_files",
    "unique_temp_path",
    "valuation_digest",
]

#: Temp files older than this are crashed-writer orphans; live writers
#: hold a temp file for milliseconds (one serialized entry write).
STALE_TEMP_SECONDS = 600.0

#: Failures any backend operation may raise; everything the best-effort
#: store layer swallows and records.
BACKEND_ERRORS = (OSError, sqlite3.Error)


# ----------------------------------------------------------------------
# Shared durability helpers (used by ResultCache too)
# ----------------------------------------------------------------------
def unique_temp_path(path: Path) -> Path:
    """A collision-free sibling temp path for atomically replacing ``path``.

    ``<name>.<pid>.<token>.tmp`` — the pid separates concurrent
    processes, the random token separates writers inside one process
    (two pool workers finishing the same uncached key must never
    truncate each other's half-written blob before the atomic rename).
    """
    token = uuid.uuid4().hex[:8]
    return path.with_name(f"{path.name}.{os.getpid()}.{token}.tmp")


def prune_stale_temp_files(
    root: Path, stale_seconds: float = STALE_TEMP_SECONDS
) -> int:
    """Remove crashed-writer ``*.tmp`` orphans under ``root``.

    Only temp files whose mtime is older than ``stale_seconds`` go (a
    concurrent writer's live temp file must survive); with
    ``stale_seconds <= 0`` every temp file goes (explicit prune/clear).
    Best-effort: unlink races and permission errors are ignored.
    Returns the number of files removed.
    """
    removed = 0
    now = time.time()
    try:
        candidates = list(root.glob("*.tmp"))
    except OSError:
        return 0
    for path in candidates:
        try:
            if stale_seconds > 0 and now - path.stat().st_mtime < stale_seconds:
                continue
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


# ----------------------------------------------------------------------
# Per-program intern table (shared across valuations)
# ----------------------------------------------------------------------
class InternTable:
    """One configuration intern table shared by a program's systems.

    :class:`~repro.counter.config.Config` cells are counters and
    variable values — never parameters — and the flat layout geometry is
    owned by the structure-level program, so configurations are
    *valuation-independent* values.  Holding the table on the program
    therefore lets every :class:`~repro.counter.system.CounterSystem`
    bound to it (one per valuation) intern into the same dict.

    The generation reset of the old per-system table carries over: when
    the table reaches its cap it is dropped wholesale, together with
    the successor/option caches of every registered dependent system —
    those caches hold interned configs and must not outlive the table
    that canonicalised them.  Dependents are tracked weakly so the
    program-lifetime table never pins evicted systems.
    """

    #: Bound on the table; far above any max_states budget a checker
    #: uses, so only open-ended workloads (sampling) recycle.
    CAP = 1 << 21

    __slots__ = ("table", "_dependents")

    def __init__(self) -> None:
        self.table: Dict[Config, Config] = {}
        self._dependents: "weakref.WeakSet" = weakref.WeakSet()

    def register(self, system) -> None:
        """Track a system whose caches must drop on generation reset."""
        self._dependents.add(system)

    def reset(self) -> None:
        """Drop the table and every dependent's derived caches together.

        Bumps each dependent's cache epoch: a reset changes cache
        *contents* without necessarily changing their lengths, and the
        store's delta/skip flush bookkeeping keys on ``(epoch,
        lengths)`` to stay sound across it.
        """
        self.table.clear()
        for system in self._dependents:
            system._succ_cache.clear()
            system._options_cache.clear()
            system._cache_epoch += 1

    def __len__(self) -> int:
        return len(self.table)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
def program_digest(program) -> str:
    """Cross-process digest of a compiled program's structural key.

    ``program.key`` is a tuple of hashable value types with
    deterministic reprs (frozen dataclasses, enums, tuples, strings,
    ``Fraction``), so hashing its repr is stable across processes and
    ``PYTHONHASHSEED`` values — unlike ``hash()``, which is salted.
    """
    return stable_digest(repr(program.key), 16)


def valuation_digest(valuation: Mapping[str, int]) -> str:
    """Deterministic digest of one parameter valuation."""
    return stable_digest(repr(tuple(sorted(valuation.items()))), 12)


def _slug(name: str) -> str:
    """Filename-safe component (no ``-`` — it separates the key parts)."""
    return "".join(c if c.isalnum() else "_" for c in name) or "model"


def key_version(key: str) -> Optional[str]:
    """The code-version component of an entry key.

    Keys are ``<slug>-<program>-<valuation>-<version>``; every
    component is slugged (no ``-`` inside), so the version is the last
    dash-separated part.
    """
    parts = key.rsplit("-", 3)
    return parts[3] if len(parts) == 4 else None


class _SafeUnpickler(pickle.Unpickler):
    """An unpickler that refuses every class/callable lookup.

    Graph payloads are plain containers of ints — tuples, lists, dicts,
    strings — which pickle reconstructs without ever resolving a
    global.  Rejecting ``find_class`` outright therefore costs nothing
    and closes the classic pickle code-execution hole: a hand-crafted
    entry whose payload smuggles a ``GLOBAL``/``STACK_GLOBAL`` opcode
    raises here, is caught by :meth:`GraphStore.load_into`, and
    degrades to the documented cold miss.
    """

    def find_class(self, module, name):
        raise pickle.UnpicklingError(
            f"graph payloads contain no classes (refusing {module}.{name})"
        )


def _safe_loads(body: bytes):
    return _SafeUnpickler(io.BytesIO(body)).load()


# ----------------------------------------------------------------------
# Storage backends
# ----------------------------------------------------------------------
class StoreBackend:
    """Raw segment storage under the :class:`GraphStore` front end.

    A backend stores opaque byte blobs (*segments*) under string keys
    and never interprets them — the header/checksum/unpickler contract
    lives in :class:`GraphStore`.  Implementations must tolerate
    concurrent writers (unique temp files + atomic rename, or
    transactions) and may raise any of :data:`BACKEND_ERRORS`; the
    store layer turns those into recorded cold misses.

    ``spec`` is the canonical string form (:func:`as_backend` round-
    trips it), which is what the sweep runner ships to pool workers.
    """

    spec: str

    def read_segments(self, key: str) -> List[Tuple[object, bytes]]:
        """All segments for ``key``, oldest first, as (token, blob).

        Tokens identify segments to :meth:`write_canonical`'s ``drop``
        — a file path for directories, a rowid for SQLite.
        """
        raise NotImplementedError

    def append_segment(self, key: str, blob: bytes) -> None:
        """Durably add one segment for ``key`` (never replaces)."""
        raise NotImplementedError

    def write_canonical(self, key: str, blob: bytes, drop=()) -> None:
        """Publish ``blob`` as the canonical segment for ``key``.

        ``drop`` names the segment tokens this blob supersedes
        (``None`` = every current segment).  Segments appended by a
        concurrent writer *after* the caller read its tokens must
        survive — that is what lets compaction run under live writers.
        """
        raise NotImplementedError

    def segment_heads(self, key: str) -> List[bytes]:
        """The header-line prefix of each of ``key``'s segments.

        Cheap (no payloads): the store dedups no-baseline full-segment
        flushes against the body checksums already on storage.
        """
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All keys with at least one segment, sorted."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-key ``(segment count, total bytes)``."""
        raise NotImplementedError

    def delete_key(self, key: str) -> int:
        """Drop every segment of ``key``; returns segments removed."""
        raise NotImplementedError

    def clear(self) -> int:
        """Drop everything; returns segments removed."""
        raise NotImplementedError

    def close(self) -> None:
        """Release handles; every operation may lazily reopen."""


class LocalDirBackend(StoreBackend):
    """The default backend: one directory of ``*.graph`` files.

    Canonical snapshots (compaction output, PR 4 entries) live at
    ``<key>.graph``; delta segments at ``<key>~<pid>_<token>.graph`` —
    the ``~`` suffix is writer-unique, so any number of processes can
    append segments for one key without ever racing on a file name.
    Writes are a unique temp file plus an atomic rename; stale temp
    orphans are pruned on init.
    """

    #: Process-wide segment sequence (shared by every instance): makes
    #: one process's segments sort in append order whatever store
    #: object wrote them (cross-process order is irrelevant — merges
    #: are unions of identical memoised expansions).
    _SEQUENCE = itertools.count()

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        prune_stale_temp_files(self.root)

    @property
    def spec(self) -> str:
        return str(self.root)

    def canonical_path(self, key: str) -> Path:
        return self.root / f"{key}.graph"

    def _segment_paths(self, key: str) -> List[Path]:
        paths = []
        canonical = self.canonical_path(key)
        if canonical.exists():
            paths.append(canonical)
        paths.extend(sorted(self.root.glob(f"{key}~*.graph")))
        return paths

    def read_segments(self, key: str) -> List[Tuple[object, bytes]]:
        out = []
        for path in self._segment_paths(key):
            try:
                out.append((path, path.read_bytes()))
            except FileNotFoundError:
                continue  # lost a race with compaction/prune: data moved
        return out

    def append_segment(self, key: str, blob: bytes) -> None:
        token = uuid.uuid4().hex[:8]
        path = self.root / (
            f"{key}~{os.getpid()}_{next(self._SEQUENCE):06d}_{token}.graph"
        )
        self._publish(path, blob)

    def write_canonical(self, key: str, blob: bytes, drop=()) -> None:
        path = self.canonical_path(key)
        self._publish(path, blob)
        doomed = self._segment_paths(key) if drop is None else list(drop)
        for stale in doomed:
            stale = Path(stale)
            if stale == path:
                continue
            try:
                stale.unlink()
            except OSError:
                continue

    @staticmethod
    def _publish(path: Path, blob: bytes) -> None:
        tmp = unique_temp_path(path)
        try:
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def segment_heads(self, key: str) -> List[bytes]:
        heads = []
        for path in self._segment_paths(key):
            try:
                with open(path, "rb") as handle:
                    heads.append(handle.readline(65536))
            except OSError:
                continue
        return heads

    def _key_of(self, path: Path) -> str:
        return path.stem.split("~", 1)[0]

    def keys(self) -> List[str]:
        try:
            return sorted({self._key_of(p) for p in self.root.glob("*.graph")})
        except OSError:
            return []

    def stats(self) -> Dict[str, Tuple[int, int]]:
        out: Dict[str, List[int]] = {}
        try:
            paths = list(self.root.glob("*.graph"))
        except OSError:
            return {}
        for path in paths:
            try:
                size = path.stat().st_size
            except OSError:
                continue
            record = out.setdefault(self._key_of(path), [0, 0])
            record[0] += 1
            record[1] += size
        return {key: (count, size) for key, (count, size) in out.items()}

    def delete_key(self, key: str) -> int:
        removed = 0
        for path in self._segment_paths(key):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def clear(self) -> int:
        removed = 0
        for key in self.keys():
            removed += self.delete_key(key)
        prune_stale_temp_files(self.root, stale_seconds=0)
        return removed


class SQLiteBackend(StoreBackend):
    """A single-file shared graph corpus (``sqlite:<path>``).

    One ``segments`` table holds every (key, blob) pair; appends are
    single-statement transactions and compaction is one ``BEGIN
    IMMEDIATE`` transaction, so readers never observe torn segments.
    WAL journaling lets a fleet of sweep workers read while one writes;
    a busy timeout plus a short locked/busy retry loop absorbs writer
    contention.  Connections are opened lazily per process — a forked
    pool worker abandons (never closes) an inherited handle, so it can
    never release locks its parent still holds.
    """

    BUSY_TIMEOUT_MS = 5000
    RETRIES = 5
    #: Locked/busy backoff: ``RETRY_BASE_DELAY * 2**attempt`` seconds,
    #: capped at ``RETRY_MAX_DELAY``, then jittered by up to
    #: ``±RETRY_JITTER`` (a fraction of the delay).  Without jitter a
    #: contending fleet's writers back off in lockstep and re-collide
    #: on every round; decorrelating the sleeps lets one writer win
    #: each window.
    RETRY_BASE_DELAY = 0.02
    RETRY_MAX_DELAY = 0.5
    RETRY_JITTER = 0.5

    #: Connections inherited across fork are parked here forever:
    #: merely unbinding them would let the Connection finalizer run
    #: ``sqlite3_close`` in the child — which SQLite documents as
    #: unsafe for a handle the parent still uses (a close-after-fork
    #: can checkpoint the WAL out from under the parent's writes).
    #: One entry per (backend, fork), so the leak is bounded and tiny.
    _FORK_GRAVEYARD: List[sqlite3.Connection] = []

    def __init__(self, path):
        self.path = str(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def _disown(self) -> None:
        """Drop the handle without ever letting its finalizer close it."""
        if self._conn is not None and self._conn_pid != os.getpid():
            self._FORK_GRAVEYARD.append(self._conn)
        self._conn = None
        self._conn_pid = None

    @property
    def spec(self) -> str:
        return f"sqlite:{self.path}"

    @classmethod
    def probe(cls, path) -> Optional[bool]:
        """Is ``path`` a graph corpus?  Strictly read-only.

        Opens the file with ``mode=ro`` (no table/index creation, no
        journal-mode switch) and answers True when a ``segments``
        table exists, False when the database lacks one (a foreign
        application database maintenance must not touch), and None
        when the file is unreadable or not SQLite at all.
        """
        try:
            conn = sqlite3.connect(f"file:{Path(path)}?mode=ro", uri=True)
        except sqlite3.Error:
            return None
        try:
            row = conn.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name = 'segments'"
            ).fetchone()
            return row is not None
        except sqlite3.Error:
            return None
        finally:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    # -- connection management ----------------------------------------
    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            # Abandon (do not close, do not finalize) a handle
            # inherited across fork.
            self._disown()
            parent = Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=self.BUSY_TIMEOUT_MS / 1000.0,
                isolation_level=None,
            )
            conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
            try:
                conn.execute("PRAGMA journal_mode=WAL")
            except sqlite3.Error:
                pass  # e.g. network filesystems: rollback journal is fine
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS segments ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " key TEXT NOT NULL,"
                " blob BLOB NOT NULL,"
                " created REAL NOT NULL)"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS segments_key ON segments(key)"
            )
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    def _retry(self, operation):
        """Run ``operation(conn)``, retrying on locked/busy contention."""
        last: Optional[sqlite3.OperationalError] = None
        for attempt in range(self.RETRIES):
            conn = self._connection()
            try:
                return operation(conn)
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                last = exc
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                if attempt < self.RETRIES - 1:
                    time.sleep(self._retry_delay(attempt))
        raise last  # type: ignore[misc]  # loop ran >= once

    def _retry_delay(self, attempt: int) -> float:
        """Capped exponential backoff, decorrelated per process.

        ``random.random()`` (seeded per process) supplies the jitter:
        the whole point is that *different* workers sleep differently,
        and graph-store I/O is results-neutral, so this randomness can
        never reach a verdict.
        """
        raw = min(self.RETRY_MAX_DELAY,
                  self.RETRY_BASE_DELAY * (2 ** attempt))
        spread = raw * self.RETRY_JITTER
        return raw - spread + random.random() * 2.0 * spread

    # -- StoreBackend -------------------------------------------------
    def read_segments(self, key: str) -> List[Tuple[object, bytes]]:
        def go(conn):
            rows = conn.execute(
                "SELECT id, blob FROM segments WHERE key = ? ORDER BY id",
                (key,),
            ).fetchall()
            return [(row[0], bytes(row[1])) for row in rows]

        return self._retry(go)

    def append_segment(self, key: str, blob: bytes) -> None:
        def go(conn):
            conn.execute(
                "INSERT INTO segments(key, blob, created) VALUES (?, ?, ?)",
                (key, sqlite3.Binary(blob), time.time()),
            )

        self._retry(go)

    def write_canonical(self, key: str, blob: bytes, drop=()) -> None:
        def go(conn):
            conn.execute("BEGIN IMMEDIATE")
            try:
                if drop is None:
                    conn.execute("DELETE FROM segments WHERE key = ?", (key,))
                elif drop:
                    marks = ",".join("?" * len(drop))
                    conn.execute(
                        f"DELETE FROM segments WHERE key = ? AND id IN ({marks})",
                        (key, *drop),
                    )
                conn.execute(
                    "INSERT INTO segments(key, blob, created) VALUES (?, ?, ?)",
                    (key, sqlite3.Binary(blob), time.time()),
                )
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise

        self._retry(go)

    def keys(self) -> List[str]:
        def go(conn):
            rows = conn.execute(
                "SELECT DISTINCT key FROM segments ORDER BY key"
            ).fetchall()
            return [row[0] for row in rows]

        return self._retry(go)

    def head(self, key: str, size: int = 65536) -> Optional[bytes]:
        """First ``size`` bytes of the key's oldest segment, or None.

        Enough for the header line; the maintenance CLI summarises a
        fleet-sized corpus without materialising whole blobs.
        """
        def go(conn):
            row = conn.execute(
                "SELECT substr(blob, 1, ?) FROM segments WHERE key = ? "
                "ORDER BY id LIMIT 1",
                (size, key),
            ).fetchone()
            return bytes(row[0]) if row is not None else None

        return self._retry(go)

    def segment_heads(self, key: str) -> List[bytes]:
        def go(conn):
            rows = conn.execute(
                "SELECT substr(blob, 1, 65536) FROM segments "
                "WHERE key = ? ORDER BY id",
                (key,),
            ).fetchall()
            return [bytes(row[0]) for row in rows]

        return self._retry(go)

    def stats(self) -> Dict[str, Tuple[int, int]]:
        def go(conn):
            rows = conn.execute(
                "SELECT key, COUNT(*), COALESCE(SUM(LENGTH(blob)), 0) "
                "FROM segments GROUP BY key"
            ).fetchall()
            return {row[0]: (row[1], row[2]) for row in rows}

        return self._retry(go)

    def delete_key(self, key: str) -> int:
        def go(conn):
            return conn.execute(
                "DELETE FROM segments WHERE key = ?", (key,)
            ).rowcount

        return self._retry(go)

    def clear(self) -> int:
        def go(conn):
            return conn.execute("DELETE FROM segments").rowcount

        return self._retry(go)

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
            self._conn_pid = None
        else:
            self._disown()


def as_backend(spec) -> StoreBackend:
    """Resolve a store spec into a backend instance.

    Accepts a ready :class:`StoreBackend`, a ``sqlite:<path>`` URI
    (``sqlite://<path>`` tolerated), or anything else as a local
    directory path.  The result's ``spec`` attribute round-trips, which
    is how the sweep runner ships the store to pool workers.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = str(spec)
    if text.startswith("sqlite:"):
        rest = text[len("sqlite:"):]
        if rest.startswith("//"):
            rest = rest[2:]
        return SQLiteBackend(rest)
    return LocalDirBackend(text)


# ----------------------------------------------------------------------
# The store front end
# ----------------------------------------------------------------------
class GraphStore:
    """Serialized state graphs, keyed by
    ``(program digest, valuation, code version)``, on a pluggable
    backend.

    Entry keys are ``<slug>-<program>-<valuation>-<version>`` — every
    identity component slugged into the key, whatever the backend.
    Each segment is one header line — ``repro-graph <format> <json>``
    with the identity fields, entry counts and a body checksum —
    followed by a pickled payload of plain int tuples: the config
    universe (flat cell tuples) and the successor/option caches as
    indices into it.  Successor groups are stored as ``(rule index,
    round, successor ids)``; actions are *rebuilt* from the program's
    rule list on load, so a payload can never inject structure that the
    current code version would not itself produce.

    Flushes append deltas (only entries grown since the last flush/load
    of the same system — the PR 4 epoch triple tracks destructive cache
    events and degrades the next flush to a full segment);
    ``snapshot_mode=True`` restores the PR 4 whole-graph-replace
    behaviour, kept for the benchmark's bytes-written comparison.

    All methods are best-effort: any backend failure (and, on the read
    side, any parse error) is swallowed, counted, and treated as a
    cold miss.  ``last_error`` keeps the most recent failure for
    diagnostics.
    """

    FORMAT = 1
    MAGIC = "repro-graph"

    def __init__(self, store, version: Optional[str] = None,
                 snapshot_mode: bool = False):
        self.backend = as_backend(store)
        #: Back-compat convenience: the directory of a local backend.
        self.root = getattr(self.backend, "root", None)
        self.version = version if version is not None else code_version()
        self.snapshot_mode = snapshot_mode
        #: key -> (system weakref, epoch, succ entries, option entries)
        #: at the last flush/load.  The weakref scopes the baseline to
        #: one system instance: a *different* system under the same key
        #: (cache eviction + rebirth) starts from a full segment, never
        #: from a baseline measured on someone else's caches.  The
        #: epoch component keeps the delta sound across FIFO evictions
        #: and intern-table generation resets, which change cache
        #: *contents* at coinciding lengths.
        self._flushed: Dict[str, Tuple] = {}
        #: Systems served to this process while this store was active —
        #: the only ones :meth:`flush_adopted` persists.  Tracked
        #: weakly: flushing must never pin an evicted system, and
        #: systems this run never touched (warm leftovers of earlier
        #: unrelated runs) must never leak into this store.
        self._adopted: "weakref.WeakSet" = weakref.WeakSet()
        self.load_hits = 0
        self.load_misses = 0
        self.saves = 0
        self.errors = 0
        #: Total serialized bytes handed to the backend (bench metric:
        #: delta flushes vs whole-graph snapshots).
        self.bytes_written = 0
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, system) -> str:
        program = system.program
        return (
            f"{_slug(program.model_name)}-{program_digest(program)}-"
            f"{valuation_digest(system.valuation)}-{_slug(self.version)}"
        )

    def path_for(self, system) -> Path:
        """The canonical entry path (local directory backends only)."""
        return self.backend.canonical_path(self.key_for(system))

    # ------------------------------------------------------------------
    # Adoption (which systems belong to this store's run)
    # ------------------------------------------------------------------
    def adopt(self, system) -> None:
        """Mark ``system`` as used under this store (flush candidate)."""
        self._adopted.add(system)

    def flush_adopted(self) -> int:
        """Flush every adopted system; returns the entries written."""
        return sum(1 for system in list(self._adopted) if self.flush(system))

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def flush(self, system) -> bool:
        """Persist what ``system``'s graph grew since its last flush.

        Returns True when a segment was written.  Never raises: a disk
        failure marks the store errored and the caller moves on — the
        store is an optimization, not a dependency.

        A delta baseline only applies when it was measured on the same
        system instance at the same cache epoch; anything else (first
        flush, reborn system under the same key, FIFO eviction,
        generation reset) serializes the full graph — duplicated
        entries across segments merge away on load and at compaction,
        lost deltas would not.
        """
        key = self.key_for(system)
        epoch, n_succ, n_options = system.cache_state()
        if (n_succ, n_options) == (0, 0):
            return False
        record = self._flushed.get(key)
        fresh = (
            record is not None
            and record[0]() is system
            and record[1] == epoch
        )
        if fresh and record[2:] == (n_succ, n_options):
            return False  # unchanged since the last flush/load
        start_succ, start_options = (
            record[2:]
            if fresh and not self.snapshot_mode
            and record[2] <= n_succ and record[3] <= n_options
            else (0, 0)
        )
        try:
            blob = self._serialize(system, start_succ, start_options)
        except Exception as exc:  # noqa: BLE001 — never kill the caller
            self._record(exc)
            return False
        # Chaos hook: a "corrupt" rule flips a byte of what lands on
        # storage, so the next load sees a real checksum mismatch.
        blob = faults.transform("graph_store.flush", key, blob)
        if (
            not self.snapshot_mode
            and (start_succ, start_options) == (0, 0)
            and self._already_stored(key, blob)
        ):
            # A byte-identical body is already on storage — typical
            # when a warm system meets a freshly activated store over
            # a corpus its previous activation wrote.  Establish the
            # baseline (everything serialized here IS persisted) and
            # write nothing: repeated activations must not grow the
            # store by one duplicate snapshot each.
            self._flushed[key] = (
                weakref.ref(system), epoch, n_succ, n_options)
            return False
        try:
            # Chaos hook inside the guard: an injected OSError takes the
            # exact recorded-error path a real disk failure would.
            faults.fire("graph_store.flush", key)
            if self.snapshot_mode:
                self.backend.write_canonical(key, blob, drop=None)
            else:
                self.backend.append_segment(key, blob)
        except BACKEND_ERRORS as exc:
            self._record(exc)
            return False
        self._flushed[key] = (weakref.ref(system), epoch, n_succ, n_options)
        self.saves += 1
        self.bytes_written += len(blob)
        return True

    def _already_stored(self, key: str, blob: bytes) -> bool:
        """Is this full segment's content already covered by the key?

        Fast path: some stored segment carries the identical body
        checksum (header reads only).  Slow path: the stored segments'
        *union* covers every entry of our payload — the full+delta
        shape a previous activation left behind.  Best-effort
        throughout (any failure means "append anyway"); only consulted
        for no-baseline full segments, so the reads happen at most
        once per key per store lifetime.
        """
        try:
            heads = self.backend.segment_heads(key)
        except BACKEND_ERRORS:
            return False
        if not heads:
            return False
        try:
            header, body = self.parse_entry(blob)
        except Exception:  # noqa: BLE001 — our own blob; be safe anyway
            return False
        body_sha = header.get("body_sha256")
        for head in heads:
            described = self.describe_blob(head)
            if described is not None and \
                    described.get("body_sha256") == body_sha:
                return True
        try:
            stored = _entry_maps()
            for _token, raw in self.backend.read_segments(key):
                seg_header, seg_body = self.parse_entry(raw)
                if hashlib.sha256(seg_body).hexdigest() != \
                        seg_header.get("body_sha256"):
                    raise ValueError("stored segment checksum mismatch")
                _accumulate_entries(stored, _safe_loads(seg_body))
            ours = _entry_maps()
            _accumulate_entries(ours, _safe_loads(body))
        except Exception:  # noqa: BLE001 — unreadable key: append
            return False
        return _entries_covered(stored, ours)

    def _serialize(self, system, start_succ: int = 0,
                   start_options: int = 0) -> bytes:
        program = system.program
        rule_index = {
            rule.name: index for index, rule in enumerate(system._rule_list)
        }
        config_ids: Dict[Config, int] = {}

        def cid(config: Config) -> int:
            known = config_ids.get(config)
            if known is None:
                known = len(config_ids)
                config_ids[config] = known
            return known

        # Dict iteration is insertion-ordered, so the entries grown
        # since the baseline are exactly the tail past it (a cache that
        # shrank or churned bumped its epoch, which reset the baseline).
        succ: List[tuple] = []
        for config, groups in itertools.islice(
            system._succ_cache.items(), start_succ, None
        ):
            encoded = []
            for group in groups:
                action = group[0][0]
                encoded.append((
                    rule_index[action.rule],
                    action.round,
                    tuple(cid(successor) for _action, successor in group),
                ))
            succ.append((cid(config), tuple(encoded)))
        options: List[tuple] = []
        for config, actions in itertools.islice(
            system._options_cache.items(), start_options, None
        ):
            options.append((
                cid(config),
                tuple((rule_index[a.rule], a.round) for a in actions),
            ))
        payload = {
            "configs": tuple(c.data for c in config_ids),
            "succ": tuple(succ),
            "options": tuple(options),
        }
        header = {
            "model": program.model_name,
            "program": program_digest(program),
            "valuation": sorted(system.valuation.items()),
            "code_version": self.version,
            "block": program.block,
            "segment": [start_succ, start_options],
        }
        return encode_entry(header, payload)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load_into(self, system) -> bool:
        """Warm ``system``'s caches from storage; False is a cold miss.

        Reads and merges *every* segment of the entry key: each segment
        is validated (header identity — program digest, valuation, code
        version, layout geometry — and body checksum) before
        deserializing through the class-refusing unpickler, and every
        action is rebuilt from the *current* bound rule list.  One
        stale, truncated or corrupted segment degrades the whole key to
        a cold miss (``cache compact`` repairs such keys by dropping
        the bad segment) instead of crashing or replaying stale
        semantics (see the module doc for the trusted-storage threat
        model).
        """
        key = self.key_for(system)
        try:
            faults.fire("graph_store.load", key)
            segments = self.backend.read_segments(key)
        except BACKEND_ERRORS as exc:
            self._record(exc)
            self.load_misses += 1
            return False
        if not segments:
            self.load_misses += 1
            return False
        try:
            for _token, raw in segments:
                header, body = self.parse_entry(raw)
                self._check_header(header, system, body)
                payload = _safe_loads(body)
                counts = self._rebuild(system, payload, header)
        except Exception as exc:  # noqa: BLE001 — bad entry == cold miss
            # A partially-rebuilt cache would be correct but the entry
            # is untrusted now; drop everything this load touched.
            system._succ_cache.clear()
            system._options_cache.clear()
            self._flushed.pop(key, None)
            self._record(exc)
            self.load_misses += 1
            return False
        self._flushed[key] = (
            weakref.ref(system), system._cache_epoch) + counts
        self.load_hits += 1
        return True

    @classmethod
    def parse_entry(cls, raw: bytes) -> Tuple[dict, bytes]:
        """Split one segment into (header dict, body bytes) or raise."""
        head, sep, body = raw.partition(b"\n")
        if not sep:
            raise ValueError("truncated graph entry (no header line)")
        magic, fmt, header_json = head.decode().split(" ", 2)
        if magic != cls.MAGIC or int(fmt) != cls.FORMAT:
            raise ValueError(f"unknown graph format {magic!r} v{fmt}")
        return json.loads(header_json), body

    def _check_header(self, header: dict, system, body: bytes) -> None:
        expect = {
            "program": program_digest(system.program),
            "valuation": [list(kv) for kv in sorted(system.valuation.items())],
            "code_version": self.version,
            "block": system.program.block,
        }
        for key, want in expect.items():
            if header.get(key) != want:
                raise ValueError(
                    f"graph header mismatch on {key!r}: "
                    f"{header.get(key)!r} != {want!r}"
                )
        if hashlib.sha256(body).hexdigest() != header.get("body_sha256"):
            raise ValueError("graph body checksum mismatch")

    def _rebuild(self, system, payload: dict, header: dict) -> Tuple[int, int]:
        program = system.program
        width_kappa, width_g, block = program.n_locs, program.n_vars, program.block
        configs = []
        for data in payload["configs"]:
            if len(data) % block:
                raise ValueError("config cell count not a multiple of the block")
            configs.append(system.intern(Config.from_flat(
                tuple(data), width_kappa, width_g, len(data) // block
            )))
        rules = system._rule_list
        succ_cache = system._succ_cache
        for config_id, groups in payload["succ"]:
            rebuilt = []
            for rule_id, round_no, successor_ids in groups:
                rule = rules[rule_id]
                if rule.is_dirac:
                    (successor_id,) = successor_ids
                    rebuilt.append((
                        (Action(rule.name, round_no), configs[successor_id]),
                    ))
                else:
                    if len(successor_ids) != len(rule.branch_names):
                        raise ValueError("branch count mismatch")
                    rebuilt.append(tuple(
                        (Action(rule.name, round_no, name), configs[sid])
                        for name, sid in zip(rule.branch_names, successor_ids)
                    ))
            succ_cache[configs[config_id]] = tuple(rebuilt)
        options_cache = system._options_cache
        for config_id, pairs in payload["options"]:
            options_cache[configs[config_id]] = tuple(
                Action(rules[rule_id].name, round_no)
                for rule_id, round_no in pairs
            )
        if (
            len(payload["configs"]) != header["configs"]
            or len(payload["succ"]) != header["succ"]
            or len(payload["options"]) != header["options"]
        ):
            raise ValueError("entry count mismatch")
        return len(succ_cache), len(options_cache)

    # ------------------------------------------------------------------
    # Maintenance (the ``harness cache`` CLI)
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Squash every key's segments into one canonical snapshot."""
        return compact_backend(self.backend)

    def close(self) -> None:
        """Release backend handles (safe: operations lazily reopen)."""
        try:
            self.backend.close()
        except BACKEND_ERRORS as exc:
            self._record(exc)

    @staticmethod
    def entries(root) -> List[Path]:
        try:
            return sorted(Path(root).glob("*.graph"))
        except OSError:
            return []

    @classmethod
    def entry_version(cls, path: Path) -> Optional[str]:
        """The code-version component of an entry's file name.

        Delta segments carry a ``~<writer>`` suffix after the key; it
        is stripped before the key parse.
        """
        return key_version(Path(path).stem.split("~", 1)[0])

    @classmethod
    def describe(cls, path: Path) -> Optional[dict]:
        """An entry's header dict, or None when unreadable/corrupt.

        Validates the shape the maintenance CLI consumes (a dict whose
        ``valuation`` is key/value pairs and whose counts are ints), so
        a hand-edited header line can never crash ``cache info``.
        """
        try:
            with open(path, "rb") as handle:
                head = handle.readline()
            return cls.describe_blob(head)
        except (OSError, ValueError, TypeError, UnicodeDecodeError):
            return None

    @classmethod
    def describe_blob(cls, raw: bytes) -> Optional[dict]:
        """Like :meth:`describe` for an in-memory segment (SQLite rows)."""
        try:
            head = raw.partition(b"\n")[0]
            magic, fmt, header_json = head.decode().split(" ", 2)
            if magic != cls.MAGIC or int(fmt) != cls.FORMAT:
                return None
            header = json.loads(header_json)
            if not isinstance(header, dict):
                return None
            header["valuation"] = dict(header.get("valuation") or ())
            for field in ("configs", "succ", "options"):
                if not isinstance(header.get(field), int):
                    return None
            if not isinstance(header.get("model"), str):
                return None
            return header
        except (ValueError, TypeError, UnicodeDecodeError):
            return None

    def _record(self, exc: BaseException) -> None:
        self.errors += 1
        self.last_error = exc


# ----------------------------------------------------------------------
# Entry encoding / compaction (payload-level, no model required)
# ----------------------------------------------------------------------
def encode_entry(header_core: dict, payload: dict) -> bytes:
    """Serialize one segment: header line + checksummed pickled payload."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = dict(header_core)
    header["configs"] = len(payload["configs"])
    header["succ"] = len(payload["succ"])
    header["options"] = len(payload["options"])
    header["body_sha256"] = hashlib.sha256(body).hexdigest()
    head = (
        f"{GraphStore.MAGIC} {GraphStore.FORMAT} "
        f"{json.dumps(header, sort_keys=True)}\n"
    )
    return head.encode() + body


#: Header fields every segment of one key must agree on to be merged.
_IDENTITY_FIELDS = ("model", "program", "valuation", "code_version", "block")


def _entry_maps() -> dict:
    """Payload entries keyed by config *data* (id-free, comparable)."""
    return {"succ": {}, "options": {}}


def _accumulate_entries(maps: dict, payload: dict) -> None:
    """Fold one payload into ``maps`` (first occurrence wins)."""
    configs = payload["configs"]
    for config_id, groups in payload["succ"]:
        data = tuple(configs[config_id])
        if data not in maps["succ"]:
            maps["succ"][data] = tuple(
                (rule_id, round_no,
                 tuple(tuple(configs[sid]) for sid in successor_ids))
                for rule_id, round_no, successor_ids in groups
            )
    for config_id, pairs in payload["options"]:
        data = tuple(configs[config_id])
        if data not in maps["options"]:
            maps["options"][data] = tuple(tuple(pair) for pair in pairs)


def _entries_covered(stored: dict, candidate: dict) -> bool:
    """Is every entry of ``candidate`` present (and equal) in ``stored``?"""
    for kind in ("succ", "options"):
        haystack = stored[kind]
        for data, value in candidate[kind].items():
            if haystack.get(data) != value:
                return False
    return True


def _validate_payload(payload: dict, header: dict) -> None:
    """Structural sanity of one decoded segment (model-free).

    Compaction merges payloads without a bound system, so the rule-list
    validation of :meth:`GraphStore._rebuild` is unavailable; this
    checks everything checkable at the data level — id ranges, shapes,
    header counts — and leaves semantic validation to the next load.
    """
    configs = payload["configs"]
    n = len(configs)
    if not all(isinstance(data, tuple) for data in configs):
        raise ValueError("config universe must be flat tuples")
    if (len(payload["succ"]) != header["succ"]
            or len(payload["options"]) != header["options"]
            or n != header["configs"]):
        raise ValueError("entry count mismatch")
    for config_id, groups in payload["succ"]:
        if not 0 <= config_id < n:
            raise ValueError("successor source id out of range")
        for _rule_id, _round_no, successor_ids in groups:
            for sid in successor_ids:
                if not 0 <= sid < n:
                    raise ValueError("successor id out of range")
    for config_id, _pairs in payload["options"]:
        if not 0 <= config_id < n:
            raise ValueError("option source id out of range")


def _merge_payloads(entries: Sequence[Tuple[dict, dict]]) -> Tuple[dict, dict]:
    """Union the payloads of one key's segments into a single payload.

    Configs dedup on their flat data tuple; successor/option entries
    keep the first occurrence (every segment memoised the same
    deterministic expansion, so later duplicates are identical).
    Returns ``(header_core, payload)`` for :func:`encode_entry`.
    """
    first_header = entries[0][0]
    for header, _payload in entries[1:]:
        for field in _IDENTITY_FIELDS:
            if header.get(field) != first_header.get(field):
                raise ValueError(
                    f"segments disagree on identity field {field!r}"
                )
    config_ids: Dict[tuple, int] = {}
    configs: List[tuple] = []
    succ: Dict[int, tuple] = {}
    options: Dict[int, tuple] = {}
    for _header, payload in entries:
        remap: List[int] = []
        for data in payload["configs"]:
            data = tuple(data)
            merged_id = config_ids.get(data)
            if merged_id is None:
                merged_id = len(configs)
                config_ids[data] = merged_id
                configs.append(data)
            remap.append(merged_id)
        for config_id, groups in payload["succ"]:
            merged_id = remap[config_id]
            if merged_id not in succ:
                succ[merged_id] = tuple(
                    (rule_id, round_no,
                     tuple(remap[sid] for sid in successor_ids))
                    for rule_id, round_no, successor_ids in groups
                )
        for config_id, pairs in payload["options"]:
            merged_id = remap[config_id]
            if merged_id not in options:
                options[merged_id] = tuple(tuple(pair) for pair in pairs)
    header_core = {field: first_header.get(field)
                   for field in _IDENTITY_FIELDS}
    header_core["segment"] = [0, 0]
    payload = {
        "configs": tuple(configs),
        "succ": tuple(sorted(succ.items())),
        "options": tuple(sorted(options.items())),
    }
    return header_core, payload


def compact_backend(backend: StoreBackend) -> Dict[str, int]:
    """Squash every key's delta segments into one canonical snapshot.

    Pure data-level merging (checksum-verified payload union), so it
    needs no protocol models and works on any backend.  Per key:
    checksum-corrupt or structurally-invalid segments are *dropped*
    (they would otherwise poison every load of the key); the remaining
    segments merge into a single canonical segment that replaces
    exactly the segments read — a concurrent writer's freshly-appended
    segment survives untouched, so compaction under a live fleet only
    ever trades duplicates for one extra merge at the next compaction.
    Best-effort throughout: a key that cannot be compacted is counted
    in ``errors`` and left as-is.
    """
    stats = {
        "keys": 0,
        "compacted": 0,
        "segments_before": 0,
        "segments_after": 0,
        "bytes_before": 0,
        "bytes_after": 0,
        "corrupt_dropped": 0,
        "errors": 0,
    }
    try:
        keys = backend.keys()
    except BACKEND_ERRORS:
        stats["errors"] += 1
        return stats
    for key in keys:
        stats["keys"] += 1
        try:
            segments = backend.read_segments(key)
        except BACKEND_ERRORS:
            stats["errors"] += 1
            continue
        if not segments:
            continue
        total = sum(len(blob) for _token, blob in segments)
        stats["segments_before"] += len(segments)
        stats["bytes_before"] += total
        entries: List[Tuple[dict, dict]] = []
        corrupt = 0
        for _token, raw in segments:
            try:
                header, body = GraphStore.parse_entry(raw)
                if hashlib.sha256(body).hexdigest() != header.get("body_sha256"):
                    raise ValueError("graph body checksum mismatch")
                payload = _safe_loads(body)
                _validate_payload(payload, header)
                entries.append((header, payload))
            except Exception:  # noqa: BLE001 — bad segment: drop it
                corrupt += 1
        stats["corrupt_dropped"] += corrupt
        canonical = getattr(backend, "canonical_path", None)
        if not corrupt and len(segments) == 1 and (
            canonical is None or Path(segments[0][0]) == canonical(key)
        ):
            # Already one *valid* canonical segment: nothing to do.
            stats["segments_after"] += 1
            stats["bytes_after"] += total
            continue
        try:
            if not entries:
                # Nothing salvageable: removing the corrupt segments
                # turns a poisoned key back into a clean cold miss.
                backend.delete_key(key)
                continue
            header_core, payload = _merge_payloads(entries)
            blob = encode_entry(header_core, payload)
            backend.write_canonical(
                key, blob, drop=[token for token, _blob in segments]
            )
        except Exception:  # noqa: BLE001 — leave the key as it was
            stats["errors"] += 1
            stats["segments_after"] += len(segments)
            stats["bytes_after"] += total
            continue
        stats["compacted"] += 1
        stats["segments_after"] += 1
        stats["bytes_after"] += len(blob)
    return stats


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
#: The store new shared systems warm themselves from, or None.  Set per
#: process: the sweep runner activates it inline and via the pool
#: initializer, so persistent workers load graphs on first bind and
#: flush what they grew.
_ACTIVE_STORE: Optional[GraphStore] = None


def activate_graph_store(
    store, version: Optional[str] = None, snapshot_mode: bool = False
) -> Optional[GraphStore]:
    """Install the process-wide store; returns the previous one.

    ``store`` is anything :func:`as_backend` resolves: a directory
    path, a ``sqlite:<path>`` URI, or a backend instance.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = GraphStore(store, version=version,
                               snapshot_mode=snapshot_mode)
    return previous


def active_graph_store() -> Optional[GraphStore]:
    """The currently-installed process-wide store, or None."""
    return _ACTIVE_STORE


def deactivate_graph_store(
    previous: Optional[GraphStore] = None,
) -> None:
    """Clear (or restore) the process-wide store installation.

    The store being replaced releases its backend handles — safe even
    if someone still holds a reference, because every backend operation
    lazily reopens.
    """
    global _ACTIVE_STORE
    current = _ACTIVE_STORE
    _ACTIVE_STORE = previous
    if current is not None and current is not previous:
        current.close()
