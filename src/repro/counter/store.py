"""Persistent cross-process state-graph store for the counter engine.

PR 3 made the in-process caches shareable: one compiled
:class:`~repro.counter.program.ProtocolProgram` per model structure and
one bound :class:`~repro.counter.system.CounterSystem` per valuation,
kept warm across checkers.  This module extends that sharing across
*processes* and across *valuations*:

* :class:`InternTable` — one configuration intern table per compiled
  program, shared by **all** valuations of a protocol.  ``Config``
  tuples are valuation-independent (the flat layout is a property of
  the structure), so interning happens once per structure: two
  valuations that reach the same configuration intern to the same
  object, and cross-valuation sweeps stop re-canonicalising the shared
  prefix of their state spaces.
* :class:`GraphStore` — a directory of ``*.graph`` files, one per
  ``(program digest, valuation, code version)``, each serializing a
  system's warm successor-group/rule-option caches and its explored
  reach set.  A sweep worker starting cold loads the graph a previous
  process already expanded and replays every query on memoised
  successors.

Durability contract (mirrors :class:`~repro.api.sweep.ResultCache`):

* writes go to a **unique per-writer temp file** (``<name>.<pid>.
  <token>.tmp``) followed by an atomic :meth:`~pathlib.Path.replace`,
  so concurrent writers of one key can interleave freely and readers
  only ever see complete entries;
* all I/O is **best-effort** — a missing, truncated, hand-edited or
  stale entry (or a full disk) is a cold miss recorded on the store,
  never a crash; entries carry a body checksum so accidental
  corruption is detected rather than deserialized, and payloads load
  through a restricted unpickler that refuses every class lookup, so
  a crafted pickle cannot execute code;
* temp-file orphans from crashed writers are pruned on store init.

Threat model: the store directory is *trusted input*, like any local
cache.  The checksum and unpickler close the accident and
code-execution holes, but an internally-consistent forged entry (valid
checksum over wrong successor ids) would be replayed as-is — do not
point the store at a directory writable by parties you would not let
edit your results.

Loading is results-neutral by construction: a stored graph is exactly
the memoised successor structure a cold expansion produces (entry
order included), so warm-from-disk verdicts and ``states_explored``
are bit-identical to cold runs.  Entries are keyed by
:func:`~repro.version.code_version`, so any engine change degrades the
whole store to cold misses instead of replaying stale semantics.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import time
import uuid
import weakref
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.counter.actions import Action
from repro.counter.config import Config
from repro.version import code_version

__all__ = [
    "GraphStore",
    "InternTable",
    "activate_graph_store",
    "active_graph_store",
    "deactivate_graph_store",
    "program_digest",
    "prune_stale_temp_files",
    "unique_temp_path",
    "valuation_digest",
]

#: Temp files older than this are crashed-writer orphans; live writers
#: hold a temp file for milliseconds (one serialized entry write).
STALE_TEMP_SECONDS = 600.0


# ----------------------------------------------------------------------
# Shared durability helpers (used by ResultCache too)
# ----------------------------------------------------------------------
def unique_temp_path(path: Path) -> Path:
    """A collision-free sibling temp path for atomically replacing ``path``.

    ``<name>.<pid>.<token>.tmp`` — the pid separates concurrent
    processes, the random token separates writers inside one process
    (two pool workers finishing the same uncached key must never
    truncate each other's half-written blob before the atomic rename).
    """
    token = uuid.uuid4().hex[:8]
    return path.with_name(f"{path.name}.{os.getpid()}.{token}.tmp")


def prune_stale_temp_files(
    root: Path, stale_seconds: float = STALE_TEMP_SECONDS
) -> int:
    """Remove crashed-writer ``*.tmp`` orphans under ``root``.

    Only temp files whose mtime is older than ``stale_seconds`` go (a
    concurrent writer's live temp file must survive); with
    ``stale_seconds <= 0`` every temp file goes (explicit prune/clear).
    Best-effort: unlink races and permission errors are ignored.
    Returns the number of files removed.
    """
    removed = 0
    now = time.time()
    try:
        candidates = list(root.glob("*.tmp"))
    except OSError:
        return 0
    for path in candidates:
        try:
            if stale_seconds > 0 and now - path.stat().st_mtime < stale_seconds:
                continue
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


# ----------------------------------------------------------------------
# Per-program intern table (shared across valuations)
# ----------------------------------------------------------------------
class InternTable:
    """One configuration intern table shared by a program's systems.

    :class:`~repro.counter.config.Config` cells are counters and
    variable values — never parameters — and the flat layout geometry is
    owned by the structure-level program, so configurations are
    *valuation-independent* values.  Holding the table on the program
    therefore lets every :class:`~repro.counter.system.CounterSystem`
    bound to it (one per valuation) intern into the same dict.

    The generation reset of the old per-system table carries over: when
    the table reaches its cap it is dropped wholesale, together with
    the successor/option caches of every registered dependent system —
    those caches hold interned configs and must not outlive the table
    that canonicalised them.  Dependents are tracked weakly so the
    program-lifetime table never pins evicted systems.
    """

    #: Bound on the table; far above any max_states budget a checker
    #: uses, so only open-ended workloads (sampling) recycle.
    CAP = 1 << 21

    __slots__ = ("table", "_dependents")

    def __init__(self) -> None:
        self.table: Dict[Config, Config] = {}
        self._dependents: "weakref.WeakSet" = weakref.WeakSet()

    def register(self, system) -> None:
        """Track a system whose caches must drop on generation reset."""
        self._dependents.add(system)

    def reset(self) -> None:
        """Drop the table and every dependent's derived caches together.

        Bumps each dependent's cache epoch: a reset changes cache
        *contents* without necessarily changing their lengths, and the
        store's skip-if-unchanged flush bookkeeping keys on
        ``(epoch, lengths)`` to stay sound across it.
        """
        self.table.clear()
        for system in self._dependents:
            system._succ_cache.clear()
            system._options_cache.clear()
            system._cache_epoch += 1

    def __len__(self) -> int:
        return len(self.table)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
def program_digest(program) -> str:
    """Cross-process digest of a compiled program's structural key.

    ``program.key`` is a tuple of hashable value types with
    deterministic reprs (frozen dataclasses, enums, tuples, strings,
    ``Fraction``), so hashing its repr is stable across processes and
    ``PYTHONHASHSEED`` values — unlike ``hash()``, which is salted.
    """
    return hashlib.sha256(repr(program.key).encode()).hexdigest()[:16]


def valuation_digest(valuation: Mapping[str, int]) -> str:
    """Deterministic digest of one parameter valuation."""
    blob = repr(tuple(sorted(valuation.items()))).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def _slug(name: str) -> str:
    """Filename-safe component (no ``-`` — it separates the key parts)."""
    return "".join(c if c.isalnum() else "_" for c in name) or "model"


class _SafeUnpickler(pickle.Unpickler):
    """An unpickler that refuses every class/callable lookup.

    Graph payloads are plain containers of ints — tuples, lists, dicts,
    strings — which pickle reconstructs without ever resolving a
    global.  Rejecting ``find_class`` outright therefore costs nothing
    and closes the classic pickle code-execution hole: a hand-crafted
    entry whose payload smuggles a ``GLOBAL``/``STACK_GLOBAL`` opcode
    raises here, is caught by :meth:`GraphStore.load_into`, and
    degrades to the documented cold miss.
    """

    def find_class(self, module, name):
        raise pickle.UnpicklingError(
            f"graph payloads contain no classes (refusing {module}.{name})"
        )


def _safe_loads(body: bytes):
    return _SafeUnpickler(io.BytesIO(body)).load()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class GraphStore:
    """A directory of serialized state graphs, one file per
    ``(program digest, valuation, code version)``.

    On-disk layout (all parsing-relevant components in the file name)::

        <root>/<slug>-<program>-<valuation>-<version>.graph

    Each file is one header line — ``repro-graph <format> <json>`` with
    the identity fields, entry counts and a body checksum — followed by
    a pickled payload of plain int tuples: the config universe (flat
    cell tuples) and the successor/option caches as indices into it.
    Successor groups are stored as ``(rule index, round, successor
    ids)``; actions are *rebuilt* from the program's rule list on load,
    so a payload can never inject structure that the current code
    version would not itself produce.

    All methods are best-effort: any :class:`OSError` (and, on the read
    side, any parse error) is swallowed, counted, and treated as a
    cold miss.  ``last_error`` keeps the most recent failure for
    diagnostics.
    """

    FORMAT = 1
    MAGIC = "repro-graph"

    def __init__(self, root, version: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        #: path -> (cache epoch, succ entries, option entries) last
        #: seen on disk, so unchanged graphs are never rewritten.  The
        #: epoch component keeps the skip sound across FIFO evictions
        #: and intern-table generation resets, which change cache
        #: *contents* at coinciding lengths.
        self._flushed: Dict[Path, Tuple[int, int, int]] = {}
        #: Systems served to this process while this store was active —
        #: the only ones :meth:`flush_adopted` persists.  Tracked
        #: weakly: flushing must never pin an evicted system, and
        #: systems this run never touched (warm leftovers of earlier
        #: unrelated runs) must never leak into this store.
        self._adopted: "weakref.WeakSet" = weakref.WeakSet()
        self.load_hits = 0
        self.load_misses = 0
        self.saves = 0
        self.errors = 0
        self.last_error: Optional[BaseException] = None
        prune_stale_temp_files(self.root)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def path_for(self, system) -> Path:
        program = system.program
        return self.root / (
            f"{_slug(program.model_name)}-{program_digest(program)}-"
            f"{valuation_digest(system.valuation)}-{_slug(self.version)}.graph"
        )

    # ------------------------------------------------------------------
    # Adoption (which systems belong to this store's run)
    # ------------------------------------------------------------------
    def adopt(self, system) -> None:
        """Mark ``system`` as used under this store (flush candidate)."""
        self._adopted.add(system)

    def flush_adopted(self) -> int:
        """Flush every adopted system; returns the entries written."""
        return sum(1 for system in list(self._adopted) if self.flush(system))

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def flush(self, system) -> bool:
        """Persist ``system``'s warm graph if it grew since last flush.

        Returns True when an entry was written.  Never raises: a disk
        failure marks the store errored and the caller moves on — the
        store is an optimization, not a dependency.
        """
        path = self.path_for(system)
        state = (
            system._cache_epoch,
            len(system._succ_cache),
            len(system._options_cache),
        )
        if state[1:] == (0, 0) or self._flushed.get(path) == state:
            return False
        try:
            blob = self._serialize(system)
        except Exception as exc:  # noqa: BLE001 — never kill the caller
            self._record(exc)
            return False
        tmp = unique_temp_path(path)
        try:
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError as exc:
            self._record(exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._flushed[path] = state
        self.saves += 1
        return True

    def _serialize(self, system) -> bytes:
        program = system.program
        rule_index = {
            rule.name: index for index, rule in enumerate(system._rule_list)
        }
        config_ids: Dict[Config, int] = {}

        def cid(config: Config) -> int:
            known = config_ids.get(config)
            if known is None:
                known = len(config_ids)
                config_ids[config] = known
            return known

        succ: List[tuple] = []
        for config, groups in system._succ_cache.items():
            encoded = []
            for group in groups:
                action = group[0][0]
                encoded.append((
                    rule_index[action.rule],
                    action.round,
                    tuple(cid(successor) for _action, successor in group),
                ))
            succ.append((cid(config), tuple(encoded)))
        options: List[tuple] = []
        for config, actions in system._options_cache.items():
            options.append((
                cid(config),
                tuple((rule_index[a.rule], a.round) for a in actions),
            ))
        payload = {
            "configs": tuple(c.data for c in config_ids),
            "succ": tuple(succ),
            "options": tuple(options),
        }
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "model": program.model_name,
            "program": program_digest(program),
            "valuation": sorted(system.valuation.items()),
            "code_version": self.version,
            "block": program.block,
            "configs": len(config_ids),
            "succ": len(succ),
            "options": len(options),
            "body_sha256": hashlib.sha256(body).hexdigest(),
        }
        head = f"{self.MAGIC} {self.FORMAT} {json.dumps(header, sort_keys=True)}\n"
        return head.encode() + body

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load_into(self, system) -> bool:
        """Warm ``system``'s caches from disk; False is a cold miss.

        Validates the header identity (program digest, valuation, code
        version, layout geometry) and the body checksum before
        deserializing, deserializes through the class-refusing
        unpickler, and rebuilds every action from the *current* bound
        rule list — so a stale, truncated or accidentally-corrupted
        entry degrades to a cold miss instead of crashing or replaying
        stale semantics (see the module doc for the trusted-directory
        threat model).
        """
        path = self.path_for(system)
        try:
            raw = path.read_bytes()
        except OSError:
            self.load_misses += 1
            return False
        try:
            header, body = self._parse(raw)
            self._check_header(header, system, body)
            payload = _safe_loads(body)
            counts = self._rebuild(system, payload, header)
        except Exception as exc:  # noqa: BLE001 — bad entry == cold miss
            # A partially-rebuilt cache would be correct but the entry
            # is untrusted now; drop everything this load touched.
            system._succ_cache.clear()
            system._options_cache.clear()
            self._record(exc)
            self.load_misses += 1
            return False
        self._flushed[path] = (system._cache_epoch,) + counts
        self.load_hits += 1
        return True

    def _parse(self, raw: bytes) -> Tuple[dict, bytes]:
        head, sep, body = raw.partition(b"\n")
        if not sep:
            raise ValueError("truncated graph entry (no header line)")
        magic, fmt, header_json = head.decode().split(" ", 2)
        if magic != self.MAGIC or int(fmt) != self.FORMAT:
            raise ValueError(f"unknown graph format {magic!r} v{fmt}")
        return json.loads(header_json), body

    def _check_header(self, header: dict, system, body: bytes) -> None:
        expect = {
            "program": program_digest(system.program),
            "valuation": [list(kv) for kv in sorted(system.valuation.items())],
            "code_version": self.version,
            "block": system.program.block,
        }
        for key, want in expect.items():
            if header.get(key) != want:
                raise ValueError(
                    f"graph header mismatch on {key!r}: "
                    f"{header.get(key)!r} != {want!r}"
                )
        if hashlib.sha256(body).hexdigest() != header.get("body_sha256"):
            raise ValueError("graph body checksum mismatch")

    def _rebuild(self, system, payload: dict, header: dict) -> Tuple[int, int]:
        program = system.program
        width_kappa, width_g, block = program.n_locs, program.n_vars, program.block
        configs = []
        for data in payload["configs"]:
            if len(data) % block:
                raise ValueError("config cell count not a multiple of the block")
            configs.append(system.intern(Config.from_flat(
                tuple(data), width_kappa, width_g, len(data) // block
            )))
        rules = system._rule_list
        succ_cache = system._succ_cache
        for config_id, groups in payload["succ"]:
            rebuilt = []
            for rule_id, round_no, successor_ids in groups:
                rule = rules[rule_id]
                if rule.is_dirac:
                    (successor_id,) = successor_ids
                    rebuilt.append((
                        (Action(rule.name, round_no), configs[successor_id]),
                    ))
                else:
                    if len(successor_ids) != len(rule.branch_names):
                        raise ValueError("branch count mismatch")
                    rebuilt.append(tuple(
                        (Action(rule.name, round_no, name), configs[sid])
                        for name, sid in zip(rule.branch_names, successor_ids)
                    ))
            succ_cache[configs[config_id]] = tuple(rebuilt)
        options_cache = system._options_cache
        for config_id, pairs in payload["options"]:
            options_cache[configs[config_id]] = tuple(
                Action(rules[rule_id].name, round_no)
                for rule_id, round_no in pairs
            )
        if (
            len(payload["configs"]) != header["configs"]
            or len(payload["succ"]) != header["succ"]
            or len(payload["options"]) != header["options"]
        ):
            raise ValueError("entry count mismatch")
        return len(succ_cache), len(options_cache)

    # ------------------------------------------------------------------
    # Maintenance (the ``harness cache`` CLI)
    # ------------------------------------------------------------------
    @staticmethod
    def entries(root) -> List[Path]:
        try:
            return sorted(Path(root).glob("*.graph"))
        except OSError:
            return []

    @classmethod
    def entry_version(cls, path: Path) -> Optional[str]:
        """The code-version component of an entry's file name."""
        parts = path.stem.rsplit("-", 3)
        return parts[3] if len(parts) == 4 else None

    @classmethod
    def describe(cls, path: Path) -> Optional[dict]:
        """An entry's header dict, or None when unreadable/corrupt.

        Validates the shape the maintenance CLI consumes (a dict whose
        ``valuation`` is key/value pairs and whose counts are ints), so
        a hand-edited header line can never crash ``cache info``.
        """
        try:
            with open(path, "rb") as handle:
                head = handle.readline()
            magic, fmt, header_json = head.decode().split(" ", 2)
            if magic != cls.MAGIC or int(fmt) != cls.FORMAT:
                return None
            header = json.loads(header_json)
            if not isinstance(header, dict):
                return None
            header["valuation"] = dict(header.get("valuation") or ())
            for field in ("configs", "succ", "options"):
                if not isinstance(header.get(field), int):
                    return None
            if not isinstance(header.get("model"), str):
                return None
            return header
        except (OSError, ValueError, TypeError, UnicodeDecodeError):
            return None

    def _record(self, exc: BaseException) -> None:
        self.errors += 1
        self.last_error = exc


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
#: The store new shared systems warm themselves from, or None.  Set per
#: process: the sweep runner activates it inline and via the pool
#: initializer, so persistent workers load graphs on first bind and
#: flush what they grew.
_ACTIVE_STORE: Optional[GraphStore] = None


def activate_graph_store(
    root, version: Optional[str] = None
) -> Optional[GraphStore]:
    """Install the process-wide store; returns the previous one."""
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = GraphStore(root, version=version)
    return previous


def active_graph_store() -> Optional[GraphStore]:
    """The currently-installed process-wide store, or None."""
    return _ACTIVE_STORE


def deactivate_graph_store(
    previous: Optional[GraphStore] = None,
) -> None:
    """Clear (or restore) the process-wide store installation."""
    global _ACTIVE_STORE
    _ACTIVE_STORE = previous
