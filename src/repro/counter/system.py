"""Explicit counter-system semantics for a fixed parameter valuation.

Instantiating :class:`CounterSystem` with a :class:`~repro.core.system.
SystemModel` and an admissible parameter valuation yields the (finite
or lazily-unbounded) transition system of §III-C/D:

* the *non-probabilistic* view (Definition 1 applied on the fly):
  :meth:`enabled_actions` expands every branch of a non-Dirac coin rule
  into its own action, and :meth:`apply` executes one action;
* the *MDP* view: :meth:`prob_transitions` returns the distribution
  ``Delta(c, alpha)`` of a (possibly probabilistic) rule.

Both the multi-round system ``Sys^infty`` and single-round systems
``Sys_rd`` are served by the same class — a single-round model simply
never exercises round switches (Definition 3 removed them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.guards import Cmp
from repro.core.locations import LocKind, Location
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.config import Config
from repro.errors import SemanticsError

#: A compiled guard atom: (lhs as (var_index, coeff) pairs, cmp, rhs int).
CompiledGuard = Tuple[Tuple[Tuple[int, int], ...], Cmp, int]


@dataclass(frozen=True)
class CompiledRule:
    """A rule compiled against a fixed valuation and index maps."""

    name: str
    owner: str  # "process" or "coin"
    source: int
    #: (target_index, probability) — a single pair for Dirac/process rules.
    branches: Tuple[Tuple[int, Fraction], ...]
    guard: Tuple[CompiledGuard, ...]
    update: Tuple[Tuple[int, int], ...]
    is_round_switch: bool
    source_name: str
    branch_names: Tuple[str, ...]

    @property
    def is_dirac(self) -> bool:
        return len(self.branches) == 1


class CounterSystem:
    """Counter-system semantics of a model under a parameter valuation."""

    def __init__(self, model: SystemModel, valuation: Mapping[str, int]):
        self.model = model
        self.valuation = dict(valuation)
        env = model.environment
        self.n_processes, self.n_coins = env.system_size(valuation)
        if model.coin is None:
            self.n_coins = 0

        # ---- index maps ------------------------------------------------
        self.locations: List[Location] = list(model.process.locations)
        self.location_owner: List[str] = ["process"] * len(self.locations)
        if model.coin is not None:
            self.locations.extend(model.coin.locations)
            self.location_owner.extend(["coin"] * len(model.coin.locations))
        self.loc_index: Dict[str, int] = {
            loc.name: i for i, loc in enumerate(self.locations)
        }
        self.variables: List[str] = list(model.shared_vars) + list(model.coin_vars)
        self.var_index: Dict[str, int] = {v: i for i, v in enumerate(self.variables)}

        # ---- compiled rules ---------------------------------------------
        self.rules: Dict[str, CompiledRule] = {}
        for rule in model.process.rules:
            self.rules[rule.name] = self._compile_dirac(rule, "process", model.process)
        if model.coin is not None:
            for prob_rule in model.coin.rules:
                self.rules[prob_rule.name] = self._compile_prob(prob_rule, model.coin)

        self.process_start = self._start_locations(model.process.locations)
        self.coin_start = (
            self._start_locations(model.coin.locations) if model.coin else ()
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile_guard(self, guard) -> Tuple[CompiledGuard, ...]:
        compiled = []
        for atom in guard:
            lhs = tuple((self.var_index[name], coeff) for name, coeff in atom.lhs)
            rhs = atom.rhs.evaluate(self.valuation)
            compiled.append((lhs, atom.cmp, rhs))
        return tuple(compiled)

    def _compile_update(self, update) -> Tuple[Tuple[int, int], ...]:
        return tuple((self.var_index[name], incr) for name, incr in update)

    def _is_round_switch(self, automaton, source: str, target: str) -> bool:
        return (
            automaton.location(source).kind is LocKind.FINAL
            and automaton.location(target).kind is LocKind.BORDER
        )

    def _compile_dirac(self, rule, owner: str, automaton) -> CompiledRule:
        return CompiledRule(
            name=rule.name,
            owner=owner,
            source=self.loc_index[rule.source],
            branches=((self.loc_index[rule.target], Fraction(1)),),
            guard=self._compile_guard(rule.guard),
            update=self._compile_update(rule.update),
            is_round_switch=self._is_round_switch(automaton, rule.source, rule.target),
            source_name=rule.source,
            branch_names=(rule.target,),
        )

    def _compile_prob(self, rule, automaton) -> CompiledRule:
        branches = tuple(
            (self.loc_index[target], prob) for target, prob in rule.branches
        )
        is_switch = rule.is_dirac and self._is_round_switch(
            automaton, rule.source, rule.branches[0][0]
        )
        return CompiledRule(
            name=rule.name,
            owner="coin",
            source=self.loc_index[rule.source],
            branches=branches,
            guard=self._compile_guard(rule.guard),
            update=self._compile_update(rule.update),
            is_round_switch=is_switch,
            source_name=rule.source,
            branch_names=tuple(target for target, _ in rule.branches),
        )

    @staticmethod
    def _start_locations(locations: Sequence[Location]) -> Tuple[Location, ...]:
        borders = tuple(l for l in locations if l.kind is LocKind.BORDER)
        if borders:
            return borders
        return tuple(l for l in locations if l.kind is LocKind.INITIAL)

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def make_config(
        self, placement: Mapping[str, int], variables: Optional[Mapping[str, int]] = None,
        rounds: int = 1,
    ) -> Config:
        """Build a configuration by location name (tests / examples).

        Unmentioned locations hold 0 automata; unmentioned variables are 0.
        """
        kappa = [[0] * len(self.locations) for _ in range(rounds)]
        for name, count in placement.items():
            kappa[0][self.loc_index[name]] = count
        g = [[0] * len(self.variables) for _ in range(rounds)]
        for name, value in (variables or {}).items():
            g[0][self.var_index[name]] = value
        return Config(tuple(tuple(r) for r in kappa), tuple(tuple(r) for r in g))

    def initial_configs(
        self, process_filter: Optional[Mapping[str, int]] = None
    ) -> Iterator[Config]:
        """Enumerate initial configurations (§III-C).

        All processes and the coin sit in start locations of round 0 and
        every variable is 0.  ``process_filter`` optionally pins the
        number of processes in specific start locations (e.g. ``{"J1": 0}``
        to model "no process proposes 1").
        """
        names = [loc.name for loc in self.process_start]
        if not names:
            raise SemanticsError("process automaton has no start locations")
        for split in _compositions(self.n_processes, len(names)):
            placement = dict(zip(names, split))
            if process_filter is not None and any(
                placement.get(k, 0) != v for k, v in process_filter.items()
            ):
                continue
            if self.n_coins:
                coin_names = [loc.name for loc in self.coin_start]
                for coin_split in _compositions(self.n_coins, len(coin_names)):
                    full = dict(placement)
                    full.update(zip(coin_names, coin_split))
                    yield self.make_config(full)
            else:
                yield self.make_config(placement)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def guard_holds(self, config: Config, rule: CompiledRule, round_no: int) -> bool:
        """Does the rule's guard evaluate to true in ``round_no``?"""
        for lhs, cmp, rhs in rule.guard:
            total = 0
            for var_idx, coeff in lhs:
                total += coeff * config.variable(round_no, var_idx)
            if cmp is Cmp.GE:
                if total < rhs:
                    return False
            else:
                if total >= rhs:
                    return False
        return True

    def is_applicable(self, config: Config, action: Action) -> bool:
        """Unlocked guard and a non-empty source counter (§III-C)."""
        rule = self.rules.get(action.rule)
        if rule is None:
            return False
        if config.counter(action.round, rule.source) < 1:
            return False
        return self.guard_holds(config, rule, action.round)

    def enabled_actions(
        self, config: Config, include_stutters: bool = True
    ) -> List[Action]:
        """All applicable actions of the derandomized system.

        Every branch of a non-Dirac coin rule becomes its own action
        (Definition 1).  When ``include_stutters`` is False, actions that
        provably leave the configuration unchanged (trivial self-loops)
        are omitted — convenient for state-space exploration.
        """
        actions: List[Action] = []
        for rule in self.rules.values():
            for round_no in range(config.rounds):
                if config.counter(round_no, rule.source) < 1:
                    continue
                if not self.guard_holds(config, rule, round_no):
                    continue
                if rule.is_dirac:
                    if (
                        not include_stutters
                        and not rule.update
                        and rule.branches[0][0] == rule.source
                        and not rule.is_round_switch
                    ):
                        continue
                    actions.append(Action(rule.name, round_no))
                else:
                    for target in rule.branch_names:
                        actions.append(Action(rule.name, round_no, target))
        return actions

    def apply(self, config: Config, action: Action) -> Config:
        """Execute one action of the non-probabilistic system."""
        rule = self.rules[action.rule]
        if not self.is_applicable(config, action):
            raise SemanticsError(f"action {action} is not applicable")
        if rule.is_dirac:
            dst = rule.branches[0][0]
        else:
            if action.branch is None:
                raise SemanticsError(
                    f"action {action} must pick a branch of non-Dirac rule "
                    f"{rule.name!r}"
                )
            dst = self.loc_index[action.branch]
            if dst not in [b for b, _ in rule.branches]:
                raise SemanticsError(
                    f"{action.branch!r} is not a branch of rule {rule.name!r}"
                )
        dst_round = action.round + 1 if rule.is_round_switch else action.round
        return config.bump(action.round, rule.source, dst, dst_round, rule.update)

    def prob_transitions(
        self, config: Config, rule_name: str, round_no: int
    ) -> List[Tuple[Fraction, Config]]:
        """The MDP distribution ``Delta(c, (r, k))`` (§III-C)."""
        rule = self.rules[rule_name]
        if config.counter(round_no, rule.source) < 1 or not self.guard_holds(
            config, rule, round_no
        ):
            raise SemanticsError(f"rule {rule_name!r} not applicable in round {round_no}")
        dst_round = round_no + 1 if rule.is_round_switch else round_no
        results = []
        for dst, prob in rule.branches:
            results.append(
                (prob, config.bump(round_no, rule.source, dst, dst_round, rule.update))
            )
        return results

    # ------------------------------------------------------------------
    # Convenience for spec evaluation
    # ------------------------------------------------------------------
    def counter_of(self, config: Config, location: str, round_no: int = 0) -> int:
        return config.counter(round_no, self.loc_index[location])

    def value_of(self, config: Config, variable: str, round_no: int = 0) -> int:
        return config.variable(round_no, self.var_index[variable])

    def locations_named(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.loc_index[name] for name in names)


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` >= 0."""
    if parts == 0:
        if total == 0:
            yield ()
        return
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail
