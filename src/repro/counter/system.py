"""Explicit counter-system semantics for a fixed parameter valuation.

Instantiating :class:`CounterSystem` with a :class:`~repro.core.system.
SystemModel` and an admissible parameter valuation yields the (finite
or lazily-unbounded) transition system of §III-C/D:

* the *non-probabilistic* view (Definition 1 applied on the fly):
  :meth:`enabled_actions` expands every branch of a non-Dirac coin rule
  into its own action, and :meth:`apply` executes one action;
* the *MDP* view: :meth:`prob_transitions` returns the distribution
  ``Delta(c, alpha)`` of a (possibly probabilistic) rule.

Both the multi-round system ``Sys^infty`` and single-round systems
``Sys_rd`` are served by the same class — a single-round model simply
never exercises round switches (Definition 3 removed them).

Fast state engine
-----------------
Configurations use the flat layout of :mod:`repro.counter.config`; the
system compiles every rule down to *flat block offsets* (guard atoms,
variable updates, source/target locations) so the hot loops index a
single tuple instead of resolving names or nested rows:

* :meth:`intern` canonicalises configurations in a per-system table —
  equal states become pointer-equal, so explored-set lookups stop at
  the cached hash plus an identity check;
* :meth:`apply_unchecked` executes a rule without re-validating
  applicability (callers that just enumerated enabled rules already
  know it holds);
* :meth:`successor_groups` memoises the full successor structure of a
  configuration (grouped by ``(rule, round)`` move with one entry per
  coin branch) in a bounded FIFO cache shared by *all* queries run on
  the system — reach BFS, game construction and the fairness side
  conditions each hit the same cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.guards import Cmp
from repro.core.locations import LocKind, Location
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.config import Config
from repro.errors import SemanticsError

#: A compiled guard atom: (lhs as (var_index, coeff) pairs, cmp, rhs int).
CompiledGuard = Tuple[Tuple[Tuple[int, int], ...], Cmp, int]

#: One adversary move: every coin branch of one ``(rule, round)`` pair.
MoveGroup = Tuple[Tuple[Action, Config], ...]


@dataclass(frozen=True)
class CompiledRule:
    """A rule compiled against a fixed valuation and index maps."""

    name: str
    owner: str  # "process" or "coin"
    source: int
    #: (target_index, probability) — a single pair for Dirac/process rules.
    branches: Tuple[Tuple[int, Fraction], ...]
    guard: Tuple[CompiledGuard, ...]
    update: Tuple[Tuple[int, int], ...]
    is_round_switch: bool
    source_name: str
    branch_names: Tuple[str, ...]
    #: Guard atoms with lhs as (round-block offset, coeff) pairs.
    guard_flat: Tuple[CompiledGuard, ...] = ()
    #: Updates as (round-block offset, increment) pairs.
    update_offsets: Tuple[Tuple[int, int], ...] = ()
    #: Provably a no-op self-loop (skipped when stutters are excluded).
    stutter: bool = False

    @property
    def is_dirac(self) -> bool:
        return len(self.branches) == 1


class CounterSystem:
    """Counter-system semantics of a model under a parameter valuation."""

    #: Bound on the memoised successor cache (entries, not bytes).
    SUCCESSOR_CACHE_CAP = 1 << 20
    #: Bound on the intern table; far above any max_states budget a
    #: checker uses, so only open-ended workloads (sampling) recycle.
    INTERN_TABLE_CAP = 1 << 21

    def __init__(self, model: SystemModel, valuation: Mapping[str, int]):
        self.model = model
        self.valuation = dict(valuation)
        env = model.environment
        self.n_processes, self.n_coins = env.system_size(valuation)
        if model.coin is None:
            self.n_coins = 0

        # ---- index maps ------------------------------------------------
        self.locations: List[Location] = list(model.process.locations)
        self.location_owner: List[str] = ["process"] * len(self.locations)
        if model.coin is not None:
            self.locations.extend(model.coin.locations)
            self.location_owner.extend(["coin"] * len(model.coin.locations))
        self.loc_index: Dict[str, int] = {
            loc.name: i for i, loc in enumerate(self.locations)
        }
        self.variables: List[str] = list(model.shared_vars) + list(model.coin_vars)
        self.var_index: Dict[str, int] = {v: i for i, v in enumerate(self.variables)}

        # ---- flat layout ------------------------------------------------
        self.n_locs = len(self.locations)
        self.n_vars = len(self.variables)
        #: Cells per round in the flat layout: ``kappa row | g row``.
        self.block = self.n_locs + self.n_vars

        # ---- compiled rules ---------------------------------------------
        self.rules: Dict[str, CompiledRule] = {}
        for rule in model.process.rules:
            self.rules[rule.name] = self._compile_dirac(rule, "process", model.process)
        if model.coin is not None:
            for prob_rule in model.coin.rules:
                self.rules[prob_rule.name] = self._compile_prob(prob_rule, model.coin)
        self._rule_list: Tuple[CompiledRule, ...] = tuple(self.rules.values())

        self.process_start = self._start_locations(model.process.locations)
        self.coin_start = (
            self._start_locations(model.coin.locations) if model.coin else ()
        )

        # ---- state intern table / successor memo ------------------------
        self._intern: Dict[Config, Config] = {}
        self._succ_cache: Dict[Config, Tuple[MoveGroup, ...]] = {}
        self._options_cache: Dict[Config, Tuple[Action, ...]] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile_guard(self, guard) -> Tuple[CompiledGuard, ...]:
        compiled = []
        for atom in guard:
            lhs = tuple((self.var_index[name], coeff) for name, coeff in atom.lhs)
            rhs = atom.rhs.evaluate(self.valuation)
            compiled.append((lhs, atom.cmp, rhs))
        return tuple(compiled)

    @staticmethod
    def _flatten_guard(
        guard: Tuple[CompiledGuard, ...], n_locs: int
    ) -> Tuple[CompiledGuard, ...]:
        return tuple(
            (tuple((n_locs + var_idx, coeff) for var_idx, coeff in lhs), cmp, rhs)
            for lhs, cmp, rhs in guard
        )

    def _compile_update(self, update) -> Tuple[Tuple[int, int], ...]:
        return tuple((self.var_index[name], incr) for name, incr in update)

    def _is_round_switch(self, automaton, source: str, target: str) -> bool:
        return (
            automaton.location(source).kind is LocKind.FINAL
            and automaton.location(target).kind is LocKind.BORDER
        )

    def _compile_dirac(self, rule, owner: str, automaton) -> CompiledRule:
        guard = self._compile_guard(rule.guard)
        update = self._compile_update(rule.update)
        source = self.loc_index[rule.source]
        target = self.loc_index[rule.target]
        is_switch = self._is_round_switch(automaton, rule.source, rule.target)
        return CompiledRule(
            name=rule.name,
            owner=owner,
            source=source,
            branches=((target, Fraction(1)),),
            guard=guard,
            update=update,
            is_round_switch=is_switch,
            source_name=rule.source,
            branch_names=(rule.target,),
            guard_flat=self._flatten_guard(guard, self.n_locs),
            update_offsets=tuple(
                (self.n_locs + var_idx, incr) for var_idx, incr in update
            ),
            stutter=(not update and target == source and not is_switch),
        )

    def _compile_prob(self, rule, automaton) -> CompiledRule:
        branches = tuple(
            (self.loc_index[target], prob) for target, prob in rule.branches
        )
        is_switch = rule.is_dirac and self._is_round_switch(
            automaton, rule.source, rule.branches[0][0]
        )
        guard = self._compile_guard(rule.guard)
        update = self._compile_update(rule.update)
        source = self.loc_index[rule.source]
        return CompiledRule(
            name=rule.name,
            owner="coin",
            source=source,
            branches=branches,
            guard=guard,
            update=update,
            is_round_switch=is_switch,
            source_name=rule.source,
            branch_names=tuple(target for target, _ in rule.branches),
            guard_flat=self._flatten_guard(guard, self.n_locs),
            update_offsets=tuple(
                (self.n_locs + var_idx, incr) for var_idx, incr in update
            ),
            stutter=(
                len(branches) == 1
                and not update
                and branches[0][0] == source
                and not is_switch
            ),
        )

    @staticmethod
    def _start_locations(locations: Sequence[Location]) -> Tuple[Location, ...]:
        borders = tuple(l for l in locations if l.kind is LocKind.BORDER)
        if borders:
            return borders
        return tuple(l for l in locations if l.kind is LocKind.INITIAL)

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def intern(self, config: Config) -> Config:
        """Canonical instance of ``config`` for this system.

        Equal configurations intern to the same object, so explored-set
        membership tests short-circuit on identity (dict lookups stop
        at the cached hash plus an ``is`` check).  Interning is purely
        an optimisation — no caller may rely on identity for
        *semantics*, because the table is cleared (together with the
        successor cache) once it reaches :attr:`INTERN_TABLE_CAP`,
        which keeps unbounded workloads like long MDP sampling runs
        from pinning every configuration they ever visited.

        :attr:`Config.intern_id` is a diagnostic stamp from the first
        system that interned the object; it is *not* used as a cache
        key (a config may be interned by several systems).
        """
        canonical = self._intern.get(config)
        if canonical is not None:
            return canonical
        if len(self._intern) >= self.INTERN_TABLE_CAP:
            # Generation reset: drop all tables together so cached
            # successor groups / move options never outlive their
            # canonical configs.
            self._intern.clear()
            self._succ_cache.clear()
            self._options_cache.clear()
        if config.intern_id < 0:
            config.intern_id = len(self._intern)
        self._intern[config] = config
        return config

    def make_config(
        self, placement: Mapping[str, int], variables: Optional[Mapping[str, int]] = None,
        rounds: int = 1,
    ) -> Config:
        """Build a configuration by location name (tests / examples).

        Unmentioned locations hold 0 automata; unmentioned variables are 0.
        """
        cells = [0] * (rounds * self.block)
        for name, count in placement.items():
            cells[self.loc_index[name]] = count
        for name, value in (variables or {}).items():
            cells[self.n_locs + self.var_index[name]] = value
        return self.intern(
            Config.from_flat(tuple(cells), self.n_locs, self.n_vars, rounds)
        )

    def initial_configs(
        self, process_filter: Optional[Mapping[str, int]] = None
    ) -> Iterator[Config]:
        """Enumerate initial configurations (§III-C).

        All processes and the coin sit in start locations of round 0 and
        every variable is 0.  ``process_filter`` optionally pins the
        number of processes in specific start locations (e.g. ``{"J1": 0}``
        to model "no process proposes 1").
        """
        names = [loc.name for loc in self.process_start]
        if not names:
            raise SemanticsError("process automaton has no start locations")
        for split in _compositions(self.n_processes, len(names)):
            placement = dict(zip(names, split))
            if process_filter is not None and any(
                placement.get(k, 0) != v for k, v in process_filter.items()
            ):
                continue
            if self.n_coins:
                coin_names = [loc.name for loc in self.coin_start]
                for coin_split in _compositions(self.n_coins, len(coin_names)):
                    full = dict(placement)
                    full.update(zip(coin_names, coin_split))
                    yield self.make_config(full)
            else:
                yield self.make_config(placement)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def guard_holds(self, config: Config, rule: CompiledRule, round_no: int) -> bool:
        """Does the rule's guard evaluate to true in ``round_no``?"""
        guard = rule.guard_flat
        if not guard:
            return True
        if round_no >= config.rounds:
            # Beyond the horizon every variable reads 0.
            for _lhs, cmp, rhs in guard:
                if cmp is Cmp.GE:
                    if 0 < rhs:
                        return False
                elif 0 >= rhs:
                    return False
            return True
        base = round_no * self.block
        data = config.data
        for lhs, cmp, rhs in guard:
            total = 0
            for offset, coeff in lhs:
                total += coeff * data[base + offset]
            if cmp is Cmp.GE:
                if total < rhs:
                    return False
            else:
                if total >= rhs:
                    return False
        return True

    def is_applicable(self, config: Config, action: Action) -> bool:
        """Unlocked guard and a non-empty source counter (§III-C)."""
        rule = self.rules.get(action.rule)
        if rule is None:
            return False
        if config.counter(action.round, rule.source) < 1:
            return False
        return self.guard_holds(config, rule, action.round)

    def enabled_actions(
        self, config: Config, include_stutters: bool = True
    ) -> List[Action]:
        """All applicable actions of the derandomized system.

        Every branch of a non-Dirac coin rule becomes its own action
        (Definition 1).  When ``include_stutters`` is False, actions that
        provably leave the configuration unchanged (trivial self-loops)
        are omitted — convenient for state-space exploration.
        """
        actions: List[Action] = []
        for rule, round_no in self._enabled_rule_rounds(config, include_stutters):
            if rule.is_dirac:
                actions.append(Action(rule.name, round_no))
            else:
                for target in rule.branch_names:
                    actions.append(Action(rule.name, round_no, target))
        return actions

    def _enabled_rule_rounds(
        self, config: Config, include_stutters: bool
    ) -> Iterator[Tuple[CompiledRule, int]]:
        """Applicable ``(rule, round)`` pairs, rule-major then by round.

        The single source of truth for enumeration order:
        :meth:`enabled_actions` and :meth:`successor_groups` both
        consume it, so flattening the memoised groups reproduces the
        action order exactly (BFS exploration order — and therefore
        ``states_explored`` on early exit — depends on it).
        """
        data = config.data
        block = self.block
        rounds = config.rounds
        for rule in self._rule_list:
            if not include_stutters and rule.stutter:
                continue
            source = rule.source
            for round_no in range(rounds):
                if data[round_no * block + source] < 1:
                    continue
                if not self.guard_holds(config, rule, round_no):
                    continue
                yield rule, round_no

    def apply_unchecked(
        self, config: Config, rule: CompiledRule, round_no: int,
        dst_index: Optional[int] = None,
    ) -> Config:
        """Execute ``rule`` in ``round_no`` without re-checking guards.

        The caller guarantees applicability (e.g. the rule was just
        enumerated by :meth:`enabled_actions` or
        :meth:`successor_groups`); only the source counter is still
        asserted (cheaply) inside :meth:`Config.apply_move`.  The
        successor is interned.
        """
        if dst_index is None:
            dst_index = rule.branches[0][0]
        dst_round = round_no + 1 if rule.is_round_switch else round_no
        block = self.block
        base = round_no * block
        if rule.update_offsets:
            updates = [(base + off, incr) for off, incr in rule.update_offsets]
        else:
            updates = ()
        succ = config.apply_move(
            dst_round + 1,
            base + rule.source,
            dst_round * block + dst_index,
            updates,
        )
        return self.intern(succ)

    def apply(self, config: Config, action: Action) -> Config:
        """Execute one action of the non-probabilistic system."""
        rule = self.rules[action.rule]
        if not self.is_applicable(config, action):
            raise SemanticsError(f"action {action} is not applicable")
        if rule.is_dirac:
            dst = rule.branches[0][0]
        else:
            if action.branch is None:
                raise SemanticsError(
                    f"action {action} must pick a branch of non-Dirac rule "
                    f"{rule.name!r}"
                )
            dst = self.loc_index[action.branch]
            if dst not in [b for b, _ in rule.branches]:
                raise SemanticsError(
                    f"{action.branch!r} is not a branch of rule {rule.name!r}"
                )
        return self.apply_unchecked(config, rule, action.round, dst)

    def successor_groups(self, config: Config) -> Tuple[MoveGroup, ...]:
        """Memoised non-stutter successors, grouped by ``(rule, round)``.

        Each group is one adversary move; its entries are the coin
        branches of that move (a single entry for Dirac/process rules).
        Groups are ordered rule-major then by round — flattening them
        reproduces the order of
        ``enabled_actions(config, include_stutters=False)`` exactly,
        which keeps BFS exploration order (and therefore
        ``states_explored`` on early-exit) identical to the pre-interned
        engine.  The cache is shared by every query run on this system
        and keyed by the *interned configuration itself* (cached hash +
        identity fast path) — never by :attr:`Config.intern_id`, which
        a different system may have stamped.
        """
        config = self.intern(config)
        cached = self._succ_cache.get(config)
        if cached is not None:
            return cached
        groups: List[MoveGroup] = []
        for rule, round_no in self._enabled_rule_rounds(config, False):
            if rule.is_dirac:
                groups.append((
                    (
                        Action(rule.name, round_no),
                        self.apply_unchecked(config, rule, round_no),
                    ),
                ))
            else:
                groups.append(tuple(
                    (
                        Action(rule.name, round_no, name),
                        self.apply_unchecked(config, rule, round_no, dst),
                    )
                    for name, (dst, _prob) in zip(rule.branch_names, rule.branches)
                ))
        result = tuple(groups)
        self._bounded_insert(self._succ_cache, config, result)
        return result

    @classmethod
    def _bounded_insert(cls, cache: Dict, key, value) -> None:
        """Insert with FIFO eviction of the oldest quarter at the cap.

        The one eviction policy shared by the successor-group and
        rule-option caches (approximate LRU, bounded by
        :attr:`SUCCESSOR_CACHE_CAP`).
        """
        if len(cache) >= cls.SUCCESSOR_CACHE_CAP:
            for stale in list(itertools.islice(iter(cache), len(cache) // 4)):
                del cache[stale]
        cache[key] = value

    def rule_options(self, config: Config) -> Tuple[Action, ...]:
        """Memoised adversary moves: enabled non-stutter ``(rule, round)``
        pairs as branch-less actions (the coin outcome stays hidden).

        This is the adversary-facing view the MDP sampler offers on
        every step (§III-E): one action per move group of
        :meth:`successor_groups`, in the same order.  Memoising it per
        interned configuration removes the per-step dict churn the old
        sampler paid to dedup ``enabled_actions`` branches — revisited
        configurations (the common case on long sampled paths) resolve
        their option tuple with a single dict hit.  Bounded like the
        successor cache and dropped on the same generation reset.
        """
        config = self.intern(config)
        cached = self._options_cache.get(config)
        if cached is not None:
            return cached
        options = tuple(
            Action(rule.name, round_no)
            for rule, round_no in self._enabled_rule_rounds(config, False)
        )
        self._bounded_insert(self._options_cache, config, options)
        return options

    def prob_transitions(
        self, config: Config, rule_name: str, round_no: int
    ) -> List[Tuple[Fraction, Config]]:
        """The MDP distribution ``Delta(c, (r, k))`` (§III-C)."""
        rule = self.rules[rule_name]
        if config.counter(round_no, rule.source) < 1 or not self.guard_holds(
            config, rule, round_no
        ):
            raise SemanticsError(f"rule {rule_name!r} not applicable in round {round_no}")
        return [
            (prob, self.apply_unchecked(config, rule, round_no, dst))
            for dst, prob in rule.branches
        ]

    # ------------------------------------------------------------------
    # Convenience for spec evaluation
    # ------------------------------------------------------------------
    def counter_of(self, config: Config, location: str, round_no: int = 0) -> int:
        return config.counter(round_no, self.loc_index[location])

    def value_of(self, config: Config, variable: str, round_no: int = 0) -> int:
        return config.variable(round_no, self.var_index[variable])

    def locations_named(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.loc_index[name] for name in names)


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` >= 0.

    Iterative odometer in lexicographic order (matching the recursive
    head-first enumeration it replaced, without the per-step tuple
    concatenation).
    """
    if parts == 0:
        if total == 0:
            yield ()
        return
    comp = [0] * parts
    comp[-1] = total
    while True:
        yield tuple(comp)
        # Lex successor: take 1 from the suffix sum right of position i,
        # bump comp[i], and park the remainder in the last slot.
        suffix = comp[-1]
        i = parts - 2
        while i >= 0:
            if suffix > 0:
                comp[i] += 1
                for j in range(i + 1, parts - 1):
                    comp[j] = 0
                comp[-1] = suffix - 1
                break
            suffix += comp[i]
            i -= 1
        else:
            return
