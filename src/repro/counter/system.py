"""Explicit counter-system semantics for a fixed parameter valuation.

Instantiating :class:`CounterSystem` with a :class:`~repro.core.system.
SystemModel` and an admissible parameter valuation yields the (finite
or lazily-unbounded) transition system of §III-C/D:

* the *non-probabilistic* view (Definition 1 applied on the fly):
  :meth:`enabled_actions` expands every branch of a non-Dirac coin rule
  into its own action, and :meth:`apply` executes one action;
* the *MDP* view: :meth:`prob_transitions` returns the distribution
  ``Delta(c, alpha)`` of a (possibly probabilistic) rule.

Both the multi-round system ``Sys^infty`` and single-round systems
``Sys_rd`` are served by the same class — a single-round model simply
never exercises round switches (Definition 3 removed them).

Fast state engine
-----------------
Configurations use the flat layout of :mod:`repro.counter.config`.  The
valuation-independent compilation — rules flattened to *flat block
offsets* (guard atoms, variable updates, source/target locations),
index maps, layout geometry — lives in a shared
:class:`~repro.counter.program.ProtocolProgram`; a ``CounterSystem`` is
the slim per-valuation *binding* of one program: it evaluates the guard
thresholds for its ``(n, t, f)`` and owns only the valuation-specific
state (automaton counts, intern table, successor/option caches).

* :meth:`intern` canonicalises configurations in a per-system table —
  equal states become pointer-equal, so explored-set lookups stop at
  the cached hash plus an identity check;
* :meth:`apply_unchecked` executes a rule without re-validating
  applicability (callers that just enumerated enabled rules already
  know it holds);
* :meth:`successor_groups` memoises the full successor structure of a
  configuration (grouped by ``(rule, round)`` move with one entry per
  coin branch) in a bounded FIFO cache shared by *all* queries run on
  the system — reach BFS, game construction and the fairness side
  conditions each hit the same cache;
* :meth:`batch_expander` serves the same cache from the other side:
  the frontier-batched vectorized expander of
  :mod:`repro.counter.batch` pre-fills ``_succ_cache`` for a whole BFS
  frontier with one numpy pass, producing bit-identical group tuples
  in the same rule-major/round order.

:func:`shared_system` additionally shares whole bound systems — and
therefore their warm successor caches — across checkers in one
process, keyed by ``(program, valuation)``; this is what lets a
persistent sweep worker reuse the explored graph across the tasks of
its shard.  The intern table itself lives one level up, on the shared
:class:`~repro.counter.program.ProtocolProgram` (configurations are
valuation-independent values, so canonicalisation happens once per
*structure*), and one level further out the persistent
:class:`~repro.counter.store.GraphStore` carries explored graphs
across *processes*: when a store is active, a cold ``shared_system``
warms itself from disk and :func:`flush_shared_graphs` persists what a
task grew.  Caches never change results (memoised successors are
exactly what cold expansion would produce), so sharing — in-process or
from disk — preserves bit-identical verdicts and ``states_explored``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.guards import Cmp
from repro.core.locations import Location
from repro.core.system import SystemModel
from repro.counter.actions import Action
from repro.counter.config import Config
from repro.counter.program import (
    CompiledGuard,
    CompiledRule,
    ProtocolProgram,
    bounded_insert,
    shared_program,
)
from repro.counter.store import InternTable, active_graph_store
from repro.errors import SemanticsError

__all__ = [
    "CompiledGuard",
    "CompiledRule",
    "CounterSystem",
    "clear_shared_caches",
    "flush_shared_graphs",
    "shared_system",
]

#: One adversary move: every coin branch of one ``(rule, round)`` pair.
MoveGroup = Tuple[Tuple[Action, Config], ...]


class CounterSystem:
    """Counter-system semantics of a model under a parameter valuation."""

    #: Bound on the memoised successor cache (entries, not bytes).
    SUCCESSOR_CACHE_CAP = 1 << 20
    #: Bound on the (program-shared) intern table; far above any
    #: max_states budget a checker uses, so only open-ended workloads
    #: (sampling) recycle.
    INTERN_TABLE_CAP = InternTable.CAP

    def __init__(
        self,
        model: SystemModel,
        valuation: Mapping[str, int],
        program: Optional[ProtocolProgram] = None,
        intern_table: Optional[InternTable] = None,
    ):
        self.model = model
        self.valuation = dict(valuation)
        env = model.environment
        self.n_processes, self.n_coins = env.system_size(valuation)
        if model.coin is None:
            self.n_coins = 0

        # ---- shared compiled program ------------------------------------
        self.program = program if program is not None else shared_program(model)
        p = self.program
        self.locations: Tuple[Location, ...] = p.locations
        self.location_owner: Tuple[str, ...] = p.location_owner
        self.loc_index: Dict[str, int] = p.loc_index
        self.variables: Tuple[str, ...] = p.variables
        self.var_index: Dict[str, int] = p.var_index
        self.n_locs = p.n_locs
        self.n_vars = p.n_vars
        #: Cells per round in the flat layout: ``kappa row | g row``.
        self.block = p.block
        self.process_start = p.process_start
        self.coin_start = p.coin_start

        # ---- rules bound to this valuation ------------------------------
        self.rules, self._rule_list = p.bind_rules(valuation)

        # ---- state intern table / successor memo ------------------------
        # The intern table defaults to the *program's* (one per
        # structure, shared by every valuation — Config tuples are
        # valuation-independent); the successor/option caches are per
        # valuation because guard truth depends on the bound
        # thresholds.  The system registers as a dependent so a
        # shared-table generation reset drops its derived caches too.
        # Callers with throwaway valuations (the parameterized
        # checker's counterexample replay) pass a private
        # ``intern_table=`` so their configs never pin the
        # program-lifetime shared table.
        self._intern_table = (
            intern_table if intern_table is not None else p.intern_table
        )
        self._intern: Dict[Config, Config] = self._intern_table.table
        self._succ_cache: Dict[Config, Tuple[MoveGroup, ...]] = {}
        self._options_cache: Dict[Config, Tuple[Action, ...]] = {}
        #: Monotone stamp of destructive cache events (FIFO eviction,
        #: intern generation reset); the graph store keys its
        #: delta/skip flush bookkeeping on (epoch, lengths).
        self._cache_epoch = 0
        #: Lazily-bound frontier batch expander (see :meth:`batch_expander`).
        self._batch_expander = None
        self._intern_table.register(self)

    def cache_state(self) -> Tuple[int, int, int]:
        """``(cache epoch, succ entries, option entries)`` right now.

        The triple the persistent graph store keys its flush
        bookkeeping on: unchanged lengths at an unchanged epoch mean
        nothing new to persist, grown lengths at an unchanged epoch
        delimit exactly the delta to append, and an epoch bump (a
        destructive cache event — FIFO eviction or intern-table
        generation reset — may shrink or churn contents without moving
        the lengths) voids any delta baseline.
        """
        return (
            self._cache_epoch,
            len(self._succ_cache),
            len(self._options_cache),
        )

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def intern(self, config: Config) -> Config:
        """Canonical instance of ``config`` for this system's program.

        Equal configurations intern to the same object, so explored-set
        membership tests short-circuit on identity (dict lookups stop
        at the cached hash plus an ``is`` check).  The table belongs to
        the shared :class:`~repro.counter.program.ProtocolProgram`, so
        every valuation of one protocol canonicalises into the same
        dict.  Interning is purely an optimisation — no caller may rely
        on identity for *semantics*, because the table is cleared (with
        the derived caches of every dependent system) once it reaches
        :attr:`INTERN_TABLE_CAP`, which keeps unbounded workloads like
        long MDP sampling runs from pinning every configuration they
        ever visited.

        :attr:`Config.intern_id` is a diagnostic stamp from the first
        table that interned the object; it is *not* used as a cache
        key (a config may be interned by several tables).
        """
        canonical = self._intern.get(config)
        if canonical is not None:
            return canonical
        if len(self._intern) >= self.INTERN_TABLE_CAP:
            # Generation reset: the shared table and every dependent
            # system's successor/option caches drop together so cached
            # groups never outlive their canonical configs.
            self._intern_table.reset()
        if config.intern_id < 0:
            config.intern_id = len(self._intern)
        self._intern[config] = config
        return config

    def make_config(
        self, placement: Mapping[str, int], variables: Optional[Mapping[str, int]] = None,
        rounds: int = 1,
    ) -> Config:
        """Build a configuration by location name (tests / examples).

        Unmentioned locations hold 0 automata; unmentioned variables are 0.
        """
        cells = [0] * (rounds * self.block)
        for name, count in placement.items():
            cells[self.loc_index[name]] = count
        for name, value in (variables or {}).items():
            cells[self.n_locs + self.var_index[name]] = value
        return self.intern(
            Config.from_flat(tuple(cells), self.n_locs, self.n_vars, rounds)
        )

    def initial_configs(
        self, process_filter: Optional[Mapping[str, int]] = None
    ) -> Iterator[Config]:
        """Enumerate initial configurations (§III-C).

        All processes and the coin sit in start locations of round 0 and
        every variable is 0.  ``process_filter`` optionally pins the
        number of processes in specific start locations (e.g. ``{"J1": 0}``
        to model "no process proposes 1").
        """
        names = [loc.name for loc in self.process_start]
        if not names:
            raise SemanticsError("process automaton has no start locations")
        coin_names = [loc.name for loc in self.coin_start]
        for split in _compositions(self.n_processes, len(names)):
            placement = dict(zip(names, split))
            if process_filter is not None and any(
                placement.get(k, 0) != v for k, v in process_filter.items()
            ):
                continue
            if self.n_coins:
                for coin_split in _compositions(self.n_coins, len(coin_names)):
                    full = dict(placement)
                    full.update(zip(coin_names, coin_split))
                    yield self.make_config(full)
            else:
                yield self.make_config(placement)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def guard_holds(self, config: Config, rule: CompiledRule, round_no: int) -> bool:
        """Does the rule's guard evaluate to true in ``round_no``?"""
        guard = rule.guard_flat
        if not guard:
            return True
        if round_no >= config.rounds:
            # Beyond the horizon every variable reads 0.
            for _lhs, cmp, rhs in guard:
                if cmp is Cmp.GE:
                    if 0 < rhs:
                        return False
                elif 0 >= rhs:
                    return False
            return True
        base = round_no * self.block
        data = config.data
        for lhs, cmp, rhs in guard:
            total = 0
            for offset, coeff in lhs:
                total += coeff * data[base + offset]
            if cmp is Cmp.GE:
                if total < rhs:
                    return False
            else:
                if total >= rhs:
                    return False
        return True

    def is_applicable(self, config: Config, action: Action) -> bool:
        """Unlocked guard and a non-empty source counter (§III-C)."""
        rule = self.rules.get(action.rule)
        if rule is None:
            return False
        if config.counter(action.round, rule.source) < 1:
            return False
        return self.guard_holds(config, rule, action.round)

    def enabled_actions(
        self, config: Config, include_stutters: bool = True
    ) -> List[Action]:
        """All applicable actions of the derandomized system.

        Every branch of a non-Dirac coin rule becomes its own action
        (Definition 1).  When ``include_stutters`` is False, actions that
        provably leave the configuration unchanged (trivial self-loops)
        are omitted — convenient for state-space exploration.
        """
        actions: List[Action] = []
        for rule, round_no in self._enabled_rule_rounds(config, include_stutters):
            if rule.is_dirac:
                actions.append(Action(rule.name, round_no))
            else:
                for target in rule.branch_names:
                    actions.append(Action(rule.name, round_no, target))
        return actions

    def _enabled_rule_rounds(
        self, config: Config, include_stutters: bool
    ) -> Iterator[Tuple[CompiledRule, int]]:
        """Applicable ``(rule, round)`` pairs, rule-major then by round.

        The single source of truth for enumeration order:
        :meth:`enabled_actions` and :meth:`successor_groups` both
        consume it, so flattening the memoised groups reproduces the
        action order exactly (BFS exploration order — and therefore
        ``states_explored`` on early exit — depends on it).
        """
        data = config.data
        block = self.block
        rounds = config.rounds
        for rule in self._rule_list:
            if not include_stutters and rule.stutter:
                continue
            source = rule.source
            for round_no in range(rounds):
                if data[round_no * block + source] < 1:
                    continue
                if not self.guard_holds(config, rule, round_no):
                    continue
                yield rule, round_no

    def apply_unchecked(
        self, config: Config, rule: CompiledRule, round_no: int,
        dst_index: Optional[int] = None,
    ) -> Config:
        """Execute ``rule`` in ``round_no`` without re-checking guards.

        The caller guarantees applicability (e.g. the rule was just
        enumerated by :meth:`enabled_actions` or
        :meth:`successor_groups`); only the source counter is still
        asserted (cheaply) inside :meth:`Config.apply_move`.  The
        successor is interned.
        """
        if dst_index is None:
            dst_index = rule.branches[0][0]
        dst_round = round_no + 1 if rule.is_round_switch else round_no
        block = self.block
        base = round_no * block
        if rule.update_offsets:
            updates = [(base + off, incr) for off, incr in rule.update_offsets]
        else:
            updates = ()
        succ = config.apply_move(
            dst_round + 1,
            base + rule.source,
            dst_round * block + dst_index,
            updates,
        )
        return self.intern(succ)

    def apply(self, config: Config, action: Action) -> Config:
        """Execute one action of the non-probabilistic system."""
        rule = self.rules[action.rule]
        if not self.is_applicable(config, action):
            raise SemanticsError(f"action {action} is not applicable")
        if rule.is_dirac:
            dst = rule.branches[0][0]
        else:
            if action.branch is None:
                raise SemanticsError(
                    f"action {action} must pick a branch of non-Dirac rule "
                    f"{rule.name!r}"
                )
            dst = self.loc_index[action.branch]
            if dst not in [b for b, _ in rule.branches]:
                raise SemanticsError(
                    f"{action.branch!r} is not a branch of rule {rule.name!r}"
                )
        return self.apply_unchecked(config, rule, action.round, dst)

    def successor_groups(self, config: Config) -> Tuple[MoveGroup, ...]:
        """Memoised non-stutter successors, grouped by ``(rule, round)``.

        Each group is one adversary move; its entries are the coin
        branches of that move (a single entry for Dirac/process rules).
        Groups are ordered rule-major then by round — flattening them
        reproduces the order of
        ``enabled_actions(config, include_stutters=False)`` exactly,
        which keeps BFS exploration order (and therefore
        ``states_explored`` on early-exit) identical to the pre-interned
        engine.  The cache is shared by every query run on this system
        and keyed by the *interned configuration itself* (cached hash +
        identity fast path) — never by :attr:`Config.intern_id`, which
        a different system may have stamped.
        """
        config = self.intern(config)
        cached = self._succ_cache.get(config)
        if cached is not None:
            return cached
        groups: List[MoveGroup] = []
        for rule, round_no in self._enabled_rule_rounds(config, False):
            if rule.is_dirac:
                groups.append((
                    (
                        Action(rule.name, round_no),
                        self.apply_unchecked(config, rule, round_no),
                    ),
                ))
            else:
                groups.append(tuple(
                    (
                        Action(rule.name, round_no, name),
                        self.apply_unchecked(config, rule, round_no, dst),
                    )
                    for name, (dst, _prob) in zip(rule.branch_names, rule.branches)
                ))
        result = tuple(groups)
        self._memo_insert(self._succ_cache, config, result)
        return result

    @classmethod
    def _bounded_insert(cls, cache: Dict, key, value, on_evict=None) -> None:
        """Insert with FIFO eviction of the oldest quarter at the cap.

        Delegates to :func:`repro.counter.program.bounded_insert` with
        :attr:`SUCCESSOR_CACHE_CAP` — the one eviction policy shared by
        the successor-group and rule-option caches.  Hits do **not**
        refresh a key's position — this is plain FIFO, not LRU: a
        long-lived hot entry is evicted once it ages into the oldest
        quarter, and simply re-inserted on the next miss.  That trade
        keeps the hit path a single dict lookup, which is what the hot
        loops care about.
        """
        bounded_insert(cache, key, value, cls.SUCCESSOR_CACHE_CAP, on_evict)

    def _memo_insert(self, cache: Dict, key, value) -> None:
        """Bounded insert into a memo cache, stamping the epoch on evict.

        Eviction changes cache *contents* without growing the lengths,
        so the graph store's skip-if-unchanged flush bookkeeping keys
        on ``(epoch, lengths)``; routing the bump through
        ``bounded_insert``'s own eviction notification keeps it correct
        under any future policy change.
        """
        self._bounded_insert(cache, key, value, self._note_eviction)

    def _note_eviction(self, _evicted: int) -> None:
        self._cache_epoch += 1

    def batch_expander(self):
        """This system's frontier batch expander, or ``None`` sans numpy.

        Bound lazily once per system (the plan itself is shared on the
        program); callers that resolved the scalar expansion path never
        trigger the numpy import.  The expander fills the very same
        ``_succ_cache`` the scalar :meth:`successor_groups` reads, with
        bit-identical group tuples — see :mod:`repro.counter.batch` for
        the order-preservation contract.
        """
        expander = self._batch_expander
        if expander is None:
            from repro.counter.batch import expander_for

            expander = expander_for(self)
            self._batch_expander = expander
        return expander

    def rule_options(self, config: Config) -> Tuple[Action, ...]:
        """Memoised adversary moves: enabled non-stutter ``(rule, round)``
        pairs as branch-less actions (the coin outcome stays hidden).

        This is the adversary-facing view the MDP sampler offers on
        every step (§III-E): one action per move group of
        :meth:`successor_groups`, in the same order.  Memoising it per
        interned configuration removes the per-step dict churn the old
        sampler paid to dedup ``enabled_actions`` branches — revisited
        configurations (the common case on long sampled paths) resolve
        their option tuple with a single dict hit.  Bounded like the
        successor cache and dropped on the same generation reset.
        """
        config = self.intern(config)
        cached = self._options_cache.get(config)
        if cached is not None:
            return cached
        options = tuple(
            Action(rule.name, round_no)
            for rule, round_no in self._enabled_rule_rounds(config, False)
        )
        self._memo_insert(self._options_cache, config, options)
        return options

    def prob_transitions(
        self, config: Config, rule_name: str, round_no: int
    ) -> List[Tuple[Fraction, Config]]:
        """The MDP distribution ``Delta(c, (r, k))`` (§III-C)."""
        rule = self.rules[rule_name]
        if config.counter(round_no, rule.source) < 1 or not self.guard_holds(
            config, rule, round_no
        ):
            raise SemanticsError(f"rule {rule_name!r} not applicable in round {round_no}")
        return [
            (prob, self.apply_unchecked(config, rule, round_no, dst))
            for dst, prob in rule.branches
        ]

    # ------------------------------------------------------------------
    # Convenience for spec evaluation
    # ------------------------------------------------------------------
    def counter_of(self, config: Config, location: str, round_no: int = 0) -> int:
        return config.counter(round_no, self.loc_index[location])

    def value_of(self, config: Config, variable: str, round_no: int = 0) -> int:
        return config.variable(round_no, self.var_index[variable])

    def locations_named(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.loc_index[name] for name in names)


# ----------------------------------------------------------------------
# Process-wide bound-system sharing
# ----------------------------------------------------------------------
class _SystemCache:
    """Bound systems kept warm across checkers, keyed by (program, valuation).

    The cap bounds *entries*, not bytes, and a cached system can own a
    large explored graph (intern table + successor cache), so it is
    deliberately small: the reuse it targets is short-range — the
    obligation targets of one task and the consecutive same-valuation
    tasks of a sweep shard — and FIFO eviction retires systems shortly
    after a shard moves to its next valuation.  Workloads that need
    private lifetimes construct :class:`CounterSystem` directly (the
    parameterized checker's replay path does exactly that).
    """

    #: Distinct (program, valuation) systems kept alive (FIFO evicted).
    CAP = 8

    def __init__(self) -> None:
        self._systems: Dict[tuple, CounterSystem] = {}

    def get(self, model: SystemModel, valuation: Mapping[str, int]) -> CounterSystem:
        program = shared_program(model)
        key = (program.key, tuple(sorted(valuation.items())))
        system = self._systems.get(key)
        store = active_graph_store()
        if system is None:
            system = CounterSystem(model, valuation, program=program)
            if store is not None:
                # Warm the fresh system from the persistent graph store
                # (results-neutral: stored graphs are exactly what cold
                # expansion produces; a bad entry is just a cold miss).
                store.load_into(system)
            bounded_insert(self._systems, key, system, self.CAP)
        if store is not None:
            # Adoption scopes flushing: only systems actually served
            # while this store was active are persisted by it — warm
            # leftovers of earlier unrelated runs never leak in.
            store.adopt(system)
        return system

    def clear(self) -> None:
        self._systems.clear()


_SYSTEM_CACHE = _SystemCache()


def shared_system(
    model: SystemModel, valuation: Mapping[str, int]
) -> CounterSystem:
    """A process-wide shared :class:`CounterSystem` for (model, valuation).

    Keyed by *structural* model identity (via
    :func:`~repro.counter.program.shared_program`) plus the valuation,
    so repeated checker constructions — the obligation targets of one
    task, or every task of a sweep shard running in one persistent
    worker — reuse both the compiled program *and* the warm
    intern/successor caches.  Sharing is results-neutral: memoised
    successors are exactly what cold expansion would produce, so
    verdicts and ``states_explored`` stay bit-identical.  Callers that
    need private caches (e.g. tests poking cache internals) construct
    :class:`CounterSystem` directly.
    """
    return _SYSTEM_CACHE.get(model, valuation)


def flush_shared_graphs() -> int:
    """Flush the active store's *adopted* systems' graphs to disk.

    The persistence hook of a sweep worker: called after each task (and
    on shard completion) so the graphs grown by this process survive
    it.  Only systems served through :func:`shared_system` while the
    store was active are flushed — never whatever unrelated warm
    systems happen to sit in the process-wide cache.  A no-op without
    an active :func:`~repro.counter.store.activate_graph_store`;
    unchanged graphs are skipped inside :meth:`~repro.counter.store.
    GraphStore.flush`.  Returns the number of entries written.
    Best-effort by construction — flush failures are recorded on the
    store, never raised.
    """
    store = active_graph_store()
    if store is None:
        return 0
    return store.flush_adopted()


def clear_shared_caches() -> None:
    """Drop shared systems *and* compiled programs (cold-start path).

    Dropping the programs also drops their shared intern tables, so
    this really is the cold-start state a fresh process sees (minus an
    active graph store, which deliberately survives — it is the
    cross-process layer).
    """
    from repro.counter.program import clear_program_cache

    _SYSTEM_CACHE.clear()
    clear_program_cache()


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` >= 0.

    Iterative odometer in lexicographic order (matching the recursive
    head-first enumeration it replaced, without the per-step tuple
    concatenation).
    """
    if parts == 0:
        if total == 0:
            yield ()
        return
    comp = [0] * parts
    comp[-1] = total
    while True:
        yield tuple(comp)
        # Lex successor: take 1 from the suffix sum right of position i,
        # bump comp[i], and park the remainder in the last slot.
        suffix = comp[-1]
        i = parts - 2
        while i >= 0:
            if suffix > 0:
                comp[i] += 1
                for j in range(i + 1, parts - 1):
                    comp[j] = 0
                comp[-1] = suffix - 1
                break
            suffix += comp[i]
            i -= 1
        else:
            return
