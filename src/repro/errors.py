"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one type.  Sub-hierarchies mirror the package
layout: modelling errors (building automata), semantic errors (counter
systems), solver errors and checker errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """Raised when an automaton, environment or system model is ill-formed."""


class ValidationError(ModelError):
    """Raised when a structural validation rule from the paper is violated.

    Examples: ``|B| != |I|``, a rule guard mixing shared and coin
    variables, a process rule updating a coin variable, or a non-canonical
    automaton (a rule on a cycle with a non-zero update).
    """


class SemanticsError(ReproError):
    """Raised for misuse of counter-system semantics.

    Examples: applying a non-applicable action, evaluating a guard against
    an incomplete valuation, or indexing a round that a configuration does
    not track.
    """


class SolverError(ReproError):
    """Raised when the linear-arithmetic solver is given bad input."""


class UnboundedError(SolverError):
    """Raised when an optimization problem is unbounded."""


class CheckError(ReproError):
    """Raised for invalid verification queries or inconsistent results."""


class DeadlineExceeded(ReproError):
    """Raised when a wall-clock deadline expires inside an exploration.

    Carriers of a ``max_seconds`` budget (the fairness side conditions)
    raise this instead of returning a verdict; callers record the work
    as not-established-within-budget rather than failed.
    """


class StateBudgetExceeded(ReproError):
    """Raised when a ``max_states`` budget overflows inside a side
    condition — the exploration is incomplete, so neither ``True`` nor
    ``False`` would be honest."""


__all__ = [
    "CheckError",
    "DeadlineExceeded",
    "StateBudgetExceeded",
    "ModelError",
    "ReproError",
    "SemanticsError",
    "SolverError",
    "UnboundedError",
    "ValidationError",
]
