"""Regeneration harness for the paper's tables and figures."""

from repro.harness.experiments import REGISTRY, Experiment, run_all, run_experiment
from repro.harness.paper_data import TABLE_II, TABLE_IV, PaperRow, paper_row
from repro.harness.tables import (
    Table2Cell,
    Table2Row,
    format_table,
    table1,
    table2,
    table2_comparison,
    table3,
    table4,
)

__all__ = [
    "Experiment",
    "PaperRow",
    "REGISTRY",
    "TABLE_II",
    "TABLE_IV",
    "Table2Cell",
    "Table2Row",
    "format_table",
    "paper_row",
    "run_all",
    "run_experiment",
    "table1",
    "table2",
    "table2_comparison",
    "table3",
    "table4",
]
