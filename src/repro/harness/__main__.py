"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness              # list experiments
    python -m repro.harness table4       # one experiment
    python -m repro.harness all          # all quick experiments
    python -m repro.harness all --slow   # include Table II (minutes)
"""

from __future__ import annotations

import sys

from repro.harness.experiments import REGISTRY, run_all, run_experiment


def main(argv) -> int:
    if len(argv) < 2:
        print("experiments:")
        for ident in sorted(REGISTRY):
            experiment = REGISTRY[ident]
            slow = " (slow)" if experiment.slow else ""
            print(f"  {ident:16s} {experiment.description}{slow}")
        return 0
    target = argv[1]
    if target == "all":
        print(run_all(include_slow="--slow" in argv))
        return 0
    print(run_experiment(target))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
