"""CLI: verification front end + regeneration of the paper's artifacts.

Usage::

    python -m repro.harness                       # list experiments
    python -m repro.harness table4                # one experiment
    python -m repro.harness all [--slow]          # all quick experiments

    # the repro.api front end
    python -m repro.harness verify mmr14 --json
    python -m repro.harness verify mmr14 --valuation n=4,t=1,f=1 \
        --engine explicit --target termination
    python -m repro.harness verify cc85a --coin disagreeing:1/8
    python -m repro.harness sweep --protocols cc85a,ks16 \
        --coin perfect --coin biased:1/4 --targets agreement
    python -m repro.harness sweep --processes 4 --targets validity \
        --cache-dir .repro-cache --graph-store .repro-cache/graphs --json
    python -m repro.harness sweep --graph-store sqlite:graphs.db --json

    # crash-resilient fleets: supervised timeouts, bounded retries,
    # and resuming an interrupted sweep from its journal
    python -m repro.harness sweep --processes 4 --task-timeout 300 \
        --retries 3 --cache-dir .repro-cache
    python -m repro.harness sweep --processes 4 --cache-dir .repro-cache \
        --resume

    # concurrent Monte Carlo fleets on the executable substrate
    python -m repro.harness simulate mmr14 --runs 2000 --json
    python -m repro.harness simulate cc85b --coin biased:1/4 \
        --processes 4 --runs 5000
    python -m repro.harness simulate mmr14 --scheduler adaptive \
        --runs 50 --max-steps 4000

    # verification as a service: a long-running daemon over one warm
    # worker fleet, and thin-client runs against it
    python -m repro.harness serve --port 8123 --processes 4 \
        --cache-dir .repro-service
    python -m repro.harness verify mmr14 --server http://127.0.0.1:8123
    python -m repro.harness sweep --server http://127.0.0.1:8123 --json

    # on-disk cache maintenance (result cache + state-graph store);
    # --dir takes a directory or a sqlite:<path> store URI
    python -m repro.harness cache info    --dir .repro-cache
    python -m repro.harness cache prune   --dir .repro-cache
    python -m repro.harness cache compact --dir sqlite:graphs.db
    python -m repro.harness cache clear   --dir .repro-cache
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import api
from repro import service as service_api
from repro.counter.store import (
    STALE_TEMP_SECONDS,
    GraphStore,
    LocalDirBackend,
    as_backend,
    compact_backend,
    key_version,
)
from repro.core.coinspec import parse_coin_spec
from repro.errors import ValidationError
from repro.harness.experiments import REGISTRY, run_all, run_experiment
from repro.protocols.registry import names as protocol_names


def _parse_valuation(text: str) -> Dict[str, int]:
    """``"n=4,t=1,f=1"`` → ``{"n": 4, "t": 1, "f": 1}``."""
    valuation = {}
    for pair in text.split(","):
        key, sep, value = pair.partition("=")
        try:
            if not sep:
                raise ValueError
            valuation[key.strip()] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad valuation component {pair!r}; want name=int"
            ) from None
    return valuation


def _parse_coin(text: str):
    """``"perfect"`` / ``"biased:1/4"`` / ... -> a CoinSpec."""
    try:
        return parse_coin_spec(text)
    except ValidationError as exc:
        raise SystemExit(f"bad --coin {text!r}: {exc}") from None


def _limits(args: argparse.Namespace) -> api.Limits:
    return api.Limits(
        max_states=args.max_states,
        max_nodes=args.max_nodes,
        max_seconds=args.max_seconds,
    )


def _add_limit_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-states", type=int, default=None,
                        help="explicit engine: state budget per query")
    parser.add_argument("--max-nodes", type=int, default=None,
                        help="parameterized engine: schema-tree node budget")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget per obligation bundle")


def _cmd_verify(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness verify",
        description="Verify one benchmark protocol through repro.api.",
    )
    parser.add_argument("protocol",
                        help="registry name: " + ", ".join(protocol_names()))
    parser.add_argument("--valuation", type=_parse_valuation, default=None,
                        metavar="n=4,t=1,f=1",
                        help="parameters (default: the registry's smallest)")
    parser.add_argument("--engine", default="explicit",
                        choices=api.engine_names())
    parser.add_argument("--target", action="append", choices=api.TARGETS,
                        help="repeatable; default: all three properties")
    parser.add_argument("--coin", type=_parse_coin, default=None,
                        metavar="SPEC",
                        help="coin model the registry models are built "
                        "under: perfect (default), biased:P1, "
                        "failing:DELTA, disagreeing:RHO")
    parser.add_argument("--json", action="store_true",
                        help="emit the TaskResult as JSON")
    parser.add_argument("--cache-dir", default=None,
                        help="serve/store this task through the sweep's "
                        "on-disk result cache (identical re-runs answer "
                        "in milliseconds)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="run on a verification daemon instead of "
                        "locally (see 'serve'); caching then happens "
                        "server-side and --cache-dir is ignored")
    _add_limit_flags(parser)
    args = parser.parse_args(argv)

    if args.server:
        task = api.VerificationTask(
            protocol=args.protocol,
            valuation=args.valuation,
            targets=tuple(args.target) if args.target else (),
            engine=args.engine,
            limits=_limits(args),
            coin=args.coin,
        )
        try:
            result = service_api.ServiceClient(args.server).verify(task)
        except service_api.ServiceError as exc:
            print(f"verify --server: {exc}", file=sys.stderr)
            return 2
    else:
        result = api.verify(
            args.protocol,
            valuation=args.valuation,
            targets=tuple(args.target) if args.target else None,
            engine=args.engine,
            limits=_limits(args),
            coin=args.coin,
            cache_dir=args.cache_dir,
        )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result)
        if result.counterexample is not None:
            print(f"\ncounterexample: {result.counterexample}")
    return 0


def _cmd_sweep(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run a protocol x valuation x engine sweep in parallel.",
    )
    parser.add_argument("--protocols", default=None,
                        help="comma-separated registry names (default: all 8)")
    parser.add_argument("--engines", default="explicit",
                        help="comma-separated engines (default: explicit)")
    parser.add_argument("--targets", default=",".join(api.TARGETS),
                        help="comma-separated obligation targets")
    parser.add_argument("--valuation", action="append", type=_parse_valuation,
                        default=None, metavar="n=4,t=1,f=1",
                        help="repeatable: add a valuation to the matrix "
                        "(default: each protocol's smallest)")
    parser.add_argument("--coin", action="append", type=_parse_coin,
                        default=None, metavar="SPEC",
                        help="repeatable: add a coin model to the matrix "
                        "(perfect, biased:P1, failing:DELTA, "
                        "disagreeing:RHO; default: perfect only)")
    parser.add_argument("--processes", type=int, default=1,
                        help="worker pool size (1 = inline)")
    parser.add_argument("--scheduling", default="flat",
                        choices=api.SweepRunner.SCHEDULING_MODES,
                        help="flat: one task per pool job; sharded: group "
                        "tasks by protocol on persistent warm workers "
                        "(identical results, less recompilation)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory")
    parser.add_argument("--graph-store", default=None, metavar="STORE",
                        help="persistent state-graph store: a directory "
                        "(per-file layout) or sqlite:<path> (single-file "
                        "shared corpus); workers warm explored graphs "
                        "from it on startup and flush delta segments per "
                        "task (results stay bit-identical)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="supervisor-enforced wall clock per task: a "
                        "hung task gets its worker killed and is retried "
                        "or recorded as an error (the sweep continues)")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="ATTEMPTS",
                        help="max attempts per task for transient failures "
                        "(worker crash, timeout, max_seconds trip, I/O "
                        "error); default 3, 1 disables retrying")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="sweep journal file (default: "
                        "<cache-dir>/sweep-journal.jsonl when --cache-dir "
                        "is set); records every completed task")
    parser.add_argument("--resume", action="store_true",
                        help="serve completed tasks from the journal of a "
                        "previous identical sweep; only unfinished tasks "
                        "re-run (requires --cache-dir or --journal)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="run the matrix on a verification daemon "
                        "instead of locally (see 'serve'); execution "
                        "flags (--processes, --cache-dir, --graph-store, "
                        "--task-timeout, --retries, --journal, --resume, "
                        "--scheduling) then belong to the daemon and are "
                        "ignored here")
    parser.add_argument("--json", action="store_true",
                        help="emit the RunReport as JSON")
    _add_limit_flags(parser)
    args = parser.parse_args(argv)

    if args.server:
        ignored = [
            flag for flag, value in (
                ("--processes", args.processes != 1),
                ("--cache-dir", args.cache_dir is not None),
                ("--graph-store", args.graph_store is not None),
                ("--task-timeout", args.task_timeout is not None),
                ("--retries", args.retries is not None),
                ("--journal", args.journal is not None),
                ("--resume", args.resume),
                ("--scheduling", args.scheduling != "flat"),
            ) if value
        ]
        if ignored:
            print(f"sweep --server: ignoring local execution flags "
                  f"{', '.join(ignored)} (the daemon owns execution)",
                  file=sys.stderr)
        tasks = api.task_matrix(
            protocols=args.protocols.split(",") if args.protocols else None,
            valuations=args.valuation,
            engines=args.engines.split(","),
            targets=args.targets.split(","),
            limits=_limits(args),
            coins=tuple(args.coin) if args.coin else (None,),
        )
        try:
            report = service_api.ServiceClient(args.server).submit(tasks)
        except service_api.ServiceError as exc:
            print(f"sweep --server: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.summary())
        return 0 if report.verdict != "error" else 1

    report = api.sweep(
        protocols=args.protocols.split(",") if args.protocols else None,
        valuations=args.valuation,
        engines=args.engines.split(","),
        targets=args.targets.split(","),
        limits=_limits(args),
        coins=tuple(args.coin) if args.coin else None,
        processes=args.processes,
        cache_dir=args.cache_dir,
        scheduling=args.scheduling,
        graph_store=args.graph_store,
        task_timeout=args.task_timeout,
        retry=args.retries,
        journal=args.journal,
        resume=args.resume,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.verdict != "error" else 1


def _cmd_simulate(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness simulate",
        description="Run a concurrent Monte Carlo fleet of one protocol "
        "on the executable message-passing substrate and report the "
        "empirical termination statistics (seed-reproducible).",
    )
    parser.add_argument("protocol",
                        help="registry name: " + ", ".join(protocol_names()))
    parser.add_argument("--runs", type=int, default=1000,
                        help="fleet size (default: 1000 instances)")
    parser.add_argument("--coin", type=_parse_coin, default=None,
                        metavar="SPEC",
                        help="coin model: perfect (default), biased:P1, "
                        "failing:DELTA, disagreeing:RHO")
    parser.add_argument("--scheduler", default="random",
                        choices=("random", "adaptive"),
                        help="random delivery or the §II adaptive coin "
                        "attack (category C protocols only)")
    parser.add_argument("--max-steps", type=int, default=20_000,
                        help="delivery budget per instance")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; run i uses decorrelated streams "
                        "derived from seed + i")
    parser.add_argument("--processes", type=int, default=1,
                        help="shard the fleet over a supervised worker "
                        "pool (1 = one in-process asyncio runner)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full FleetReport as JSON")
    args = parser.parse_args(argv)

    from repro.sim.fleet import run_fleet
    try:
        report = run_fleet(
            args.protocol,
            coin=args.coin,
            runs=args.runs,
            scheduler=args.scheduler,
            max_steps=args.max_steps,
            base_seed=args.seed,
            processes=args.processes,
        )
    except (KeyError, ValueError) as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    summary = report.summary()
    lo, hi = summary["completion_ci99"]
    print(f"fleet          {report.protocol} coin={report.coin} "
          f"scheduler={report.scheduler} n={report.n} t={report.t}")
    print(f"runs           {summary['runs']} (base seed {report.base_seed}, "
          f"max {report.max_steps} deliveries each)")
    print(f"terminated     {summary['completed']} "
          f"({summary['completion']:.3f}, 99% CI [{lo:.3f}, {hi:.3f}])")
    expected = summary["expected_rounds"]
    elo, ehi = summary["expected_rounds_ci99"]
    if expected != float("inf"):
        print(f"expected round {expected:.2f} "
              f"(99% CI [{elo:.2f}, {ehi:.2f}], conditioned on "
              f"termination — read with the completion fraction)")
    print(f"violations     agreement={len(summary['agreement_violations'])} "
          f"validity={len(summary['validity_violations'])} "
          f"errors={len(summary['errors'])}")
    for point in summary["termination_curve"][:12]:
        bar = "#" * round(40 * point["p"])
        print(f"  round {point['round']:2d}  P={point['p']:.3f} "
              f"[{point['lo']:.3f}, {point['hi']:.3f}] {bar}")
    violations = (summary["agreement_violations"]
                  + summary["validity_violations"])
    return 1 if violations else 0


def _cmd_serve(argv: List[str]) -> int:
    """Run the verification daemon until SIGTERM/SIGINT."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Run the verification service: a long-running HTTP "
        "daemon over one persistent warm worker pool.  Clients submit "
        "task matrices (verify/sweep --server URL) and stream results "
        "as they complete; identical concurrent tasks are computed "
        "once, completed tasks are journaled for restart-and-resume.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8123,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--processes", type=int, default=2,
                        help="persistent worker pool size")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="state directory: on-disk result cache + "
                        "service journal + state file; omitting it runs "
                        "in-memory (no resume across restarts)")
    parser.add_argument("--graph-store", default=None, metavar="STORE",
                        help="persistent state-graph store for the "
                        "workers (directory or sqlite:<path>)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="supervisor-enforced wall clock per task")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="ATTEMPTS",
                        help="max attempts per task for transient "
                        "failures (default 3)")
    parser.add_argument("--coin", type=_parse_coin, default=None,
                        metavar="SPEC",
                        help="default coin model applied to submitted "
                        "tasks that carry none (perfect, biased:P1, "
                        "failing:DELTA, disagreeing:RHO)")
    parser.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="JSON FaultPlan to install in pool workers "
                        "(chaos drills against a live daemon)")
    args = parser.parse_args(argv)

    fault_plan = None
    if args.fault_plan:
        from repro.testing import FaultPlan
        try:
            fault_plan = FaultPlan.from_dict(
                json.loads(Path(args.fault_plan).read_text())
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"serve: bad --fault-plan {args.fault_plan}: {exc}",
                  file=sys.stderr)
            return 2
    return service_api.serve(
        host=args.host,
        port=args.port,
        processes=args.processes,
        state_dir=args.cache_dir,
        graph_store=args.graph_store,
        task_timeout=args.task_timeout,
        retry=args.retries,
        fault_plan=fault_plan,
        default_coin=args.coin,
    )


#: A ResultCache entry file name: the 32-hex-char task key + ``.json``.
_RESULT_ENTRY = re.compile(r"[0-9a-f]{32}\.json")


def _scan_cache(root: Path):
    """All cache artifacts under ``root``: results, graphs, temps,
    journals, service state.

    Only *key-shaped* ``.json`` files count as result entries — a cache
    root may also hold saved reports or other JSON the maintenance
    commands must never classify (and ``prune`` must never delete) as
    cache blobs.  Sweep journals (``sweep-journal.jsonl``) are listed
    separately: ``clear`` removes them, but ``prune`` leaves them alone
    (an interrupted sweep's resume data must survive maintenance).  The
    verification daemon's files (``service-journal.jsonl`` + the
    ``service-state.json`` breadcrumb) get the same treatment — a
    stopped daemon's journal is exactly what its restart resumes from.
    """
    if not root.exists():
        return [], [], [], [], []
    return (
        sorted(p for p in root.rglob("*.json")
               if _RESULT_ENTRY.fullmatch(p.name)),
        sorted(root.rglob("*.graph")),
        sorted(root.rglob("*.tmp")),
        sorted(root.rglob(api.SweepRunner.JOURNAL_NAME)),
        sorted(root.rglob(service_api.SERVICE_JOURNAL_NAME))
        + sorted(root.rglob(service_api.SERVICE_STATE_NAME)),
    )


def _cache_sqlite(action: str, spec: str) -> int:
    """Maintain a ``sqlite:<path>`` graph store through its backend.

    The single-file corpus has no temp files and no result blobs;
    maintenance is keys and segments: ``info`` summarises them,
    ``prune`` drops keys written under another code version,
    ``compact`` squashes each key's delta segments into one canonical
    snapshot, and ``clear`` drops everything.

    Maintenance must never *create* or *mutate* a store it merely
    inspects: a typo'd path must not materialise an empty database,
    and a foreign application database must not gain our table/index
    or be switched to WAL by a lazily-created read-write connection —
    so the file is probed strictly read-only before any backend
    operation, and a non-database file degrades to a diagnostic, not
    a traceback.
    """
    import sqlite3

    from repro.counter.store import SQLiteBackend

    backend = as_backend(spec)
    if not Path(backend.path).exists():
        print(f"cache store    {spec}  (no such store)")
        return 0 if action == "info" else 1
    probe = SQLiteBackend.probe(backend.path)
    if probe is None:
        print(f"cache store    {spec}  (unreadable: not a SQLite database)")
        return 1
    if not probe:
        print(f"cache store    {spec}  (not a graph store: "
              f"no segments table)")
        return 1
    current = api.code_version()
    try:
        stats = backend.stats()
    except sqlite3.Error as exc:
        print(f"cache store    {spec}  (unreadable: {exc})")
        return 1
    stale = [key for key in stats if key_version(key) != current]

    if action == "info":
        segments = sum(count for count, _size in stats.values())
        size = sum(size for _count, size in stats.values())
        print(f"cache store    {spec}  (code version {current})")
        print(f"graph keys     {len(stats):6d}  ({segments} segments, "
              f"{size:,} bytes, {len(stale)} stale)")
        for key in sorted(stats):
            count, size = stats[key]
            try:
                head = backend.head(key)
            except sqlite3.Error:
                head = None
            header = GraphStore.describe_blob(head) if head else None
            mark = "" if key_version(key) == current else "  [stale]"
            detail = ""
            if header:
                detail = (f": {header['model']} {dict(header['valuation'])}"
                          f" ({header['configs']} configs)")
            print(f"  key {key} ({count} segments, {size:,} bytes)"
                  f"{detail}{mark}")
        return 0

    if action == "compact":
        _print_compact_summary(compact_backend(backend), spec)
        return 0

    doomed = stale if action == "prune" else list(stats)
    try:
        removed = sum(backend.delete_key(key) for key in doomed)
    except sqlite3.Error as exc:
        print(f"{action}: failed under {spec}: {exc}")
        return 1
    print(f"{action}: removed {removed} segments "
          f"({len(doomed)} keys) under {spec}")
    return 0


def _print_compact_summary(stats: Dict[str, int], where) -> None:
    print(f"compact: {stats['compacted']} of {stats['keys']} keys "
          f"squashed, {stats['segments_before']} -> "
          f"{stats['segments_after']} segments, "
          f"{stats['bytes_before']:,} -> {stats['bytes_after']:,} bytes, "
          f"{stats['corrupt_dropped']} corrupt segments dropped, "
          f"{stats['errors']} errors under {where}")


def _compact_dirs(root: Path) -> int:
    """``cache compact`` over a directory tree: one backend per dir.

    Graph entries may live in any subdirectory of the cache root (e.g.
    ``<root>/graphs``); each directory holding ``*.graph`` files is
    compacted as its own :class:`LocalDirBackend`.
    """
    _results, graphs, _temps, _journals, _service = _scan_cache(root)
    totals = {"keys": 0, "compacted": 0, "segments_before": 0,
              "segments_after": 0, "bytes_before": 0, "bytes_after": 0,
              "corrupt_dropped": 0, "errors": 0}
    for parent in sorted({path.parent for path in graphs}):
        for field, value in compact_backend(LocalDirBackend(parent)).items():
            totals[field] += value
    _print_compact_summary(totals, root)
    return 0


def _cmd_cache(argv: List[str]) -> int:
    """Inspect / maintain the on-disk caches (results + state graphs).

    Both entry kinds carry the code version they were written under —
    result blobs embed ``_code_version``, graph files carry it in the
    file name — and ``prune`` judges staleness against the *current
    source digest*: entries written under any other version (including
    a deliberate custom ``cache_version=``) are dropped.  Caches keyed
    by custom versions should be managed manually or with ``clear``.
    ``info`` only reads; ``compact`` squashes each graph key's delta
    segments into one canonical snapshot (dropping corrupt segments).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cache",
        description="Maintain the on-disk result cache and state-graph "
        "store: info (read-only summary), prune (drop stale temp "
        "orphans and stale-version entries; live writers' temp files "
        "survive), compact (squash delta segments into canonical "
        "snapshots), clear (drop everything).",
    )
    parser.add_argument("action", choices=("info", "prune", "compact", "clear"))
    parser.add_argument("--dir", default=".repro-cache", metavar="STORE",
                        help="cache root to operate on — a directory "
                        "(scanned recursively) or a sqlite:<path> graph "
                        "store (default: .repro-cache)")
    args = parser.parse_args(argv)
    if args.dir.startswith("sqlite:"):
        return _cache_sqlite(args.action, args.dir)
    root = Path(args.dir)
    if args.action == "compact":
        return _compact_dirs(root)
    results, graphs, temps, journals, service_files = _scan_cache(root)
    current = api.code_version()

    def fresh(path: Path, version: Optional[str]) -> bool:
        return version == current

    stale_results = [p for p in results
                     if not fresh(p, api.ResultCache.entry_version(p))]
    stale_graphs = [p for p in graphs
                    if not fresh(p, GraphStore.entry_version(p))]

    if args.action == "info":
        def _bytes(paths):
            total = 0
            for path in paths:
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
            return total

        print(f"cache root     {root}  (code version {current})")
        print(f"result entries {len(results):6d}  "
              f"({_bytes(results):,} bytes, {len(stale_results)} stale)")
        print(f"graph entries  {len(graphs):6d}  "
              f"({_bytes(graphs):,} bytes, {len(stale_graphs)} stale)")
        print(f"temp orphans   {len(temps):6d}  ({_bytes(temps):,} bytes)")
        if journals:
            print(f"sweep journals {len(journals):6d}  "
                  f"({_bytes(journals):,} bytes)")
        if service_files:
            print(f"service files  {len(service_files):6d}  "
                  f"({_bytes(service_files):,} bytes)")
            for path in service_files:
                if path.name != service_api.SERVICE_STATE_NAME:
                    continue
                state = service_api.read_state_file(path.parent)
                if state:
                    print(f"  daemon pid {state.get('pid', '?')} on "
                          f"{state.get('host', '?')}:"
                          f"{state.get('port', '?')} "
                          f"({state.get('processes', '?')} workers) — "
                          f"running or unclean shutdown")
        for path in graphs:
            header = GraphStore.describe(path)
            if header:
                mark = "" if fresh(path, GraphStore.entry_version(path)) else "  [stale]"
                print(f"  graph {path.name}: {header['model']} "
                      f"{dict(header['valuation'])} "
                      f"({header['configs']} configs, "
                      f"{header['succ']} successor entries){mark}")
        return 0

    if args.action == "prune":
        # Only *stale* temp files: a concurrently-running sweep's live
        # temp file (seconds old, about to be atomically renamed) must
        # survive — deleting it would silently lose that entry's write.
        now = time.time()
        doomed = []
        for path in temps:
            try:
                if now - path.stat().st_mtime >= STALE_TEMP_SECONDS:
                    doomed.append(path)
            except OSError:
                continue
        doomed += stale_results + stale_graphs
    else:  # clear: a full wipe is explicitly destructive — take it all
        doomed = list(temps) + results + graphs + journals + service_files
    removed = 0
    for path in doomed:
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    print(f"{args.action}: removed {removed} of {len(doomed)} files "
          f"under {root}")
    return 0


def _list_experiments() -> int:
    print("verification (repro.api):")
    print("  verify <protocol>  check one protocol (--engine, "
          "--valuation, --target, --coin, --cache-dir, --server, --json)")
    print("  sweep              protocol x coin x valuation x engine "
          "matrix (--coin, --processes, --cache-dir, --graph-store, "
          "--server, --json)")
    print("  simulate <protocol>  concurrent Monte Carlo fleet on the "
          "executable substrate (--runs, --coin, --scheduler, "
          "--processes, --json)")
    print("  serve              run the verification daemon: one warm "
          "worker fleet serving verify/sweep --server clients")
    print("  cache              on-disk cache maintenance: "
          "info | prune | compact | clear (--dir DIR|sqlite:PATH)")
    print("experiments:")
    for ident in sorted(REGISTRY):
        experiment = REGISTRY[ident]
        slow = " (slow)" if experiment.slow else ""
        print(f"  {ident:16s} {experiment.description}{slow}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv if argv is None else argv)
    if len(argv) < 2:
        return _list_experiments()
    target = argv[1]
    if target == "verify":
        return _cmd_verify(argv[2:])
    if target == "sweep":
        return _cmd_sweep(argv[2:])
    if target == "simulate":
        return _cmd_simulate(argv[2:])
    if target == "serve":
        return _cmd_serve(argv[2:])
    if target == "cache":
        return _cmd_cache(argv[2:])
    if target == "all":
        print(run_all(include_slow="--slow" in argv))
        return 0
    print(run_experiment(target))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
