"""CLI: verification front end + regeneration of the paper's artifacts.

Usage::

    python -m repro.harness                       # list experiments
    python -m repro.harness table4                # one experiment
    python -m repro.harness all [--slow]          # all quick experiments

    # the repro.api front end
    python -m repro.harness verify mmr14 --json
    python -m repro.harness verify mmr14 --valuation n=4,t=1,f=1 \
        --engine explicit --target termination
    python -m repro.harness sweep --processes 4 --targets validity \
        --cache-dir .repro-cache --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro import api
from repro.harness.experiments import REGISTRY, run_all, run_experiment
from repro.protocols.registry import benchmark


def _parse_valuation(text: str) -> Dict[str, int]:
    """``"n=4,t=1,f=1"`` → ``{"n": 4, "t": 1, "f": 1}``."""
    valuation = {}
    for pair in text.split(","):
        key, sep, value = pair.partition("=")
        try:
            if not sep:
                raise ValueError
            valuation[key.strip()] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad valuation component {pair!r}; want name=int"
            ) from None
    return valuation


def _limits(args: argparse.Namespace) -> api.Limits:
    return api.Limits(
        max_states=args.max_states,
        max_nodes=args.max_nodes,
        max_seconds=args.max_seconds,
    )


def _add_limit_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-states", type=int, default=None,
                        help="explicit engine: state budget per query")
    parser.add_argument("--max-nodes", type=int, default=None,
                        help="parameterized engine: schema-tree node budget")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget per obligation bundle")


def _cmd_verify(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness verify",
        description="Verify one benchmark protocol through repro.api.",
    )
    parser.add_argument("protocol",
                        help="registry name: " +
                        ", ".join(e.name for e in benchmark()))
    parser.add_argument("--valuation", type=_parse_valuation, default=None,
                        metavar="n=4,t=1,f=1",
                        help="parameters (default: the registry's smallest)")
    parser.add_argument("--engine", default="explicit",
                        choices=api.engine_names())
    parser.add_argument("--target", action="append", choices=api.TARGETS,
                        help="repeatable; default: all three properties")
    parser.add_argument("--json", action="store_true",
                        help="emit the TaskResult as JSON")
    _add_limit_flags(parser)
    args = parser.parse_args(argv)

    result = api.verify(
        args.protocol,
        valuation=args.valuation,
        targets=tuple(args.target) if args.target else None,
        engine=args.engine,
        limits=_limits(args),
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result)
        if result.counterexample is not None:
            print(f"\ncounterexample: {result.counterexample}")
    return 0


def _cmd_sweep(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run a protocol x valuation x engine sweep in parallel.",
    )
    parser.add_argument("--protocols", default=None,
                        help="comma-separated registry names (default: all 8)")
    parser.add_argument("--engines", default="explicit",
                        help="comma-separated engines (default: explicit)")
    parser.add_argument("--targets", default=",".join(api.TARGETS),
                        help="comma-separated obligation targets")
    parser.add_argument("--valuation", action="append", type=_parse_valuation,
                        default=None, metavar="n=4,t=1,f=1",
                        help="repeatable: add a valuation to the matrix "
                        "(default: each protocol's smallest)")
    parser.add_argument("--processes", type=int, default=1,
                        help="worker pool size (1 = inline)")
    parser.add_argument("--scheduling", default="flat",
                        choices=api.SweepRunner.SCHEDULING_MODES,
                        help="flat: one task per pool job; sharded: group "
                        "tasks by protocol on persistent warm workers "
                        "(identical results, less recompilation)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory")
    parser.add_argument("--json", action="store_true",
                        help="emit the RunReport as JSON")
    _add_limit_flags(parser)
    args = parser.parse_args(argv)

    report = api.sweep(
        protocols=args.protocols.split(",") if args.protocols else None,
        valuations=args.valuation,
        engines=args.engines.split(","),
        targets=args.targets.split(","),
        limits=_limits(args),
        processes=args.processes,
        cache_dir=args.cache_dir,
        scheduling=args.scheduling,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.verdict != "error" else 1


def _list_experiments() -> int:
    print("verification (repro.api):")
    print("  verify <protocol>  check one protocol "
          "(--engine, --valuation, --target, --json)")
    print("  sweep              protocol x valuation x engine matrix "
          "(--processes, --cache-dir, --json)")
    print("experiments:")
    for ident in sorted(REGISTRY):
        experiment = REGISTRY[ident]
        slow = " (slow)" if experiment.slow else ""
        print(f"  {ident:16s} {experiment.description}{slow}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv if argv is None else argv)
    if len(argv) < 2:
        return _list_experiments()
    target = argv[1]
    if target == "verify":
        return _cmd_verify(argv[2:])
    if target == "sweep":
        return _cmd_sweep(argv[2:])
    if target == "all":
        print(run_all(include_slow="--slow" in argv))
        return 0
    print(run_experiment(target))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
