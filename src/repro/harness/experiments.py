"""Experiment registry: every table and figure, one callable each.

``python -m repro.harness <experiment>`` regenerates a single artifact;
``python -m repro.harness all`` runs everything (the quick ones).  The
index mirrors DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.render import ascii_summary, to_dot
from repro.errors import CheckError


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact of the paper."""

    ident: str
    description: str
    runner: Callable[[], str]
    #: slow experiments are excluded from `all`
    slow: bool = False


def _table1() -> str:
    from repro.harness.tables import table1

    return table1()


def _table2() -> str:
    from repro.harness.tables import table2, table2_comparison

    rows, formatted = table2()
    return formatted + "\n\npaper comparison:\n" + table2_comparison(rows)


def _table2_quick() -> str:
    from repro.harness.tables import table2

    _rows, formatted = table2(protocols=("cc85a", "fmr05", "mmr14"))
    return formatted


def _table3() -> str:
    from repro.harness.tables import table3

    return table3()


def _table4() -> str:
    from repro.harness.tables import table4

    _rows, formatted = table4()
    return formatted


def _fig3() -> str:
    from repro.protocols import naive_voting

    return ascii_summary(naive_voting.automaton())


def _fig4() -> str:
    from repro.protocols import mmr14

    model = mmr14.model()
    return (
        ascii_summary(model.process)
        + "\n\n"
        + ascii_summary(model.coin)
        + "\n\nDOT (process):\n"
        + to_dot(model.process, "Fig4a-MMR14")
    )


def _fig6() -> str:
    from repro.protocols import mmr14

    return ascii_summary(mmr14.refined_model().process)


def _attack() -> str:
    from repro.sim import (
        AdaptiveCoinAttack,
        EquivocatingByzantine,
        MMR14Process,
        Miller18Process,
        Simulation,
        run,
    )

    lines = []
    sim = Simulation(MMR14Process, n=4, t=1, inputs=[0, 0, 1], coin_seed=7)
    byz = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, AdaptiveCoinAttack(byz), max_steps=20_000)
    lines.append(
        f"MMR14 under the adaptive attack: decided={result.decided} "
        f"(rounds reached {result.rounds_reached}, {result.steps} deliveries)"
    )
    sim = Simulation(Miller18Process, n=4, t=1, inputs=[0, 0, 1], coin_seed=7)
    byz = EquivocatingByzantine(list(sim.byzantine))
    result = run(sim, AdaptiveCoinAttack(byz), max_steps=20_000)
    lines.append(
        f"Miller18 under the same adversary: decided={result.decided} "
        f"in rounds {result.decision_rounds}"
    )
    return "\n".join(lines)


def _expected_rounds() -> str:
    from repro.sim import ABY22Process, Miller18Process, MMR14Process, expected_rounds

    lines = ["expected decision round (random fair scheduler, mixed inputs):"]
    for cls in (MMR14Process, Miller18Process, ABY22Process):
        mean = expected_rounds(cls, 4, 1, [0, 0, 1], runs=30)
        lines.append(f"  {cls.__name__:18s} {mean:.2f}")
    return "\n".join(lines)


REGISTRY: Dict[str, Experiment] = {
    exp.ident: exp
    for exp in (
        Experiment("table1", "MMR14 rule table (Table I)", _table1),
        Experiment("table2", "full verification benchmark (Table II)", _table2,
                   slow=True),
        Experiment("table2-quick", "Table II on three protocols", _table2_quick),
        Experiment("table3", "checked property formulas (Table III)", _table3),
        Experiment("table4", "milestones vs schema counts (Table IV)", _table4),
        Experiment("fig3", "naive voting automaton (Fig. 3)", _fig3),
        Experiment("fig4", "MMR14 automata (Fig. 4)", _fig4),
        Experiment("fig6", "refined binding model (Fig. 6)", _fig6),
        Experiment("attack", "the §II adaptive attack, simulated", _attack),
        Experiment("expected-rounds", "§II expected-round folklore", _expected_rounds),
    )
}


def run_experiment(ident: str) -> str:
    try:
        experiment = REGISTRY[ident]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise CheckError(f"unknown experiment {ident!r}; known: {known}") from None
    return experiment.runner()


def run_all(include_slow: bool = False) -> str:
    chunks = []
    for ident in sorted(REGISTRY):
        experiment = REGISTRY[ident]
        if experiment.slow and not include_slow:
            continue
        chunks.append(f"=== {ident}: {experiment.description} ===")
        chunks.append(experiment.runner())
        chunks.append("")
    return "\n".join(chunks)
