"""Reference numbers from the paper's evaluation (for side-by-side output).

Table II of the paper: per protocol, |L|, |R| and, per property,
``nschemas`` and wall-clock time on the authors' hardware (an i7-12650H
laptop, except the two MPI rows which used a 216-core EPYC server).
Times are seconds unless noted; ``None`` marks the counterexample row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table II."""

    name: str
    category: str
    locations: int
    rules: int
    agreement_nschemas: float
    agreement_time: float
    validity_nschemas: float
    validity_time: float
    termination_nschemas: Optional[float]
    termination_time: Optional[float]  # None = counterexample reported
    note: str = ""


TABLE_II = (
    PaperRow("rabin83", "A", 7, 17, 6, 0.25, 2, 0.20, 8, 0.43),
    PaperRow("cc85a", "B", 9, 18, 342, 4.93, 42, 0.50, 171.5, 2.70),
    PaperRow("cc85b", "B", 10, 17, 6, 0.25, 2, 0.20, 8, 0.32),
    PaperRow("fmr05", "B", 10, 16, 6, 0.23, 2, 0.21, 2, 0.32),
    PaperRow("ks16", "B", 11, 26, 18, 0.75, 5, 0.31, 15, 0.76),
    PaperRow("mmr14", "C", 17, 29, 28918, 298.90, 1442, 8.74, None, None,
             note="CE (binding violated)"),
    PaperRow("miller18", "C", 22, 48, 1e6, 605, 253534, 226, 1e8, 42407,
             note="216-core MPI run"),
    PaperRow("aby22", "C", 22, 49, 1e6, 583, 106098, 71, 1e8, 36794,
             note="216-core MPI run"),
)

#: Table IV of the paper: (name, formula, milestones, max-nschemas).
TABLE_IV = (
    ("ABY22", "(CB0)", 10, 98182294),
    ("ABY22-1", "(CB0)", 9, 15129955),
    ("ABY22-2", "(CB0)", 8, 2650445),
    ("ABY22-3", "(CB0)", 7, 257126),
    ("ABY22-4", "(CB0)", 6, 28918),
    ("ABY22", "(Inv2)", 10, 7479057),
    ("ABY22-1", "(Inv2)", 9, 1298630),
    ("ABY22-2", "(Inv2)", 8, 253534),
    ("ABY22-3", "(Inv2)", 7, 28395),
    ("ABY22-4", "(Inv2)", 6, 3592),
)


def paper_row(name: str) -> PaperRow:
    for row in TABLE_II:
        if row.name == name:
            return row
    raise KeyError(f"no Table II reference row for {name!r}")
