"""Regeneration of the paper's tables (I–IV).

Each ``table*`` function returns structured rows plus a formatted
string; the benchmark suite times them and EXPERIMENTS.md records the
paper-vs-measured comparison.  ``table2`` runs the actual verification
pipeline:

* **Agreement / Validity** — Inv1/Inv2 A-queries: the parameterized
  schema checker for the small (category A/B) automata, the exhaustive
  explicit checker (with analytic nschemas) for category C, exactly as
  scoped in DESIGN.md §2.
* **A.S. Termination** — the per-category bundle of §V-B: C2/CB*
  A-queries plus the Lemma-2 games (checked on the explicit state
  space); MMR14 reproduces the binding counterexample.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Limits, verify
from repro.checker.milestones import CombinedModel, extract_milestones, precedence_order
from repro.checker.result import VIOLATED
from repro.analysis.milestone_table import MilestoneRow, table_iv_rows
from repro.analysis.render import ascii_summary
from repro.harness.paper_data import TABLE_II, TABLE_IV, paper_row
from repro.protocols import benchmark, mmr14
from repro.protocols.registry import ProtocolEntry
from repro.spec.obligations import obligations_for
from repro.spec.properties import PropertyLibrary


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text column alignment."""
    table = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table I — the MMR14 rule table
# ----------------------------------------------------------------------
def table1() -> str:
    """The rules of the multi-round MMR14 automaton (guards + updates)."""
    automaton = mmr14.automaton()
    rows = []
    for rule in automaton.rules:
        guard = " & ".join(str(g) for g in rule.guard) or "true"
        update = ", ".join(f"{v}++" * i for v, i in rule.update) or "-"
        rows.append((rule.name, f"{rule.source} -> {rule.target}", guard, update))
    return format_table(("rule", "edge", "guard", "update"), rows)


# ----------------------------------------------------------------------
# Table II — the verification benchmark
# ----------------------------------------------------------------------
@dataclass
class Table2Cell:
    verdict: str
    nschemas: int
    time_seconds: float
    states: int = 0


@dataclass
class Table2Row:
    name: str
    category: str
    locations: int
    rules: int
    agreement: Table2Cell
    validity: Table2Cell
    termination: Table2Cell
    counterexample: Optional[str] = None


def _analytic_nschemas(model, queries) -> int:
    rd = model.single_round()
    combined = CombinedModel(rd)
    milestones = extract_milestones(combined)
    predecessors = precedence_order(milestones, rd)
    from repro.checker.schemas import count_schemas

    return sum(
        count_schemas(milestones, predecessors, len(q.events)) for q in queries
    )


def _check_target(entry: ProtocolEntry, target: str,
                  parameterized: bool,
                  node_budget: int = 4_000) -> Tuple[Table2Cell, Optional[str]]:
    started = time.perf_counter()
    ce_text: Optional[str] = None

    # Built lazily: only the parameterized gate and the analytic
    # nschemas fallback need the model outside the engine.
    model = None
    obligations = None

    def _spec():
        nonlocal model, obligations
        if obligations is None:
            model = (
                entry.verification_model()
                if target == "termination"
                else entry.model()
            )
            obligations = obligations_for(model, target)
        return obligations

    outcome = None
    if parameterized and not _spec().game_queries:
        outcome = verify(
            entry.name,
            target=target,
            engine="parameterized",
            limits=Limits(max_nodes=node_budget),
        ).outcome(target)
        if outcome.verdict == "unknown":
            outcome = None  # schema budget hit: defer to the explicit engine
    if outcome is None:
        outcome = verify(
            entry.name,
            target=target,
            valuation=entry.small_valuation,
            limits=Limits(max_states=900_000),
        ).outcome(target)
    elapsed = time.perf_counter() - started
    nschemas = outcome.nschemas
    if not nschemas:
        spec = _spec()
        nschemas = _analytic_nschemas(
            model, spec.reach_queries + spec.game_queries
        )
    if outcome.verdict == VIOLATED and outcome.counterexample is not None:
        ce_text = str(outcome.counterexample)
    return (
        Table2Cell(
            verdict=outcome.verdict,
            nschemas=nschemas,
            time_seconds=elapsed,
            states=outcome.states_explored,
        ),
        ce_text,
    )


def table2(parameterized_small: bool = True,
           protocols: Optional[Sequence[str]] = None) -> Tuple[List[Table2Row], str]:
    """Run the full benchmark; returns rows and the formatted table.

    Args:
        parameterized_small: use the schema checker for the safety
            queries of category A/B protocols (as the paper does); the
            category C protocols and all Lemma-2 games use the
            exhaustive explicit checker at the registry's small
            valuation.
        protocols: optional subset of protocol names.
    """
    rows: List[Table2Row] = []
    for entry in benchmark():
        if protocols is not None and entry.name not in protocols:
            continue
        use_param = parameterized_small and entry.category in ("A", "B")
        locations, rules = entry.model().paper_size()
        agreement, _ = _check_target(entry, "agreement", use_param)
        validity, _ = _check_target(entry, "validity", use_param)
        termination, ce_text = _check_target(entry, "termination", False)
        rows.append(
            Table2Row(
                name=entry.name,
                category=entry.category,
                locations=locations,
                rules=rules,
                agreement=agreement,
                validity=validity,
                termination=termination,
                counterexample=ce_text,
            )
        )
    formatted = _format_table2(rows)
    return rows, formatted


def _format_table2(rows: List[Table2Row]) -> str:
    body = []
    for row in rows:
        term = (
            "CE"
            if row.termination.verdict == VIOLATED
            else f"{row.termination.time_seconds:.2f}s"
        )
        body.append(
            (
                row.name,
                row.category,
                row.locations,
                row.rules,
                row.agreement.verdict,
                row.agreement.nschemas,
                f"{row.agreement.time_seconds:.2f}s",
                row.validity.verdict,
                f"{row.validity.time_seconds:.2f}s",
                row.termination.verdict,
                term,
            )
        )
    return format_table(
        (
            "name", "cat", "|L|", "|R|",
            "agreement", "nschemas", "time",
            "validity", "time",
            "termination", "time/CE",
        ),
        body,
    )


def table2_comparison(rows: List[Table2Row]) -> str:
    """Paper-vs-measured summary for EXPERIMENTS.md."""
    body = []
    for row in rows:
        reference = paper_row(row.name)
        paper_term = "CE" if reference.termination_time is None else "verified"
        ours_term = "CE" if row.termination.verdict == VIOLATED else row.termination.verdict
        body.append(
            (
                row.name,
                f"{reference.locations}/{reference.rules}",
                f"{row.locations}/{row.rules}",
                paper_term,
                ours_term,
                "match" if (paper_term == "CE") == (ours_term == "CE") else "MISMATCH",
            )
        )
    return format_table(
        ("name", "paper |L|/|R|", "ours |L|/|R|", "paper term.", "our term.", "verdict"),
        body,
    )


# ----------------------------------------------------------------------
# Table III — the property formulas
# ----------------------------------------------------------------------
def table3() -> str:
    """The checked formulas for value 0, in the paper's shorthand."""
    lib = PropertyLibrary(mmr14.refined_model())
    rows = [
        ("(Inv1)", lib.inv1(0).formula),
        ("(Inv2)", lib.inv2(0).formula),
        ("(C1)", lib.c1().formula),
        ("(C2)", lib.c2(0).formula),
        ("(C2')", lib.c2prime(0).formula),
    ]
    for index in range(5):
        rows.append((f"(CB{index})", lib.cb(index).formula))
    return format_table(("label", "formula"), rows)


# ----------------------------------------------------------------------
# Table IV — milestones vs. schema counts
# ----------------------------------------------------------------------
def table4() -> Tuple[List[MilestoneRow], str]:
    """Max schema counts for the ABY22 milestone variants."""
    rows = table_iv_rows()
    body = [
        (row.name, row.formula, row.milestones, row.max_nschemas)
        for row in rows
    ]
    formatted = format_table(
        ("name", "formula", "nmilestones", "max-nschemas"), body
    )
    reference = format_table(
        ("name", "formula", "nmilestones", "max-nschemas (paper)"),
        TABLE_IV,
    )
    return rows, formatted + "\n\npaper reference:\n" + reference
