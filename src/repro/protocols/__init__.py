"""The paper's benchmark protocols (§VI) as threshold-automata models.

One module per protocol; :mod:`repro.protocols.registry` enumerates
them in Table II order.  The motivating naive-voting example (Fig. 2/3)
is included for the quickstart.
"""

from repro.protocols import (
    aby22,
    cc85,
    fmr05,
    ks16,
    miller18,
    mmr14,
    naive_voting,
    rabin83,
)
from repro.protocols.registry import BENCHMARK, ProtocolEntry, benchmark, by_name

__all__ = [
    "BENCHMARK",
    "ProtocolEntry",
    "aby22",
    "benchmark",
    "by_name",
    "cc85",
    "fmr05",
    "ks16",
    "miller18",
    "mmr14",
    "naive_voting",
    "rabin83",
]
