"""ABY22 — Abraham, Ben-David & Yandamuri (PODC 2022): asynchronous
binary agreement via **binding crusader agreement** (BCA), ``n > 3t``.

The protocol that *introduced* the binding condition the DSN paper
checks.  Binding is achieved inside the BCA: a process reports ``{v}``
only while the opposite value has not yet entered ``bin_values``
(guards with a ``<`` conjunct).  Because shared counters only grow,
``{0}``-reports and ``{1}``-reports are *temporally exclusive* — once
``b1`` reaches the bin threshold no further ``{0}``-report can ever be
sent, which is precisely what makes CB0–CB4 provable where MMR14 fails.

Structure (category C, untriggered coin):

* BV-broadcast of the estimate with relays (``b0``/``b1``), as MMR14;
* crusader reports ``c0``/``c1``/``cb`` guarded by
  ``bin_v ∧ ¬bin_{1-v}`` (values) or ``bin_0 ∧ bin_1`` (both);
* BCA output: ``M_v`` on an ``n - 2t`` majority of ``v``-reports,
  ``W -> Mbot`` when a majority-free view exists;
* the ABA wrapper: decide on a matching coin, adopt otherwise.

:func:`variant` produces the Table IV automata: same ``|L|``/``|R|``,
decreasing milestone counts obtained by merging threshold expressions
(the paper's ABY22-1 … ABY22-4).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.builder import AutomatonBuilder
from repro.core.coin import standard_coin_automaton
from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.guards import Guard
from repro.core.rules import Rule
from repro.core.system import SystemModel
from repro.core.transforms import refine_bca
from repro.errors import ModelError

NAME = "aby22"

SHARED_VARS = ("b0", "b1", "c0", "c1", "cb")
COIN_VARS = ("cc0", "cc1")


def environment():
    """``n > 3t ∧ t >= f >= 0 ∧ t >= 1`` — ABY22's optimal resilience."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def automaton(merge_level: int = 0):
    """The ABY22 process automaton.

    ``merge_level`` in ``0..4`` merges guard atoms to shed milestones
    one at a time without changing the location/rule counts — the
    Table IV variants ABY22-``k``.
    """
    if merge_level not in range(5):
        raise ModelError(f"merge level must be 0..4, got {merge_level}")
    n, t, f = params("n t f")
    suffix = "" if merge_level == 0 else f"-{merge_level}"
    b = AutomatonBuilder(f"{NAME}{suffix}")
    b.shared(*SHARED_VARS)
    b.coins(*COIN_VARS)

    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S0", value=0)
    b.location("S1", value=1)
    b.location("S2")
    b.location("R0", value=0)   # reported {0}
    b.location("R1", value=1)   # reported {1}
    b.location("RB")            # reported {0, 1}
    b.location("W")             # n-t reports collected, output ⊥ pending
    b.location("M0", value=0)
    b.location("M1", value=1)
    b.location("Mbot")
    b.final("E0", value=0)
    b.final("E1", value=1)
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)

    b0v, b1v = b.var("b0"), b.var("b1")
    c0, c1, cb = b.var("c0"), b.var("c1"), b.var("cb")
    cc0, cc1 = b.var("cc0"), b.var("cc1")

    bin0 = b0v >= 2 * t + 1 - f
    bin1 = b1v >= 2 * t + 1 - f
    not_bin0 = b0v < 2 * t + 1 - f
    not_bin1 = b1v < 2 * t + 1 - f
    # Each merge level drops one distinct threshold expression.
    relay0 = b0v >= (t + 1 - f if merge_level < 4 else 2 * t + 1 - f)
    relay1 = b1v >= (t + 1 - f if merge_level < 3 else 2 * t + 1 - f)
    report_total = c0 + c1 + cb >= n - t - f
    bot_needs_1 = (
        c1 + cb >= t + 1 - f if merge_level < 1 else c0 + c1 + cb >= n - t - f
    )
    bot_needs_0 = (
        c0 + cb >= t + 1 - f if merge_level < 2 else c0 + c1 + cb >= n - t - f
    )
    major0 = c0 >= n - 2 * t - f
    major1 = c1 >= n - 2 * t - f

    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    # BV-broadcast with relays.
    b.rule("r3", "I0", "S0", update={"b0": 1})
    b.rule("r4", "I1", "S1", update={"b1": 1})
    b.rule("r5", "S0", "S2", guard=relay1, update={"b1": 1})
    b.rule("r6", "S1", "S2", guard=relay0, update={"b0": 1})
    # Crusader reports: a {v} report is only possible while the other
    # value is outside bin_values — the binding mechanism.
    counter = 7
    for source in ("S0", "S1", "S2"):
        b.rule(f"r{counter}", source, "R0", guard=(bin0, not_bin1), update={"c0": 1})
        b.rule(f"r{counter+1}", source, "R1", guard=(bin1, not_bin0), update={"c1": 1})
        b.rule(f"r{counter+2}", source, "RB", guard=(bin0, bin1), update={"cb": 1})
        counter += 3
    # BCA output.
    for source in ("R0", "R1", "RB"):
        b.rule(f"r{counter}", source, "M0", guard=major0)
        b.rule(f"r{counter+1}", source, "M1", guard=major1)
        b.rule(
            f"r{counter+2}",
            source,
            "W",
            guard=(report_total, bot_needs_1, bot_needs_0),
        )
        counter += 3
    b.rule(f"r{counter}", "W", "Mbot")  # refined over c0/c1
    counter += 1
    # ABA wrapper: decide with a matching coin.
    b.rule(f"r{counter}", "M0", "D0", guard=cc0 > 0)
    b.rule(f"r{counter+1}", "M0", "E0", guard=cc1 > 0)
    b.rule(f"r{counter+2}", "M1", "D1", guard=cc1 > 0)
    b.rule(f"r{counter+3}", "M1", "E1", guard=cc0 > 0)
    b.rule(f"r{counter+4}", "Mbot", "E0", guard=cc0 > 0)
    b.rule(f"r{counter+5}", "Mbot", "E1", guard=cc1 > 0)
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    b.round_switch("D0", "J0", name="rs3")
    b.round_switch("D1", "J1", name="rs4")
    return b.build(check="multi_round")


def _bot_rule_name() -> str:
    # The W -> Mbot rule is the 16th numbered rule after the reports.
    return "r25"


def model(coin: CoinLike = None) -> SystemModel:
    """The unrefined ABY22 system model (untriggered coin)."""
    spec = resolve_coin_spec(coin)
    return SystemModel(
        name=NAME,
        environment=environment(),
        process=spec.adapt_process(automaton()),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={"M0": "M0", "M1": "M1", "Mbot": "Mbot"},
        description="Abraham-Ben-David-Yandamuri 2022, binding crusader agreement",
    )


def refined_model(merge_level: int = 0, coin: CoinLike = None) -> SystemModel:
    """ABY22 (or a Table IV variant) with the Fig. 6 refinement."""
    base = automaton(merge_level)
    refined = refine_bca(
        base, _bot_rule_name(), m0_var="c0", m1_var="c1",
        n0="N0", n1="N1", nbot="Nbot", name=f"{base.name}-refined",
    )
    refined.check_multi_round_form()
    spec = resolve_coin_spec(coin)
    suffix = "" if merge_level == 0 else f"-{merge_level}"
    return SystemModel(
        name=f"{NAME}{suffix}-refined",
        environment=environment(),
        process=spec.adapt_process(refined),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={
            "M0": "M0", "M1": "M1", "Mbot": "Mbot",
            "N0": "N0", "N1": "N1", "Nbot": "Nbot",
        },
        description=f"ABY22 Table IV variant (merge level {merge_level})",
    )


def variant(merge_level: int) -> SystemModel:
    """The Table IV automata ABY22-1 … ABY22-4 (refined form)."""
    return refined_model(merge_level)
