"""CC85 — Chor & Coan's randomized Byzantine agreement (IEEE TSE 1985).

Two models from the paper's benchmark:

* :func:`model_a` (``CC85(a)``) — the simple common-coin implementation
  with the **optimal resilience** ``n > 3t``;
* :func:`model_b` (``CC85(b)``) — the adaptation of Rabin83 raising the
  fault bound to ``t < n/6`` (``n > 6t``), with correspondingly laxer
  quorums.

Both are category (B): there is a decide action, and deciding ``v``
requires the strong ``v`` quorum *and* a matching coin — which is why
their termination condition is the probabilistic C2′ rather than
category (A)'s C2 (§V-B of the paper).

Quorum arithmetic discharged by the checkers:

* ``strong(v) = v_v >= n - t - f`` (a unanimous ``n - t`` view exists);
  two strong views of different values would need
  ``2(n - t - f) <= n - f``, impossible under ``n > 3t >= 2t + f``;
* ``adopt(v)`` needs a strict correct-majority ``2*v_v >= n - f + 1``
  plus genuine mixedness, so it excludes both ``adopt(1-v)`` and
  ``strong(1-v)``;
* ``mixed`` needs ``t + 1 - f`` support for *both* values, so uniform
  rounds never reach the coin with an open choice.
"""

from __future__ import annotations

from repro.core.coinspec import CoinLike
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.guards import Var
from repro.core.system import SystemModel
from repro.protocols.common import voting_model

NAME_A = "cc85a"
NAME_B = "cc85b"


def environment_a():
    """CC85(a)'s optimal resilience ``n > 3t``."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def environment_b():
    """CC85(b)'s relaxed resilience ``n > 6t`` (Rabin adaptation)."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 6 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def model_a(coin: CoinLike = None) -> SystemModel:
    """CC85(a): optimal resilience ``n > 3t``."""
    n, t, f = params("n t f")
    v0, v1 = Var("v0"), Var("v1")
    strong = {
        0: (v0 >= n - t - f,),
        1: (v1 >= n - t - f,),
    }
    adopt = {
        0: (v0 + v0 >= n - f + 1, v1 >= t + 1 - f),
        1: (v1 + v1 >= n - f + 1, v0 >= t + 1 - f),
    }
    mixed = (
        v0 + v1 >= n - t - f,
        v0 >= t + 1 - f,
        v1 >= t + 1 - f,
    )
    return voting_model(
        name=NAME_A,
        environment=environment_a(),
        category="B",
        strong=lambda v: strong[v],
        adopt=lambda v: adopt[v],
        mixed=mixed,
        description="Chor-Coan 1985 simple common coin, n > 3t, category B",
        coin=coin,
    )


def model_b(coin: CoinLike = None) -> SystemModel:
    """CC85(b): the Rabin83 adaptation with ``t < n/6``."""
    n, t, f = params("n t f")
    v0, v1 = Var("v0"), Var("v1")
    strong = {
        0: (v0 >= n - 2 * t - f,),
        1: (v1 >= n - 2 * t - f,),
    }
    adopt = {
        0: (v0 + v0 >= n - f + 1, v1 >= 2 * t + 1 - f),
        1: (v1 + v1 >= n - f + 1, v0 >= 2 * t + 1 - f),
    }
    mixed = (
        v0 + v1 >= n - 2 * t - f,
        v0 >= 2 * t + 1 - f,
        v1 >= 2 * t + 1 - f,
    )
    return voting_model(
        name=NAME_B,
        environment=environment_b(),
        category="B",
        strong=lambda v: strong[v],
        adopt=lambda v: adopt[v],
        mixed=mixed,
        description="Chor-Coan 1985 Rabin adaptation, t < n/6, category B",
        coin=coin,
    )
