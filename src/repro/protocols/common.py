"""Shared modelling templates for the benchmark protocols.

The eight protocols of §VI fall into three structural families:

* **Category (A)** — no decide action (Rabin83): vote, then either
  adopt a majority value or take the common coin.
* **Category (B)** — decide actions guarded by the coin (CC85(a)/(b),
  FMR05, KS16): vote (possibly in several stages), then a *strong*
  quorum allows deciding when the coin agrees, a correct-majority
  quorum adopts without deciding, and genuinely mixed views adopt the
  coin.
* **Category (C)** — BV-broadcast/crusader-agreement protocols (MMR14,
  Miller18, ABY22), modelled in their own modules.

**The coin trigger.**  Category A/B termination proofs assume the
round-``r`` coin is unpredictable until every correct process has fixed
its round-``r`` update branch; we model this by guarding the coin toss
with a shared counter ``w`` that every process bumps when it commits
its branch (``w >= n - f``).  Category C protocols are exactly the ones
engineered to need *no* such assumption (binding instead), so their
coin automata are untriggered — which is where the MMR14 adaptive
attack lives.  See DESIGN.md §5.

The family template is parameterized by three guard builders so each
protocol keeps its own thresholds and resilience condition:

* ``strong(v)``  — a view deciding ``v`` exists;
* ``adopt(v)``   — a majority-``v``-but-undecidable view exists
  (requires genuine mixedness so uniform rounds stay uniform);
* ``mixed``      — a no-majority view exists.

The quorum-intersection facts the paper's obligations rest on
(``strong(v)`` excludes every ``1-v`` branch, ``adopt(0)`` excludes
``adopt(1)``, uniform starts block everything but ``strong``) then hold
parametrically and are discharged by the checkers.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.builder import AutomatonBuilder
from repro.core.coin import standard_coin_automaton
from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.core.environment import Environment
from repro.core.expression import ParamExpr, params
from repro.core.guards import Guard, Var
from repro.core.system import SystemModel

COIN_VARS = ("cc0", "cc1")

#: Shared trigger counter: processes that committed their round branch.
TRIGGER_VAR = "w"


def triggered_coin(shared_vars: Sequence[str], prefix: str,
                   coin: CoinLike = None):
    """The standard coin automaton gated on all-correct-committed."""
    n, f = params("n f")
    return standard_coin_automaton(
        shared_vars,
        COIN_VARS,
        prefix=prefix,
        trigger_guard=(Var(TRIGGER_VAR) >= n - f,),
        spec=resolve_coin_spec(coin),
    )


def one_stage_voting_automaton(
    name: str,
    strong: Optional[Callable[[int], Sequence[Guard]]],
    adopt: Optional[Callable[[int], Sequence[Guard]]],
    mixed: Sequence[Guard],
) -> "AutomatonBuilder":
    """The category A/B skeleton over vote counters ``v0``/``v1``.

    Locations: borders ``J0/J1``, initials ``I0/I1``, voted ``S0/S1``,
    decide-ready ``M0/M1`` (only when ``strong`` is given), coin-waiting
    ``MC``, finals ``E0/E1`` (+ ``D0/D1`` with ``strong``).

    Returns the builder so callers can extend it before ``build()``.
    """
    b = AutomatonBuilder(name)
    shared = ["v0", "v1", TRIGGER_VAR]
    b.shared(*shared)
    b.coins(*COIN_VARS)
    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S0", value=0)
    b.location("S1", value=1)
    if strong is not None:
        b.location("M0", value=0)
        b.location("M1", value=1)
    b.location("MC")
    b.final("E0", value=0)
    b.final("E1", value=1)
    if strong is not None:
        b.final("D0", value=0, decision=True)
        b.final("D1", value=1, decision=True)

    cc0, cc1 = Var(COIN_VARS[0]), Var(COIN_VARS[1])
    bump = {TRIGGER_VAR: 1}

    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    b.rule("r3", "I0", "S0", update={"v0": 1})
    b.rule("r4", "I1", "S1", update={"v1": 1})
    counter = 5
    for source in ("S0", "S1"):
        if strong is not None:
            for v in (0, 1):
                b.rule(f"r{counter}", source, f"M{v}", guard=strong(v), update=bump)
                counter += 1
        if adopt is not None:
            for v in (0, 1):
                b.rule(f"r{counter}", source, f"E{v}", guard=adopt(v), update=bump)
                counter += 1
        b.rule(f"r{counter}", source, "MC", guard=mixed, update=bump)
        counter += 1
    if strong is not None:
        b.rule(f"r{counter}", "M0", "D0", guard=cc0 > 0)
        b.rule(f"r{counter + 1}", "M0", "E0", guard=cc1 > 0)
        b.rule(f"r{counter + 2}", "M1", "D1", guard=cc1 > 0)
        b.rule(f"r{counter + 3}", "M1", "E1", guard=cc0 > 0)
        counter += 4
    b.rule(f"r{counter}", "MC", "E0", guard=cc0 > 0)
    b.rule(f"r{counter + 1}", "MC", "E1", guard=cc1 > 0)
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    if strong is not None:
        b.round_switch("D0", "J0", name="rs3")
        b.round_switch("D1", "J1", name="rs4")
    return b


def voting_model(
    name: str,
    environment: Environment,
    category: str,
    strong: Optional[Callable[[int], Sequence[Guard]]],
    adopt: Optional[Callable[[int], Sequence[Guard]]],
    mixed: Sequence[Guard],
    description: str,
    coin: CoinLike = None,
) -> SystemModel:
    """Assemble a one-stage voting protocol with a triggered coin.

    ``coin`` picks the :class:`~repro.core.coinspec.CoinSpec` the coin
    automaton implements (None = the default perfect coin, under which
    the model is bit-identical to the pre-CoinSpec one).
    """
    spec = resolve_coin_spec(coin)
    builder = one_stage_voting_automaton(name, strong, adopt, mixed)
    automaton = spec.adapt_process(builder.build(check="multi_round"))
    return SystemModel(
        name=name,
        environment=environment,
        process=automaton,
        coin=triggered_coin(automaton.shared_vars, prefix=name, coin=spec),
        category=category,
        description=description,
    )
