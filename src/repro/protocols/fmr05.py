"""FMR05 — Friedman, Mostéfaoui & Raynal's oracle-based consensus (TDSC 2005).

"Simple and efficient": a **single communication step per round**, at
the price of resilience ``t < n/5``.  Category (B): deciding ``v``
requires an ``n - 2t`` unanimity quorum *and* a matching coin; there is
no separate adopt stage (the one-step structure), so a process either
reaches the decide-ready location ``M_v`` or falls through to the coin.

Quorum windows under ``n > 5t`` (with all ``n - f`` votes cast): some
value reaches ``strong`` (``v >= n - 2t - f``) or both values exceed
``t``-support, enabling ``mixed`` — so the single step never blocks,
which the Theorem 2 side conditions verify mechanically.
"""

from __future__ import annotations

from repro.core.coinspec import CoinLike
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.guards import Var
from repro.core.system import SystemModel
from repro.protocols.common import voting_model

NAME = "fmr05"


def environment():
    """FMR05's ``n > 5t`` resilience (one step per round)."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 5 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def model(coin: CoinLike = None) -> SystemModel:
    """The FMR05 system model (decide-ready or coin, no adopt stage)."""
    n, t, f = params("n t f")
    v0, v1 = Var("v0"), Var("v1")
    strong = {
        0: (v0 >= n - 2 * t - f,),
        1: (v1 >= n - 2 * t - f,),
    }
    mixed = (
        v0 + v1 >= n - t - f,
        v0 >= t + 1 - f,
        v1 >= t + 1 - f,
    )
    return voting_model(
        name=NAME,
        environment=environment(),
        category="B",
        strong=lambda v: strong[v],
        adopt=None,  # one communication step: decide-ready or coin
        mixed=mixed,
        description="Friedman-Mostéfaoui-Raynal 2005, one step per round, n > 5t",
        coin=coin,
    )
