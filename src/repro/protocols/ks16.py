"""KS16 — King & Saia's Byzantine agreement in expected polynomial time
(J.ACM 2016), modelled as Bracha's protocol with the local coins
replaced by a common coin (as the DSN paper describes it).

Category (B) with **two communication stages per round**: a vote stage
(counters ``v0``/``v1``) followed by a ratify stage (counters
``r0``/``r1``), after which the usual strong / adopt / mixed analysis
runs over the ratify counters.  Resilience is Bracha's ``n > 3t``.

Stage rules:

* a process ratifies its own value once it has ``t + 1 - f`` support
  (``S_b -> R_b``), or switches to the other value on a strict
  correct-majority of votes (``S_b -> R_{1-b}``);
* decide-ready needs an ``n - t`` unanimous ratify view
  (``r_v >= n - t - f``) plus the matching coin;
* adopt needs a strict correct-majority of ratifies and genuine
  mixedness; mixed needs ``t + 1 - f`` ratify support for both values.
"""

from __future__ import annotations

from repro.core.builder import AutomatonBuilder
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.guards import Var
from repro.core.system import SystemModel
from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.protocols.common import COIN_VARS, TRIGGER_VAR, triggered_coin

NAME = "ks16"

SHARED_VARS = ("v0", "v1", "r0", "r1", TRIGGER_VAR)


def environment():
    """Bracha's ``n > 3t`` resilience (with ``t >= f >= 0``)."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def automaton():
    """The two-stage (vote, ratify) KS16 process automaton."""
    n, t, f = params("n t f")
    b = AutomatonBuilder(NAME)
    b.shared(*SHARED_VARS)
    b.coins(*COIN_VARS)
    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S0", value=0)   # voted 0, collecting votes
    b.location("S1", value=1)
    b.location("R0", value=0)   # ratified 0, collecting ratifications
    b.location("R1", value=1)
    b.location("M0", value=0)   # decide-ready
    b.location("M1", value=1)
    b.location("MC")            # coin-bound
    b.final("E0", value=0)
    b.final("E1", value=1)
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)

    v0, v1 = Var("v0"), Var("v1")
    r0, r1 = Var("r0"), Var("r1")
    cc0, cc1 = Var(COIN_VARS[0]), Var(COIN_VARS[1])
    bump = {TRIGGER_VAR: 1}

    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    # Stage 1: vote.
    b.rule("r3", "I0", "S0", update={"v0": 1})
    b.rule("r4", "I1", "S1", update={"v1": 1})
    # Stage 2: ratify own value on support, or switch on strict majority.
    b.rule("r5", "S0", "R0", guard=v0 >= t + 1 - f, update={"r0": 1})
    b.rule("r6", "S1", "R1", guard=v1 >= t + 1 - f, update={"r1": 1})
    b.rule("r7", "S0", "R1", guard=v1 + v1 >= n - f + 1, update={"r1": 1})
    b.rule("r8", "S1", "R0", guard=v0 + v0 >= n - f + 1, update={"r0": 1})
    # Classification over the ratify counters.
    strong = {0: (r0 >= n - t - f,), 1: (r1 >= n - t - f,)}
    adopt = {
        0: (r0 + r0 >= n - f + 1, r1 >= t + 1 - f),
        1: (r1 + r1 >= n - f + 1, r0 >= t + 1 - f),
    }
    mixed = (r0 + r1 >= n - t - f, r0 >= t + 1 - f, r1 >= t + 1 - f)
    counter = 9
    for source in ("R0", "R1"):
        for v in (0, 1):
            b.rule(f"r{counter}", source, f"M{v}", guard=strong[v], update=bump)
            counter += 1
        for v in (0, 1):
            b.rule(f"r{counter}", source, f"E{v}", guard=adopt[v], update=bump)
            counter += 1
        b.rule(f"r{counter}", source, "MC", guard=mixed, update=bump)
        counter += 1
    # Coin-based exits.
    b.rule(f"r{counter}", "M0", "D0", guard=cc0 > 0)
    b.rule(f"r{counter + 1}", "M0", "E0", guard=cc1 > 0)
    b.rule(f"r{counter + 2}", "M1", "D1", guard=cc1 > 0)
    b.rule(f"r{counter + 3}", "M1", "E1", guard=cc0 > 0)
    b.rule(f"r{counter + 4}", "MC", "E0", guard=cc0 > 0)
    b.rule(f"r{counter + 5}", "MC", "E1", guard=cc1 > 0)
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    b.round_switch("D0", "J0", name="rs3")
    b.round_switch("D1", "J1", name="rs4")
    return b.build(check="multi_round")


def model(coin: CoinLike = None) -> SystemModel:
    """The KS16 system model with the all-committed coin trigger."""
    spec = resolve_coin_spec(coin)
    process = spec.adapt_process(automaton())
    return SystemModel(
        name=NAME,
        environment=environment(),
        process=process,
        coin=triggered_coin(process.shared_vars, prefix=NAME, coin=spec),
        category="B",
        description="King-Saia 2016 / Bracha with a common coin, n > 3t",
    )
