"""Miller18 — the fix of MMR14 from Miller's bug report, as used in Dumbo.

The adaptive-adversary attack on MMR14 (§II of the paper) works because
a process may adopt the coin value while the set of decidable values is
still open.  The fix (discussed in [Miller's issue #59] and adopted by
the Dumbo family) adds a **CONF phase**: after computing its AUX-based
``values`` set, a process broadcasts ``CONF(values)`` and waits for
``n - t`` CONF messages before touching the coin.  By then the outcome
is *bound*: a ``{v}``-CONF requires an ``n - t`` unanimous AUX view, so
``{0}``- and ``{1}``-CONFs cannot both gather quorums — which is
exactly the binding conditions CB0–CB4 on the refined model.

Structure = MMR14 (BV-broadcast ``b0/b1``, AUX ``a0/a1``) plus CONF
counters ``c0``/``c1``/``cb`` and locations:

* ``V0``/``V1``/``Vb`` — CONF({0}) / CONF({1}) / CONF({0,1}) sent;
* ``W``   — ``n - t`` CONFs collected, crusader output ⊥ pending
  (the Fig. 6 refinement splits ``W -> Mbot`` over ``c0``/``c1``);
* ``M0``/``M1``/``Mbot`` — crusader outputs, then the coin as in MMR14.

The coin is **untriggered** (no all-committed gate): Miller18 is safe
against the adaptive adversary by construction, and the checkers verify
CB0–CB4 where MMR14 fails CB2/CB3.
"""

from __future__ import annotations

from repro.core.builder import AutomatonBuilder
from repro.core.coin import standard_coin_automaton
from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.system import SystemModel
from repro.core.transforms import refine_bca

NAME = "miller18"

SHARED_VARS = ("b0", "b1", "a0", "a1", "c0", "c1", "cb")
COIN_VARS = ("cc0", "cc1")


def environment():
    """``n > 3t ∧ t >= f >= 0 ∧ t >= 1`` — MMR14's native resilience."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
    )


def automaton():
    """The Miller18 process automaton (MMR14's BV/AUX plus CONF)."""
    n, t, f = params("n t f")
    b = AutomatonBuilder(NAME)
    b.shared(*SHARED_VARS)
    b.coins(*COIN_VARS)

    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S0", value=0)
    b.location("S1", value=1)
    b.location("S2")
    b.location("B0", value=0)
    b.location("B1", value=1)
    b.location("Bp0", value=0)
    b.location("Bp1", value=1)
    b.location("B2")
    b.location("V0", value=0)
    b.location("V1", value=1)
    b.location("Vb")
    b.location("W")
    b.location("M0", value=0)
    b.location("M1", value=1)
    b.location("Mbot")
    b.final("E0", value=0)
    b.final("E1", value=1)
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)

    b0v, b1v = b.var("b0"), b.var("b1")
    a0, a1 = b.var("a0"), b.var("a1")
    c0, c1, cb = b.var("c0"), b.var("c1"), b.var("cb")
    cc0, cc1 = b.var("cc0"), b.var("cc1")

    relay1 = b1v >= t + 1 - f
    relay0 = b0v >= t + 1 - f
    bin0 = b0v >= 2 * t + 1 - f
    bin1 = b1v >= 2 * t + 1 - f
    aux0 = a0 >= n - t - f
    aux1 = a1 >= n - t - f
    aux_mixed = (a0 + a1 >= n - t - f, a0 >= 1, a1 >= 1)
    conf0 = c0 >= n - t - f
    conf1 = c1 >= n - t - f
    # Crusader output ⊥ requires a *mixed* CONF view.  CONF messages are
    # justified against the receiver's bin_values, so Byzantine processes
    # cannot fake a flavour that no correct process supports; a mixed
    # view therefore needs genuine CONF support for both flavours beyond
    # what the f slack can absorb.
    conf_bot = (
        c0 + c1 + cb >= n - t - f,
        c1 + cb >= t + 1 - f,
        c0 + cb >= t + 1 - f,
    )

    # BV-broadcast of the estimate — identical to MMR14.
    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    b.rule("r3", "I0", "S0", update={"b0": 1})
    b.rule("r4", "I1", "S1", update={"b1": 1})
    b.rule("r5", "S0", "S2", guard=relay1, update={"b1": 1})
    b.rule("r6", "S1", "S2", guard=relay0, update={"b0": 1})
    b.rule("r7", "S0", "B0", guard=bin0, update={"a0": 1})
    b.rule("r8", "S1", "B1", guard=bin1, update={"a1": 1})
    b.rule("r9", "S2", "B0", guard=bin0, update={"a0": 1})
    b.rule("r10", "S2", "B1", guard=bin1, update={"a1": 1})
    b.rule("r11", "B0", "Bp0", guard=relay1, update={"b1": 1})
    b.rule("r12", "B1", "Bp1", guard=relay0, update={"b0": 1})
    b.rule("r13", "Bp0", "B2", guard=bin1)
    b.rule("r14", "Bp1", "B2", guard=bin0)
    # CONF broadcast: values = {0}, {1} or {0, 1}.
    b.rule("r15", "B0", "V0", guard=aux0, update={"c0": 1})
    b.rule("r16", "Bp0", "V0", guard=aux0, update={"c0": 1})
    b.rule("r17", "B2", "V0", guard=aux0, update={"c0": 1})
    b.rule("r18", "B1", "V1", guard=aux1, update={"c1": 1})
    b.rule("r19", "Bp1", "V1", guard=aux1, update={"c1": 1})
    b.rule("r20", "B2", "V1", guard=aux1, update={"c1": 1})
    b.rule("r21", "B2", "Vb", guard=aux_mixed, update={"cb": 1})
    # Collect n-t CONFs: unanimous -> M_v, otherwise the ⊥ funnel W.
    b.rule("r22", "V0", "M0", guard=conf0)
    b.rule("r23", "V1", "M1", guard=conf1)
    b.rule("r24", "V0", "W", guard=conf_bot)
    b.rule("r25", "V1", "W", guard=conf_bot)
    b.rule("r26", "Vb", "W", guard=conf_bot)
    b.rule("r27", "W", "Mbot")  # refined by refine_bca over c0/c1
    # Coin-based exits, as in MMR14.
    b.rule("r28", "M0", "D0", guard=cc0 > 0)
    b.rule("r29", "M0", "E0", guard=cc1 > 0)
    b.rule("r30", "M1", "D1", guard=cc1 > 0)
    b.rule("r31", "M1", "E1", guard=cc0 > 0)
    b.rule("r32", "Mbot", "E0", guard=cc0 > 0)
    b.rule("r33", "Mbot", "E1", guard=cc1 > 0)
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    b.round_switch("D0", "J0", name="rs3")
    b.round_switch("D1", "J1", name="rs4")
    return b.build(check="multi_round")


def model(coin: CoinLike = None) -> SystemModel:
    """The unrefined Miller18 system model (untriggered coin)."""
    spec = resolve_coin_spec(coin)
    return SystemModel(
        name=NAME,
        environment=environment(),
        process=spec.adapt_process(automaton()),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={"M0": "M0", "M1": "M1", "Mbot": "Mbot"},
        description="MMR14 + CONF phase (Miller's fix, used in Dumbo)",
    )


def refined_model(coin: CoinLike = None) -> SystemModel:
    """Miller18 with the Fig. 6 refinement of ``W -> Mbot`` over CONFs."""
    refined = refine_bca(
        automaton(), "r27", m0_var="c0", m1_var="c1",
        n0="N0", n1="N1", nbot="Nbot", name=f"{NAME}-refined",
    )
    refined.check_multi_round_form()
    spec = resolve_coin_spec(coin)
    return SystemModel(
        name=f"{NAME}-refined",
        environment=environment(),
        process=spec.adapt_process(refined),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={
            "M0": "M0", "M1": "M1", "Mbot": "Mbot",
            "N0": "N0", "N1": "N1", "Nbot": "Nbot",
        },
        description="Miller18 with the Fig. 6 binding refinement",
    )
