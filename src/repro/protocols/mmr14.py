"""MMR14 — Mostéfaoui, Moumen, Raynal (PODC 2014), as modelled in Fig. 4.

The signature-free asynchronous Byzantine consensus protocol with
``O(n^2)`` messages and ``t < n/3``.  Each round: BV-broadcast the
estimate (EST messages, counters ``b0``/``b1``), broadcast one AUX
message for a value in ``bin_values`` (counters ``a0``/``a1``), wait for
``n - t`` AUX messages carrying ``bin_values``-justified values, then
consult the common coin (variables ``cc0``/``cc1``).

Locations of the process automaton (Fig. 4(a)):

* ``J0/J1``        — border (round entry with estimate 0/1);
* ``I0/I1``        — initial;
* ``S0/S1/S2``     — EST broadcast done for 0 / 1 / both (after relay);
* ``B0/B1``        — AUX(v) sent with ``bin_values = {v}``;
* ``Bp0/Bp1``      — ditto, after additionally relaying the other EST
  (the figure's ``B'0``/``B'1``);
* ``B2``           — AUX sent and ``bin_values = {0, 1}``;
* ``M0/M1/Mbot``   — the crusader-agreement outputs ``values = {0}``,
  ``{1}``, ``{0,1}``;
* ``E0/E1``        — round ends with new estimate, no decision;
* ``D0/D1``        — decision locations.

The rule table mirrors Table I of the paper.  The known adaptive-
adversary attack (§II) shows up as a violation of the binding condition
CB2 on :func:`refined_model` (Fig. 6 refinement of rule ``r21``).
"""

from __future__ import annotations

from repro.core.builder import AutomatonBuilder
from repro.core.coin import standard_coin_automaton
from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.system import SystemModel
from repro.core.transforms import refine_bca

NAME = "mmr14"

SHARED_VARS = ("b0", "b1", "a0", "a1")
COIN_VARS = ("cc0", "cc1")


def automaton():
    """The Fig. 4(a) process automaton with Table I's rules."""
    n, t, f = params("n t f")
    b = AutomatonBuilder(NAME)
    b.shared(*SHARED_VARS)
    b.coins(*COIN_VARS)

    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    for name in ("S0",):
        b.location(name, value=0)
    for name in ("S1",):
        b.location(name, value=1)
    b.location("S2")
    b.location("B0", value=0)
    b.location("B1", value=1)
    b.location("Bp0", value=0)
    b.location("Bp1", value=1)
    b.location("B2")
    b.location("M0", value=0)
    b.location("M1", value=1)
    b.location("Mbot")
    b.final("E0", value=0)
    b.final("E1", value=1)
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)

    b0, b1 = b.var("b0"), b.var("b1")
    a0, a1 = b.var("a0"), b.var("a1")
    cc0, cc1 = b.var("cc0"), b.var("cc1")

    relay1 = b1 >= t + 1 - f          # saw t+1 EST(1): relay it
    relay0 = b0 >= t + 1 - f
    bin0 = b0 >= 2 * t + 1 - f        # 0 joins bin_values
    bin1 = b1 >= 2 * t + 1 - f
    aux0 = a0 >= n - t - f            # n-t AUX all carry 0
    aux1 = a1 >= n - t - f
    aux_any = a0 + a1 >= n - t - f    # n-t AUX messages in total
    coin0 = cc0 > 0
    coin1 = cc1 > 0

    # Round entry (not counted in the paper's |R|).
    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    # BV-broadcast of the estimate.
    b.rule("r3", "I0", "S0", update={"b0": 1})
    b.rule("r4", "I1", "S1", update={"b1": 1})
    # Relay the other value after t+1 copies (still before AUX).
    b.rule("r5", "S0", "S2", guard=relay1, update={"b1": 1})
    b.rule("r6", "S1", "S2", guard=relay0, update={"b0": 1})
    # AUX broadcast once a value enters bin_values.
    b.rule("r7", "S0", "B0", guard=bin0, update={"a0": 1})
    b.rule("r8", "S1", "B1", guard=bin1, update={"a1": 1})
    b.rule("r9", "S2", "B0", guard=bin0, update={"a0": 1})
    b.rule("r10", "S2", "B1", guard=bin1, update={"a1": 1})
    # Relaying may also happen after the AUX broadcast.
    b.rule("r11", "B0", "Bp0", guard=relay1, update={"b1": 1})
    b.rule("r12", "B1", "Bp1", guard=relay0, update={"b0": 1})
    # The second value joins bin_values.
    b.rule("r13", "Bp0", "B2", guard=bin1)
    b.rule("r14", "Bp1", "B2", guard=bin0)
    # Collect n-t AUX messages: values = {0}, {1} or {0, 1}.
    b.rule("r15", "B0", "M0", guard=aux0)
    b.rule("r16", "Bp0", "M0", guard=aux0)
    b.rule("r17", "B2", "M0", guard=aux0)
    b.rule("r18", "B1", "M1", guard=aux1)
    b.rule("r19", "Bp1", "M1", guard=aux1)
    b.rule("r20", "B2", "M1", guard=aux1)
    b.rule("r21", "B2", "Mbot", guard=aux_any)
    # Consult the common coin (the six coin-based rules).
    b.rule("r22", "M0", "D0", guard=coin0)     # values={0}, coin 0: decide
    b.rule("r23", "M0", "E0", guard=coin1)     # values={0}, coin 1: est 0
    b.rule("r24", "M1", "D1", guard=coin1)
    b.rule("r25", "M1", "E1", guard=coin0)
    b.rule("r26", "Mbot", "E0", guard=coin0)   # mixed: adopt the coin
    b.rule("r27", "Mbot", "E1", guard=coin1)
    # Round switches (dashed arrows of Fig. 4(a)).
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    b.round_switch("D0", "J0", name="rs3")
    b.round_switch("D1", "J1", name="rs4")
    return b.build(check="multi_round")


def environment():
    """``n > 3t ∧ t >= f ∧ f >= 0`` — MMR14's resilience condition.

    (Example 2 of the paper illustrates the model with ``n > 5t``; the
    experiments — e.g. the reported counterexample with ``n = 193``,
    ``t = 64`` — use the protocol's native ``t < n/3`` bound, which is
    what we adopt.)
    """
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
        num_coins=1,
    )


def model(coin: CoinLike = None) -> SystemModel:
    """The unrefined MMR14 system model (process + coin automata)."""
    spec = resolve_coin_spec(coin)
    return SystemModel(
        name=NAME,
        environment=environment(),
        process=spec.adapt_process(automaton()),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={"M0": "M0", "M1": "M1", "Mbot": "Mbot"},
        description="Mostéfaoui-Moumen-Raynal 2014 (attackable, category C)",
    )


def refined_model(coin: CoinLike = None) -> SystemModel:
    """MMR14 after the Fig. 6 binding refinement of rule ``r21``.

    Adds bookkeeping locations ``N0``/``N1``/``Nbot`` recording whether
    the process that moved to ``Mbot`` had seen a 0, a 1, or neither
    among its AUX messages — the shape required by conditions CB2–CB4.
    """
    refined = refine_bca(
        automaton(), "r21", m0_var="a0", m1_var="a1",
        n0="N0", n1="N1", nbot="Nbot", name=f"{NAME}-refined",
    )
    refined.check_multi_round_form()
    spec = resolve_coin_spec(coin)
    return SystemModel(
        name=f"{NAME}-refined",
        environment=environment(),
        process=spec.adapt_process(refined),
        coin=standard_coin_automaton(SHARED_VARS, COIN_VARS, prefix=NAME,
                                     spec=spec),
        category="C",
        crusader_locations={
            "M0": "M0", "M1": "M1", "Mbot": "Mbot",
            "N0": "N0", "N1": "N1", "Nbot": "Nbot",
        },
        description="MMR14 with the Fig. 6 refinement (exhibits the CB2 attack)",
    )
