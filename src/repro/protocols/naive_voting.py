"""The naive majority-voting protocol (Fig. 2/3 of the paper).

Every correct process broadcasts its binary input and decides a value
once it has seen it ``(n+1)/2`` times (Byzantine messages included).
The threshold automaton (Fig. 3) has initial locations ``I0``/``I1``,
the sent-my-vote location ``S`` and decision locations ``D0``/``D1``::

    r1 = (I0, S, true, v0++)            r3 = (S, D0, 2*(v0 + f) >= n+1, -)
    r2 = (I1, S, true, v1++)            r4 = (S, D1, 2*(v1 + f) >= n+1, -)

This is the paper's teaching example: with ``f >= 1`` Byzantine
processes (whose votes may be equivocated), Agreement is violated — the
quickstart example lets the explicit checker exhibit the split.
"""

from __future__ import annotations

from repro.core.builder import AutomatonBuilder
from repro.core.coinspec import CoinLike
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.system import SystemModel

NAME = "naive-voting"


def automaton():
    """The Fig. 3 threshold automaton (one-shot, no rounds, no coin)."""
    n, f = params("n f")
    b = AutomatonBuilder(NAME)
    b.shared("v0", "v1")
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("S")
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)
    v0, v1 = b.var("v0"), b.var("v1")
    # Guards: 2*(v_b + f) >= n + 1, rewritten over the correct-sender
    # counter v_b as 2*v_b >= n + 1 - 2*f.
    b.rule("r1", "I0", "S", update={"v0": 1})
    b.rule("r2", "I1", "S", update={"v1": 1})
    b.rule("r3", "S", "D0", guard=v0 + v0 >= n + 1 - 2 * f)
    b.rule("r4", "S", "D1", guard=v1 + v1 >= n + 1 - 2 * f)
    return b.build(check="canonical")


def model(coin: CoinLike = None) -> SystemModel:
    """The naive-voting system model over ``n > 2f``.

    The protocol uses no common coin, so ``coin`` is accepted for
    matrix uniformity and deliberately ignored — every coin spec yields
    the identical model (the coin_verdicts fixture records exactly
    that invariance).
    """
    n, f = params("n f")
    env = standard_environment(
        resilience=(gt(n, 2 * f), ge(f, 0)),
        parameters="n f",
        num_processes=n - f,
        num_coins=0,
    )
    return SystemModel(
        name=NAME,
        environment=env,
        process=automaton(),
        coin=None,
        category=None,
        description="Fig. 2/3 naive majority voting (agreement breaks for f >= 1)",
    )
