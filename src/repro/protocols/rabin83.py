"""Rabin83 — randomized Byzantine consensus with a dealer coin (FOCS'83).

The first common-coin randomized consensus protocol; tolerates
``t < n/10`` Byzantine processes.  Our model is the paper's category
(A): there is **no decide action** — the almost-sure termination
property is that all correct processes eventually hold the same value
(the probability of disagreement after ``R`` rounds is ``O(2^-R)``).

Per round each process broadcasts its estimate, waits for ``n - t``
votes and then either adopts a clear majority value or the common coin:

* ``adopt(v)``: a view with a ``(n+t)/2``-majority of ``v`` exists —
  ``2*v_v >= n + t + 2 - 2f`` — and two such views cannot exist for
  different values (``2*(n+t+2-2f) > 2*(n-f)`` under ``t >= f``);
* ``mixed``: a no-majority view exists, which requires genuine support
  for both values (``v_b >= t + 1 - f`` each) on top of the ``n - t``
  delivery quorum.
"""

from __future__ import annotations

from repro.core.coinspec import CoinLike
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.guards import Var
from repro.core.system import SystemModel
from repro.protocols.common import voting_model

NAME = "rabin83"


def environment():
    """``n > 10t ∧ t >= f ∧ t >= 1`` (Rabin's resilience)."""
    n, t, f = params("n t f")
    return standard_environment(
        resilience=(gt(n, 10 * t), ge(t, f), ge(f, 0), ge(t, 1)),
        parameters="n t f",
        num_processes=n - f,
    )


def model(coin: CoinLike = None) -> SystemModel:
    """The Rabin83 system model (category A: adopt-majority or coin)."""
    n, t, f = params("n t f")
    v0, v1 = Var("v0"), Var("v1")
    majority = {
        0: (v0 + v0 >= n + t + 2 - 2 * f,),
        1: (v1 + v1 >= n + t + 2 - 2 * f,),
    }
    mixed = (
        v0 + v1 >= n - t - f,
        v0 >= t + 1 - f,
        v1 >= t + 1 - f,
    )
    return voting_model(
        name=NAME,
        environment=environment(),
        category="A",
        strong=None,  # category (A): no decide action
        adopt=lambda v: majority[v],
        mixed=mixed,
        description="Rabin 1983, dealer common coin, t < n/10, category A",
        coin=coin,
    )
