"""Registry of the paper's benchmark protocols (§VI).

:func:`benchmark` returns the 8 rows of Table II in order, each as a
:class:`ProtocolEntry` carrying the model factories, the category, the
valuation used for explicit cross-checks, and the paper's reference
numbers (|L|, |R|) for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.coinspec import CoinLike
from repro.core.system import SystemModel
from repro.protocols import aby22, cc85, fmr05, ks16, miller18, mmr14, rabin83


@dataclass(frozen=True)
class ProtocolEntry:
    """One benchmark protocol: factories plus reference metadata.

    Every factory accepts an optional ``coin`` keyword (a
    :class:`~repro.core.coinspec.CoinSpec`, spec string, or None for
    the default perfect coin), so one registry entry yields a whole
    family of models — one per coin model.
    """

    name: str
    category: str
    model: Callable[..., SystemModel]
    #: Refined model for the binding conditions (category C only).
    refined: Optional[Callable[..., SystemModel]]
    #: Smallest admissible valuation used for explicit cross-checks.
    small_valuation: Dict[str, int]
    #: (|L|, |R|) reported in the paper's Table II.
    paper_size: Tuple[int, int]
    #: Did the paper's verification find a counterexample (termination)?
    paper_termination_ce: bool = False

    def build_model(self, coin: CoinLike = None) -> SystemModel:
        """The (unrefined) model under the given coin spec."""
        if coin is None:
            return self.model()
        return self.model(coin=coin)

    def verification_model(self, coin: CoinLike = None) -> SystemModel:
        """The model the termination obligations run on."""
        factory = self.refined if self.refined is not None else self.model
        if coin is None:
            return factory()
        return factory(coin=coin)


BENCHMARK: Tuple[ProtocolEntry, ...] = (
    ProtocolEntry(
        name="rabin83",
        category="A",
        model=rabin83.model,
        refined=None,
        small_valuation={"n": 11, "t": 1, "f": 1},
        paper_size=(7, 17),
    ),
    ProtocolEntry(
        name="cc85a",
        category="B",
        model=cc85.model_a,
        refined=None,
        small_valuation={"n": 4, "t": 1, "f": 1},
        paper_size=(9, 18),
    ),
    ProtocolEntry(
        name="cc85b",
        category="B",
        model=cc85.model_b,
        refined=None,
        small_valuation={"n": 7, "t": 1, "f": 1},
        paper_size=(10, 17),
    ),
    ProtocolEntry(
        name="fmr05",
        category="B",
        model=fmr05.model,
        refined=None,
        small_valuation={"n": 6, "t": 1, "f": 1},
        paper_size=(10, 16),
    ),
    ProtocolEntry(
        name="ks16",
        category="B",
        model=ks16.model,
        refined=None,
        small_valuation={"n": 4, "t": 1, "f": 1},
        paper_size=(11, 26),
    ),
    ProtocolEntry(
        name="mmr14",
        category="C",
        model=mmr14.model,
        refined=mmr14.refined_model,
        small_valuation={"n": 4, "t": 1, "f": 1},
        paper_size=(17, 29),
        paper_termination_ce=True,
    ),
    ProtocolEntry(
        name="miller18",
        category="C",
        model=miller18.model,
        refined=miller18.refined_model,
        small_valuation={"n": 4, "t": 1, "f": 1},
        paper_size=(22, 48),
    ),
    ProtocolEntry(
        name="aby22",
        category="C",
        model=aby22.model,
        refined=aby22.refined_model,
        small_valuation={"n": 4, "t": 1, "f": 1},
        paper_size=(22, 49),
    ),
)


def benchmark() -> Tuple[ProtocolEntry, ...]:
    """The 8 protocols of the paper's Table II, in order."""
    return BENCHMARK


def names() -> Tuple[str, ...]:
    """The registry protocol names, sorted."""
    return tuple(sorted(entry.name for entry in BENCHMARK))


def by_name(name: str) -> ProtocolEntry:
    for entry in BENCHMARK:
        if entry.name == name:
            return entry
    raise KeyError(
        f"unknown benchmark protocol {name!r}; known protocols: "
        f"{', '.join(names())}"
    )
