"""Verification-as-a-service: a daemon over the warm supervised pool.

The package splits along the process boundary:

* :mod:`repro.service.server` — the daemon
  (:class:`VerificationService`, :func:`serve`): one persistent
  :class:`~repro.api.supervisor.SupervisedPool` whose warm state
  survives across HTTP requests, streaming NDJSON results as tasks
  complete;
* :mod:`repro.service.registry` — the daemon's bookkeeping: in-flight
  dedup (:class:`TaskRegistry`), the durable completion log
  (:class:`ServiceJournal`) a restarted daemon resumes from, and the
  state-file breadcrumb ``harness cache info`` reports;
* :mod:`repro.service.client` — the stdlib-only thin client
  (:class:`ServiceClient`) that rebuilds local-identical
  :class:`~repro.api.report.RunReport` objects from the stream
  (``harness verify|sweep --server URL``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.registry import (
    SERVICE_JOURNAL_NAME,
    SERVICE_STATE_NAME,
    ServiceJournal,
    TaskRegistry,
    read_state_file,
)
from repro.service.server import VerificationService, serve

__all__ = [
    "SERVICE_JOURNAL_NAME",
    "SERVICE_STATE_NAME",
    "ServiceClient",
    "ServiceError",
    "ServiceJournal",
    "TaskRegistry",
    "VerificationService",
    "read_state_file",
    "serve",
]
