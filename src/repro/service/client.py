"""Stdlib-only client for the verification daemon.

:class:`ServiceClient` speaks the daemon's small HTTP surface —
``GET /v1/status``, ``POST /v1/verify`` (one task, one JSON result)
and ``POST /v1/sweep`` (a matrix in, an NDJSON result stream out) —
using nothing beyond ``http.client``, so any environment that can run
the harness can be a thin client.

:meth:`ServiceClient.submit` reassembles the stream into exactly the
:class:`~repro.api.report.RunReport` a local
:class:`~repro.api.sweep.SweepRunner` would return: results land in
*input task order* regardless of completion order, and verdict
payloads are byte-identical to local runs (only the transport
metadata — ``cached`` / ``deduped`` flags, the daemon's request id —
differs, exactly as a warm local cache run differs from a cold one).
That equivalence is what lets ``harness verify|sweep --server URL``
swap the execution substrate without touching anything downstream.

Every failure mode — connection refused, non-200 status, a malformed
stream line, the daemon announcing shutdown mid-stream, or the
connection closing before the final ``done`` event — raises
:class:`ServiceError` with enough context to retry or fall back to a
local run.
"""

from __future__ import annotations

import json
import socket
import urllib.parse
from http.client import HTTPConnection, HTTPException
from typing import List, Optional, Sequence

from repro.api.report import RunReport, TaskResult
from repro.api.task import VerificationTask

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Any client-visible failure talking to the verification daemon."""


class ServiceClient:
    """A thin client bound to one daemon URL.

    Args:
        url: the daemon endpoint, e.g. ``http://127.0.0.1:8123`` (a
            bare ``host:port`` is accepted too).  Only ``http`` — the
            daemon binds loopback/LAN addresses, not the open internet.
        timeout: socket timeout in seconds for connects *and* each
            stream read.  The default ``None`` blocks indefinitely,
            which is right for verification tasks that legitimately
            compute for minutes between stream events; pass a bound
            when probing liveness (see :meth:`status`).
    """

    def __init__(self, url: str, timeout: Optional[float] = None):
        self.url = url
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(
            url if "//" in url else f"http://{url}"
        )
        if parsed.scheme not in ("", "http"):
            raise ServiceError(
                f"unsupported scheme {parsed.scheme!r} in {url!r} "
                f"(the verification service speaks plain http)"
            )
        if not parsed.hostname:
            raise ServiceError(f"no host in service url {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 8123
        self._base = parsed.path.rstrip("/")

    def _connect(self, timeout: Optional[float]) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=timeout)

    def _request(self, method: str, path: str, body: Optional[dict],
                 timeout: Optional[float]):
        """Open one connection, send one request, return the response.

        The caller owns the connection (close-delimited streaming needs
        it alive until the last line) and must ``close`` it.
        """
        conn = self._connect(timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            conn.request(
                method, f"{self._base}{path}", body=payload,
                headers={"Content-Type": "application/json"}
                if payload else {},
            )
            return conn, conn.getresponse()
        except (OSError, HTTPException) as exc:
            conn.close()
            raise ServiceError(
                f"cannot reach verification service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc

    @staticmethod
    def _json(resp, what: str) -> dict:
        try:
            return json.loads(resp.read().decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(f"malformed {what} from service: {exc}") from exc

    # ------------------------------------------------------------------
    def status(self, timeout: Optional[float] = 10.0) -> dict:
        """``GET /v1/status`` (bounded by its own, short, timeout)."""
        conn, resp = self._request("GET", "/v1/status", None, timeout)
        try:
            if resp.status != 200:
                raise ServiceError(
                    f"status endpoint answered {resp.status}: "
                    f"{resp.read().decode('utf-8', 'replace')[:200]}"
                )
            return self._json(resp, "status payload")
        finally:
            conn.close()

    def verify(self, task: VerificationTask) -> TaskResult:
        """Run one task on the daemon; returns its result."""
        conn, resp = self._request(
            "POST", "/v1/verify", {"tasks": [task.to_dict()]}, self.timeout
        )
        try:
            payload = self._json(resp, "verify payload")
            if resp.status != 200:
                raise ServiceError(
                    f"verify answered {resp.status}: "
                    f"{payload.get('error', payload)}"
                )
            return TaskResult.from_dict(payload)
        except (KeyError, TypeError) as exc:
            raise ServiceError(
                f"malformed verify payload from service: {exc}"
            ) from exc
        finally:
            conn.close()

    def submit(self, tasks: Sequence[VerificationTask],
               request_id: Optional[str] = None) -> RunReport:
        """Run a matrix on the daemon; returns the input-ordered report."""
        tasks = list(tasks)
        body = {"tasks": [task.to_dict() for task in tasks]}
        if request_id:
            body["request_id"] = request_id
        conn, resp = self._request("POST", "/v1/sweep", body, self.timeout)
        try:
            if resp.status != 200:
                detail = self._json(resp, "error payload").get("error", "")
                raise ServiceError(f"sweep answered {resp.status}: {detail}")
            return self._read_stream(resp, len(tasks))
        except socket.timeout as exc:
            raise ServiceError(
                f"service stream timed out after {self.timeout}s (long "
                f"tasks stream no partial events; raise the client "
                f"timeout)"
            ) from exc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def _read_stream(self, resp, total: int) -> RunReport:
        """Fold the NDJSON stream into a RunReport (validating it)."""
        results: List[Optional[TaskResult]] = [None] * total
        report_meta: Optional[dict] = None
        while True:
            line = resp.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise ServiceError(
                    f"malformed stream line from service: {exc}"
                ) from exc
            kind = event.get("event")
            if kind == "result":
                try:
                    index = int(event["index"])
                    results[index] = TaskResult.from_dict(event["result"])
                except (KeyError, TypeError, ValueError, IndexError) as exc:
                    raise ServiceError(
                        f"malformed result event from service: {exc}"
                    ) from exc
            elif kind == "error":
                raise ServiceError(
                    f"service aborted the request: "
                    f"{event.get('message', 'unknown error')}"
                )
            elif kind == "done":
                report_meta = event.get("report", {})
                break
            else:
                raise ServiceError(f"unknown stream event {kind!r}")
        if report_meta is None:
            raise ServiceError(
                "service connection closed before the final report "
                "(daemon stopped or crashed mid-request?)"
            )
        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            raise ServiceError(
                f"service stream finished without results for task "
                f"indices {missing}"
            )
        return RunReport(
            results=tuple(results),
            processes=int(report_meta.get("processes", 1)),
            code_version=report_meta.get("code_version", ""),
            time_seconds=float(report_meta.get("time_seconds", 0.0)),
            cache_hits=int(report_meta.get("cache_hits", 0)),
            request_id=report_meta.get("request_id", ""),
            deduped=int(report_meta.get("deduped", 0)),
        )
