"""Daemon-side task registry: in-flight dedup + the service journal.

The verification daemon serves many clients from one warm substrate;
this module is the bookkeeping that makes that safe and cheap:

* :class:`TaskRegistry` — a thread-safe map from task identity
  (:attr:`~repro.api.task.VerificationTask.dedup_key`) to either a
  *completed* result payload or an *in-flight* computation with
  waiters.  Identical tasks submitted by concurrent clients collapse
  onto one computation: the first claim owns it, every later claim
  joins as a waiter and is notified when the owner's result lands.
  Completed non-error results are retained for the daemon's lifetime
  (the in-memory warm layer above the on-disk
  :class:`~repro.api.sweep.ResultCache`); error results notify their
  waiters but are *not* retained, so a later request retries instead
  of replaying a failure forever — the same rule the sweep journal
  applies on load.

* :class:`ServiceJournal` — the daemon's durable completion log, one
  JSON line per finished task keyed by ``dedup_key``.  Unlike the
  per-sweep :class:`~repro.api.journal.RunJournal` (which fingerprints
  one fixed task list), the service journal spans arbitrary requests,
  so records are keyed by task identity rather than input index.  A
  restarted daemon preloads it into the registry and serves previously
  completed work in milliseconds instead of recomputing — the
  restart-and-resume half of the daemon's SIGTERM contract (the other
  half is that completions are appended and flushed as they happen, so
  an interrupted daemon's journal already holds everything that
  finished).  The header pins the code version: a journal written by
  different sources is discarded wholesale, never replayed.

* the **state file** (``service-state.json``) — a breadcrumb the
  daemon drops in its state directory while running (pid, endpoint,
  pool size) and removes on clean shutdown, so ``harness cache info``
  can report what daemon owns a cache directory and whether it exited
  cleanly.

Everything here is I/O-best-effort in the house style: a torn journal
tail, an unreadable state file, or a full disk costs warmth or a
breadcrumb, never the daemon.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "SERVICE_JOURNAL_NAME",
    "SERVICE_STATE_NAME",
    "ServiceJournal",
    "TaskRegistry",
    "read_state_file",
    "remove_state_file",
    "write_state_file",
]

#: File names a daemon leaves under its state directory; the cache
#: maintenance CLI knows both (``info`` lists them, ``clear`` removes
#: them, ``prune`` leaves them alone — resume data survives upkeep).
SERVICE_JOURNAL_NAME = "service-journal.jsonl"
SERVICE_STATE_NAME = "service-state.json"

_MAGIC = "repro-service-journal"
_FORMAT = 1

#: ``waiter(key, payload)`` — ``payload`` is a TaskResult ``to_dict``
#: dict, or None when the daemon is shutting down before completion.
Waiter = Callable[[str, Optional[dict]], None]


class _InFlight:
    """One claimed-but-unfinished task and everyone waiting on it."""

    __slots__ = ("task", "waiters")

    def __init__(self, task):
        self.task = task
        self.waiters: List[Waiter] = []


class TaskRegistry:
    """Thread-safe dedup registry (see the module doc).

    Lock discipline: every state transition happens under one lock;
    waiter callbacks are invoked *outside* it (they enqueue into a
    request's queue and may run arbitrary handler-side code).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._done: Dict[str, dict] = {}
        self._inflight: Dict[str, _InFlight] = {}

    # -- serving -------------------------------------------------------
    def resolve(self, key: str) -> Optional[dict]:
        """The retained payload for ``key``, or None."""
        with self._lock:
            return self._done.get(key)

    def claim(self, key: str, task, waiter: Waiter) -> Tuple[str, Optional[dict]]:
        """Atomically route one submission of ``key``.

        Returns ``("done", payload)`` when a retained result exists
        (claim raced a completion), ``("joined", None)`` when the key
        is already in flight (``waiter`` registered — this submission
        triggered no computation), or ``("claimed", None)`` when this
        submission owns the computation (``waiter`` registered; the
        caller must dispatch the task and eventually :meth:`complete`).
        """
        with self._lock:
            payload = self._done.get(key)
            if payload is not None:
                return "done", payload
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters.append(waiter)
                return "joined", None
            entry = _InFlight(task)
            entry.waiters.append(waiter)
            self._inflight[key] = entry
            return "claimed", None

    def adopt(self, key: str, payload: dict) -> None:
        """Retain an externally-served result (a disk-cache hit).

        Never displaces an in-flight computation or an existing
        retained payload — adoption is a warmth optimization, not a
        source of truth.
        """
        with self._lock:
            if key not in self._done and key not in self._inflight:
                self._done[key] = payload

    def preload(self, payloads: Dict[str, dict]) -> None:
        """Bulk-adopt journal payloads at daemon startup."""
        with self._lock:
            for key, payload in payloads.items():
                self._done.setdefault(key, payload)

    # -- completing ----------------------------------------------------
    def complete(self, key: str, payload: dict, retain: bool) -> None:
        """Land a computed result and notify every waiter.

        ``retain=False`` (error results) notifies waiters but leaves
        no retained entry, so the next request recomputes.
        """
        with self._lock:
            entry = self._inflight.pop(key, None)
            if retain:
                self._done[key] = payload
            waiters = list(entry.waiters) if entry is not None else []
        for waiter in waiters:
            waiter(key, payload)

    def fail_pending(self) -> int:
        """Wake every in-flight waiter with None (daemon shutdown)."""
        with self._lock:
            entries = list(self._inflight.items())
            self._inflight.clear()
        for key, entry in entries:
            for waiter in entry.waiters:
                waiter(key, None)
        return len(entries)

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "retained": len(self._done),
                "in_flight": len(self._inflight),
            }


class ServiceJournal:
    """Append-only completion log of one daemon state directory.

    Format — one JSON object per line:

    * line 1, the header: ``{"magic", "format", "version"}`` where
      ``version`` is the code version the daemon runs; a journal whose
      header doesn't match is discarded (truncated) on load;
    * each following line: ``{"key", "task", "result"}`` — the dedup
      key, the human-readable
      :attr:`~repro.api.task.VerificationTask.journal_key` (a
      double-check and debugging aid), and the full TaskResult payload.

    Load semantics mirror the sweep journal: torn tails are skipped,
    duplicate keys resolve last-wins, and error results are appended
    (a diagnostic trail) but never preloaded.
    """

    def __init__(self, path, version: str):
        self.path = Path(path)
        self.version = version
        self._lock = threading.Lock()
        self._handle = None

    # -- reading -------------------------------------------------------
    def load(self) -> Dict[str, dict]:
        """Replayable payloads by dedup key; prepares for appending."""
        payloads: Dict[str, dict] = {}
        lines: List[str] = []
        if self.path.exists():
            try:
                lines = self.path.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
        if lines and self._header_matches(lines[0]):
            for line in lines[1:]:
                parsed = self._parse(line)
                if parsed is not None:
                    key, payload = parsed
                    if not payload.get("error"):
                        payloads[key] = payload
            self._open(fresh=False)
        else:
            payloads.clear()
            self._open(fresh=True)
        return payloads

    def _header_matches(self, line: str) -> bool:
        try:
            header = json.loads(line)
        except (json.JSONDecodeError, ValueError):
            return False
        return (
            isinstance(header, dict)
            and header.get("magic") == _MAGIC
            and header.get("format") == _FORMAT
            and header.get("version") == self.version
        )

    @staticmethod
    def _parse(line: str) -> Optional[Tuple[str, dict]]:
        try:
            record = json.loads(line)
            return str(record["key"]), dict(record["result"])
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            return None  # torn/corrupt line — tolerated by design

    # -- writing -------------------------------------------------------
    def _open(self, fresh: bool) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if fresh or not self.path.exists():
                header = json.dumps(
                    {"magic": _MAGIC, "format": _FORMAT,
                     "version": self.version},
                    sort_keys=True,
                )
                self._handle = open(self.path, "w", encoding="utf-8")
                self._handle.write(header + "\n")
                self._handle.flush()
            else:
                self._handle = open(self.path, "a", encoding="utf-8")
        except OSError:
            self._handle = None  # journaling is best-effort

    def append(self, key: str, task_key: str, payload: dict) -> None:
        """Persist one completion (flushed per record, crash-tolerant).

        Thread-safe: the dispatcher appends while handler threads may
        be triggering a close during shutdown.
        """
        with self._lock:
            if self._handle is None:
                return
            try:
                self._handle.write(json.dumps(
                    {"key": key, "task": task_key, "result": payload},
                    sort_keys=True,
                ) + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# The daemon's state-file breadcrumb
# ----------------------------------------------------------------------
def write_state_file(root, info: dict) -> None:
    """Drop ``service-state.json`` under ``root`` (best-effort)."""
    path = Path(root) / SERVICE_STATE_NAME
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(info, indent=1, sort_keys=True) + "\n")
        tmp.replace(path)
    except OSError:
        pass


def read_state_file(root) -> Optional[dict]:
    """The parsed state file under ``root``, or None (never raises)."""
    try:
        blob = json.loads((Path(root) / SERVICE_STATE_NAME).read_text())
    except (OSError, ValueError):
        return None
    return blob if isinstance(blob, dict) else None


def remove_state_file(root) -> None:
    try:
        (Path(root) / SERVICE_STATE_NAME).unlink()
    except OSError:
        pass
