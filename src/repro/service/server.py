"""The verification daemon: HTTP requests in, warm pool results out.

:class:`VerificationService` is a long-running process hosting exactly
one **persistent** :class:`~repro.api.supervisor.SupervisedPool`.
Clients POST :class:`~repro.api.task.VerificationTask` matrices as
JSON; the daemon queues them onto the warm fleet — whose compiled
protocol programs, interned states and graph-store caches survive
across requests — and streams each task's
:class:`~repro.api.report.TaskResult` back as NDJSON the moment it
completes.  Request cost drops from "fork + import + compile +
explore" to "explore what's new", and repeated requests drop to
milliseconds.

Three layers answer a submitted task, each consulted in order:

1. the in-memory :class:`~repro.service.registry.TaskRegistry` — a
   result computed (or loaded) earlier in this daemon's lifetime is
   served instantly with ``cached=True``;
2. the on-disk :class:`~repro.api.sweep.ResultCache` under the state
   directory (the same layout ``sweep --cache-dir`` uses, so daemon
   and local sweeps share warmth);
3. the pool — unless an *identical* task (by
   :attr:`~repro.api.task.VerificationTask.dedup_key`) is already in
   flight for any client, in which case this submission joins it as a
   waiter and is served the same result with ``deduped=True``: two
   concurrent clients submitting the same matrix cost one computation.

Request handling is thread-per-connection
(:class:`~http.server.ThreadingHTTPServer`); all pool dispatch happens
on one *dispatcher* thread that drains the submission queue in batches,
so the single-consumer discipline of
:meth:`~repro.api.supervisor.SupervisedPool.run` is preserved while
any number of requests stream concurrently.  Responses are
HTTP/1.0-style close-delimited streams (no ``Content-Length``), which
keeps the client a stdlib ``http.client`` + ``readline`` loop.

Shutdown (SIGTERM/SIGINT via :func:`serve`, or :meth:`~
VerificationService.stop`) is drain-and-journal, not drop: the
dispatcher's in-flight batch is interrupted through the pool's
``stop`` hook, everything workers already completed is appended to the
:class:`~repro.service.registry.ServiceJournal` (flushed per record,
so it is durable the moment it lands), pending streams are woken with
an error event, workers are reaped, and the state-file breadcrumb is
removed.  A daemon restarted on the same ``--cache-dir`` preloads the
journal and serves every previously-completed task without recompute —
the restart-and-resume contract CI's smoke job drills.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.report import TaskResult
from repro.api.supervisor import RetryPolicy, SupervisedPool
from repro.api.sweep import (
    ResultCache,
    SweepRunner,
    _fallback_result,
    _failure_result,
    _init_worker,
    _transient_result,
    run_task,
)
from repro.api.task import VerificationTask
from repro.core.coinspec import resolve_coin_spec
from repro.counter.system import flush_shared_graphs
from repro.errors import CheckError
from repro.service.registry import (
    SERVICE_JOURNAL_NAME,
    ServiceJournal,
    TaskRegistry,
    remove_state_file,
    write_state_file,
)
from repro.version import code_version

__all__ = ["VerificationService", "serve"]

#: Sentinel the dispatcher queue uses to wake for shutdown.
_STOP = object()

#: How a submitted task was answered (per slot, in claim order).
_COMPUTED, _DEDUPED, _WARM = "computed", "deduped", "warm"


class ServiceStopping(CheckError):
    """Raised to submissions that arrive while the daemon shuts down."""


class _PendingRequest:
    """One client request's view of the daemon: slots + an event queue.

    ``submit`` routes every task of the matrix (registry / disk cache /
    dedup join / pool dispatch) and records, per dedup key, the ordered
    list of ``(input index, serving mode)`` slots awaiting it.  Warm
    answers are buffered immediately; computed and deduped answers
    arrive through :meth:`_notify` — the waiter callback the registry
    invokes on completion — and :meth:`events` interleaves both into
    the response stream.  A key submitted twice in one matrix simply
    owns two slots: the registry notifies once per registered waiter,
    and slots pop FIFO in claim order.
    """

    def __init__(self, service: "VerificationService", request_id: str,
                 total: int):
        self.service = service
        self.request_id = request_id
        self.total = total
        self.started = time.perf_counter()
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.slots: Dict[str, List[Tuple[int, str]]] = {}
        self.immediate: List[Tuple[int, dict]] = []
        self.cache_hits = 0
        self.deduped = 0

    def _notify(self, key: str, payload: Optional[dict]) -> None:
        self.queue.put((key, payload))

    # ------------------------------------------------------------------
    def events(self):
        """Yield ``(index, result payload)`` as answers land.

        Warm answers first (in input order), then live completions in
        arrival order.  Raises :class:`ServiceStopping` when the daemon
        shuts down before the request completes.
        """
        for index, payload in self.immediate:
            yield index, payload
        remaining = self.total - len(self.immediate)
        while remaining > 0:
            try:
                key, payload = self.queue.get(timeout=1.0)
            except queue.Empty:
                if self.service.stopping:
                    raise ServiceStopping("daemon is shutting down")
                continue
            if payload is None:
                raise ServiceStopping(
                    "daemon shut down before this task completed"
                )
            index, mode = self.slots[key].pop(0)
            if mode == _DEDUPED:
                payload = dict(payload)
                payload["deduped"] = True
            yield index, payload
            remaining -= 1

    def report(self) -> dict:
        """The stream's final ``done`` event body (RunReport metadata)."""
        return {
            "request_id": self.request_id,
            "processes": self.service.processes,
            "code_version": self.service.version,
            "time_seconds": time.perf_counter() - self.started,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
        }


class VerificationService:
    """The daemon object: one warm pool, one registry, one HTTP server.

    Args:
        host / port: bind address; ``port=0`` picks an ephemeral port
            (read the bound one from :attr:`port` after :meth:`start`).
        processes: persistent pool size.
        state_dir: directory holding the daemon's durable state — the
            on-disk result cache, the service journal and the state
            file; ``None`` runs fully in-memory (no resume, no
            cross-run cache).
        graph_store: backend spec for the workers' persistent
            state-graph store (same syntax as ``sweep --graph-store``).
        task_timeout / retry: supervision knobs, passed through to the
            pool (see :class:`~repro.api.sweep.SweepRunner`).
        fault_plan: a :class:`~repro.testing.faults.FaultPlan`
            installed in pool workers (chaos drills against a live
            daemon; never installed in the daemon process itself).
        default_coin: a :class:`~repro.core.coinspec.CoinSpec` (or
            spec string) applied to every submitted registry task that
            carries no coin of its own; tasks that name a coin keep
            it.  The perfect coin normalizes to None (no rewriting),
            so a ``--coin perfect`` daemon answers byte-identically to
            a coin-less one.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        state_dir: Optional[str] = None,
        graph_store: Optional[str] = None,
        task_timeout: Optional[float] = None,
        retry=None,
        fault_plan=None,
        default_coin=None,
    ):
        self.host = host
        self.port = int(port)
        self.processes = max(1, int(processes))
        self.state_dir = Path(state_dir) if state_dir else None
        self.graph_store = str(graph_store) if graph_store else None
        self.version = code_version()
        spec = resolve_coin_spec(default_coin)
        self.default_coin = None if spec.is_default else spec
        self.registry = TaskRegistry()
        self.cache: Optional[ResultCache] = None
        self.journal: Optional[ServiceJournal] = None
        self._pool = SupervisedPool(
            self.processes,
            run_task,
            initializer=_init_worker,
            initargs=(self.version, self.graph_store),
            task_timeout=task_timeout,
            retry=retry,
            fallback=_fallback_result,
            failure=_failure_result,
            transient=_transient_result,
            finalizer=flush_shared_graphs,
            fault_plan=fault_plan,
        )
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self._stopping = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "tasks_computed": 0,
            "tasks_failed": 0,
            "dedup_hits": 0,
            "cache_hits": 0,
            "worker_restarts": 0,
            "journal_preloaded": 0,
        }
        self._started_at = time.time()

    # ------------------------------------------------------------------
    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Warm up and begin serving (returns once the port is bound)."""
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.cache = ResultCache(self.state_dir)
            self.journal = ServiceJournal(
                self.state_dir / SERVICE_JOURNAL_NAME, self.version
            )
            preloaded = self._preloadable(self.journal.load())
            self.registry.preload(preloaded)
            self._stats["journal_preloaded"] = len(preloaded)
        # Fork the worker fleet before any server thread exists: forking
        # a multi-threaded process risks inheriting held locks.
        self._pool.start()
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatcher", daemon=True
        )
        dispatcher.start()
        self._threads.append(dispatcher)
        try:
            self._httpd = ThreadingHTTPServer((self.host, self.port),
                                              _Handler)
        except OSError:
            # Bind failure after the fleet is warm: reap it before the
            # error propagates, or the workers outlive the daemon.
            self.stop()
            raise
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        server = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-http",
            daemon=True,
        )
        server.start()
        self._threads.append(server)
        if self.state_dir is not None:
            write_state_file(self.state_dir, {
                "pid": os.getpid(),
                "host": self.host,
                "port": self.port,
                "processes": self.processes,
                "code_version": self.version,
                "started": self._started_at,
            })

    @staticmethod
    def _preloadable(payloads: Dict[str, dict]) -> Dict[str, dict]:
        """Journal records safe to serve warm forever.

        The journal's own load drops error records; this additionally
        drops ``max_seconds`` trips by reusing the result cache's
        admission rule — a load-dependent ``unknown`` must recompute,
        not be pinned for the daemon's lifetime.
        """
        replayable: Dict[str, dict] = {}
        for key, payload in payloads.items():
            try:
                if SweepRunner._cacheable(TaskResult.from_dict(payload)):
                    replayable[key] = payload
            except (KeyError, TypeError, ValueError):
                continue
        return replayable

    def stop(self) -> None:
        """Drain, journal, reap, unbind (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._queue.put(_STOP)
        for thread in self._threads:
            if thread.name == "service-dispatcher":
                thread.join(timeout=30.0)
        self._pool.close()
        # Wake every stream still waiting on an abandoned task *after*
        # the pool is down, so completions that raced shutdown were
        # already journaled and notified by the dispatcher.
        self.registry.fail_pending()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self.journal is not None:
            self.journal.close()
        if self.state_dir is not None:
            remove_state_file(self.state_dir)

    def __enter__(self) -> "VerificationService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(self, tasks: Sequence[VerificationTask],
               request_id: Optional[str] = None) -> _PendingRequest:
        """Route one request's matrix; returns its pending stream."""
        if self._stopping.is_set():
            raise ServiceStopping("daemon is shutting down")
        with self._stats_lock:
            self._stats["requests"] += 1
        if not request_id:
            request_id = f"r{next(self._request_ids):06d}"
        pending = _PendingRequest(self, request_id, len(tasks))
        for index, task in enumerate(tasks):
            if (self.default_coin is not None and task.coin is None
                    and task.protocol is not None):
                # The daemon's default coin fills the gap *before*
                # dedup/cache/journal keying, so a defaulted task and
                # an explicitly-coined identical one are one identity.
                task = task.with_coin(self.default_coin)
            key = task.dedup_key
            payload = self.registry.resolve(key)
            if payload is None and self.cache is not None:
                cache_key = self.cache.key_for(task)
                cached = (self.cache.get(cache_key)
                          if cache_key is not None else None)
                if cached is not None:
                    # Strip the transport flag before retaining: each
                    # serve decorates its own copy.
                    blob = cached.to_dict()
                    blob["cached"] = False
                    self.registry.adopt(key, blob)
                    payload = blob
            if payload is not None:
                warm = dict(payload)
                warm["cached"] = True
                pending.immediate.append((index, warm))
                pending.cache_hits += 1
                with self._stats_lock:
                    self._stats["cache_hits"] += 1
                continue
            status, raced = self.registry.claim(key, task, pending._notify)
            if status == "done":
                warm = dict(raced)
                warm["cached"] = True
                pending.immediate.append((index, warm))
                pending.cache_hits += 1
                with self._stats_lock:
                    self._stats["cache_hits"] += 1
                continue
            if status == "joined":
                pending.slots.setdefault(key, []).append((index, _DEDUPED))
                pending.deduped += 1
                with self._stats_lock:
                    self._stats["dedup_hits"] += 1
                continue
            pending.slots.setdefault(key, []).append((index, _COMPUTED))
            self._queue.put((key, task))
        return pending

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """The single pool consumer: drain the queue, run the batch."""
        while not self._stopping.is_set():
            item = self._queue.get()
            if item is _STOP or self._stopping.is_set():
                return
            batch = [item]
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is not _STOP:
                    batch.append(extra)
            assignments: Dict[int, Tuple[str, VerificationTask]] = {}
            jobs = []
            for key, task in batch:
                job_id = next(self._ids)
                assignments[job_id] = (key, task)
                jobs.append([(job_id, task)])

            def on_result(job_id, result, attempts, timed_out,
                          assignments=assignments):
                key, task = assignments[job_id]
                self._complete(
                    key, task,
                    SweepRunner._decorate(result, attempts, timed_out),
                )

            outcome = self._pool.run(
                jobs, on_result=on_result, stop=self._stopping.is_set
            )
            with self._stats_lock:
                self._stats["worker_restarts"] += outcome.worker_restarts

    def _complete(self, key: str, task: VerificationTask,
                  result: TaskResult) -> None:
        """Land one computed result: journal, cache, notify, count."""
        payload = result.to_dict()
        if self.journal is not None:
            self.journal.append(key, task.journal_key, payload)
        retain = SweepRunner._cacheable(result)
        if retain and self.cache is not None:
            cache_key = self.cache.key_for(task)
            if cache_key is not None:
                self.cache.put(cache_key, result)
        with self._stats_lock:
            self._stats["tasks_computed"] += 1
            if result.error:
                self._stats["tasks_failed"] += 1
        self.registry.complete(key, payload, retain=retain)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        with self._stats_lock:
            stats = dict(self._stats)
        stats.update(self.registry.stats())
        stats.update({
            "pid": os.getpid(),
            "host": self.host,
            "port": self.port,
            "processes": self.processes,
            "code_version": self.version,
            "uptime_seconds": time.time() - self._started_at,
            "stopping": self._stopping.is_set(),
            "default_coin": (self.default_coin.spec_str()
                             if self.default_coin is not None else None),
        })
        return stats


class _Handler(BaseHTTPRequestHandler):
    """The daemon's three endpoints (see each ``_handle_*``)."""

    server_version = "repro-verification-service/1"
    protocol_version = "HTTP/1.0"  # close-delimited streams

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, *_args) -> None:
        pass  # the daemon's stdout is its own; HTTP noise helps no one

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path in ("/v1/status", "/healthz"):
            self._send_json(200, self.service.status())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/v1/sweep":
            self._handle_sweep()
        elif self.path == "/v1/verify":
            self._handle_verify()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # ------------------------------------------------------------------
    def _read_tasks(self):
        """Parse the request body into tasks, or answer 4xx and None."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            raw = body["tasks"]
            if not isinstance(raw, list) or not raw:
                raise CheckError("'tasks' must be a non-empty list")
            tasks = [VerificationTask.from_dict(entry) for entry in raw]
        except (CheckError, KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad request: {exc}"})
            return None, None
        return tasks, body.get("request_id")

    def _handle_sweep(self) -> None:
        """POST /v1/sweep — stream NDJSON result events, then ``done``."""
        tasks, request_id = self._read_tasks()
        if tasks is None:
            return
        try:
            pending = self.service.submit(tasks, request_id=request_id)
        except ServiceStopping as exc:
            self._send_json(503, {"error": str(exc)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for index, payload in pending.events():
                self._send_event(
                    {"event": "result", "index": index, "result": payload}
                )
            self._send_event({"event": "done", "report": pending.report()})
        except ServiceStopping as exc:
            self._send_event({"event": "error", "message": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream.  Computation continues —
            # results land in registry/journal/cache for the retry.
            pass

    def _handle_verify(self) -> None:
        """POST /v1/verify — one task, one plain JSON result."""
        tasks, request_id = self._read_tasks()
        if tasks is None:
            return
        if len(tasks) != 1:
            self._send_json(
                400, {"error": "/v1/verify takes exactly one task; "
                               "use /v1/sweep for matrices"})
            return
        try:
            pending = self.service.submit(tasks, request_id=request_id)
            for _index, payload in pending.events():
                self._send_json(200, payload)
                return
        except ServiceStopping as exc:
            self._send_json(503, {"error": str(exc)})

    # ------------------------------------------------------------------
    def _send_event(self, event: dict) -> None:
        self.wfile.write(json.dumps(event).encode("utf-8") + b"\n")
        self.wfile.flush()

    def _send_json(self, code: int, payload: dict) -> None:
        try:
            blob = json.dumps(payload, indent=1).encode("utf-8") + b"\n"
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass


def serve(
    host: str = "127.0.0.1",
    port: int = 8123,
    processes: int = 2,
    state_dir: Optional[str] = None,
    graph_store: Optional[str] = None,
    task_timeout: Optional[float] = None,
    retry=None,
    fault_plan=None,
    default_coin=None,
) -> int:
    """Run a daemon until SIGTERM/SIGINT (the ``harness serve`` body).

    Both signals trigger the same drain-and-journal shutdown
    :meth:`VerificationService.stop` implements; the readiness line
    (``serving on http://…``) is printed only after the port is bound
    and the worker fleet is warm, so wrappers can poll stdout.
    """
    service = VerificationService(
        host=host,
        port=port,
        processes=processes,
        state_dir=state_dir,
        graph_store=graph_store,
        task_timeout=task_timeout,
        retry=retry,
        fault_plan=fault_plan,
        default_coin=default_coin,
    )
    stop_event = threading.Event()
    previous = {
        sig: signal.signal(sig, lambda *_args: stop_event.set())
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        try:
            service.start()
        except OSError as exc:
            print(f"cannot bind {host}:{port}: {exc}", flush=True)
            return 1
        print(
            f"serving on {service.url} "
            f"(pid {os.getpid()}, {service.processes} workers, "
            f"state {service.state_dir or 'in-memory'})",
            flush=True,
        )
        stop_event.wait()
        print("shutting down (draining in-flight work)", flush=True)
        service.stop()
        print("stopped", flush=True)
        return 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
