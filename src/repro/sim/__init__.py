"""Executable asynchronous message-passing substrate.

Real (non-counter-abstracted) implementations of MMR14, Miller18 and
ABY22 over a reliable point-to-point network with adversary-controlled
delivery, Byzantine equivocation and an ε-Good common-coin oracle —
including the §II adaptive attack that starves MMR14 forever.
"""

from repro.sim.aby22 import ABY22Process
from repro.sim.adversary import (
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    RandomScheduler,
    Scheduler,
)
from repro.sim.coin import CommonCoin
from repro.sim.miller18 import Miller18Process
from repro.sim.mmr14 import MMR14Process
from repro.sim.network import Envelope, Message, Network
from repro.sim.process import ByzantineProcess, CorrectProcess, RoundState
from repro.sim.runner import SimResult, Simulation, expected_rounds, run

__all__ = [
    "ABY22Process",
    "AdaptiveCoinAttack",
    "ByzantineProcess",
    "CommonCoin",
    "CorrectProcess",
    "Envelope",
    "EquivocatingByzantine",
    "Message",
    "Miller18Process",
    "MMR14Process",
    "Network",
    "RandomScheduler",
    "RoundState",
    "SimResult",
    "Simulation",
    "expected_rounds",
    "run",
]
