"""Executable asynchronous message-passing substrate.

Real (non-counter-abstracted) implementations of every registry
protocol — the BV-broadcast family (MMR14, Miller18, ABY22) and the
voting family (Rabin83, CC85a/b, FMR05, KS16) — over a reliable
point-to-point network with adversary-controlled delivery, Byzantine
equivocation and an ε-Good common-coin oracle, including the §II
adaptive attack that starves MMR14 forever.  :mod:`repro.sim.fleet`
executes thousands of instances concurrently and
:mod:`repro.sim.crossval` cross-validates the empirical statistics
against the checker's exact MDP.
"""

from repro.sim.aby22 import ABY22Process
from repro.sim.adversary import (
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    RandomScheduler,
    Scheduler,
)
from repro.sim.coin import CommonCoin
from repro.sim.fleet import FleetReport, RunRecord, run_fleet, wilson_interval
from repro.sim.miller18 import Miller18Process
from repro.sim.mmr14 import MMR14Process
from repro.sim.network import Envelope, Message, Network
from repro.sim.process import ByzantineProcess, CorrectProcess, RoundState
from repro.sim.registry import SimProtocol, sim_benchmark, sim_by_name, sim_names
from repro.sim.runner import (
    RoundStats,
    SimResult,
    Simulation,
    expected_rounds,
    expected_rounds_stats,
    run,
    split_seed,
)
from repro.sim.voting import (
    CC85aProcess,
    CC85bProcess,
    FMR05Process,
    KS16Process,
    Rabin83Process,
    VotingProcess,
    converged_round,
)

__all__ = [
    "ABY22Process",
    "AdaptiveCoinAttack",
    "ByzantineProcess",
    "CC85aProcess",
    "CC85bProcess",
    "CommonCoin",
    "CorrectProcess",
    "Envelope",
    "EquivocatingByzantine",
    "FMR05Process",
    "FleetReport",
    "KS16Process",
    "Message",
    "Miller18Process",
    "MMR14Process",
    "Network",
    "Rabin83Process",
    "RandomScheduler",
    "RoundState",
    "RoundStats",
    "RunRecord",
    "Scheduler",
    "SimProtocol",
    "SimResult",
    "Simulation",
    "VotingProcess",
    "converged_round",
    "expected_rounds",
    "expected_rounds_stats",
    "run",
    "run_fleet",
    "sim_benchmark",
    "sim_by_name",
    "sim_names",
    "split_seed",
    "wilson_interval",
]
