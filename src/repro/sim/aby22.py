"""Executable ABY22 — binary agreement via binding crusader agreement.

Per round: BV-broadcast the estimate; once a value ``v`` enters
``bin_values``, broadcast a crusader ``REPORT`` carrying the *current*
``bin_values`` snapshot (``{v}`` or ``{0, 1}``); collect ``n - t``
justified reports and compute the BCA output:

* ``v``   — when *all* ``n - t`` collected reports are exactly ``{v}``
  (any two such quorums share a correct reporter, and a correct
  process sends exactly one report — so opposite non-⊥ outputs are
  impossible even though a Byzantine reporter may send a different
  report set to every receiver);
* ``⊥``  — otherwise.

Then the ABA wrapper: output ``v`` sets ``est <- v`` and decides when
the coin matches; output ``⊥`` adopts the coin.  Binding comes from the
report rule: a ``{v}`` report can only be produced while the opposite
value is still outside the reporter's ``bin_values``, so once the first
correct process reaches the coin the set of producible outputs is
already fixed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.sim.bv import EST, BVBroadcastMixin
from repro.sim.network import Message
from repro.sim.process import RoundState

REPORT = "REPORT"


class ABY22Process(BVBroadcastMixin):
    """A correct ABY22 process."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rounds: Dict[int, RoundState] = {}

    def _round_state(self, round_no: int) -> RoundState:
        if round_no not in self._rounds:
            self._rounds[round_no] = RoundState()
        return self._rounds[round_no]

    # ------------------------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        self.round = round_no
        self._bv_broadcast(round_no, self.est)
        self._progress()

    def _handle(self, sender: int, message: Message) -> None:
        if message.kind == EST:
            self._bv_handle(sender, message)
        elif message.kind == REPORT:
            values = message.value
            if not isinstance(values, frozenset) or not values <= {0, 1} or not values:
                return
            state = self._round_state(message.round)
            if sender not in state.report_from:
                state.report_from[sender] = values
                state.report_order.append(sender)

    # ------------------------------------------------------------------
    def _progress(self) -> None:
        state = self._round_state(self.round)
        # Crusader report: the bin_values snapshot at send time.
        if not state.report_sent and state.bin_values:
            state.report_sent = True
            self.network.broadcast(
                self.pid,
                Message(REPORT, self.round, frozenset(state.bin_values)),
            )
        if state.report_sent and not state.done:
            justified = [
                sender
                for sender in state.report_order
                if state.report_from[sender] <= state.bin_values
            ]
            if len(justified) >= self.n - self.t:
                quorum = justified[: self.n - self.t]
                state.done = True
                self._finish_round(
                    [state.report_from[sender] for sender in quorum]
                )

    def _finish_round(self, reports) -> None:
        # Output v only on a *unanimous* singleton quorum: any two
        # (n - t)-quorums intersect in a correct process, and correct
        # reporters send one report — a per-receiver-equivocating
        # Byzantine report therefore cannot make opposite non-⊥ BCA
        # outputs coexist (counting just n - 2t exact-{v} reports, as
        # this used to, lets a split pair of correct snapshots plus one
        # equivocated Byzantine report decide 0 and 1 in one round).
        output: FrozenSet[int] = frozenset()
        for v in (0, 1):
            if all(r == frozenset({v}) for r in reports):
                output = frozenset({v})
                break
        s = self._read_coin(self.round)
        if len(output) == 1:
            (v,) = output
            self.est = v
            if v == s:
                self._decide(v)
        else:
            self.est = s
        self._begin_round(self.round + 1)
