"""Schedulers (adversaries) for the executable substrate.

The adversary owns two powers in the BAMP model: the *delivery order*
of in-flight messages and the behaviour of up to ``t`` Byzantine
processes.  Three schedulers:

* :class:`RandomScheduler` — fair random delivery; the baseline for
  expected-round measurements (§II: MMR14 terminates in 4 expected
  rounds under non-adaptive scheduling).
* :class:`EquivocatingByzantine` — a message strategy that floods both
  values of every message kind each round; receivers keep whichever
  copy the scheduler delivers first, giving the scheduler per-recipient
  equivocation.
* :class:`AdaptiveCoinAttack` — the §II attack: starve one *victim*,
  drive the two fast processes to ``values = {0, 1}`` so they adopt the
  coin, read the revealed coin ``s``, then steer the victim's AUX
  quorum to ``{1 - s}``.  Against MMR14 the estimates stay split
  forever; against Miller18/ABY22 the steering fails (binding) and the
  run decides.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.sim.network import Envelope, Message


class Scheduler:
    """Picks the next envelope to deliver; None ends the run."""

    def next_envelope(self, sim) -> Optional[Envelope]:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Uniformly random (hence fair with probability 1) delivery."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def next_envelope(self, sim) -> Optional[Envelope]:
        pending = sim.network.pending()
        if not pending:
            return None
        return pending[self.rng.randrange(len(pending))]


class EquivocatingByzantine:
    """Byzantine strategy: every round, send both of everything.

    The scheduler's delivery choice then *is* the equivocation: each
    correct receiver keeps the first copy per (sender, kind, round).
    """

    #: message kinds that carry a plain binary value
    BINARY_KINDS = ("EST", "AUX")
    #: message kinds that carry a value set
    SET_KINDS = ("CONF", "REPORT")

    def __init__(self, byz_pids: List[int], binary_kinds=None, set_kinds=None):
        self.byz_pids = list(byz_pids)
        self.binary_kinds = (
            tuple(binary_kinds) if binary_kinds is not None
            else self.BINARY_KINDS
        )
        self.set_kinds = (
            tuple(set_kinds) if set_kinds is not None else self.SET_KINDS
        )
        self._injected: Set[int] = set()

    def inject_round(self, sim, round_no: int) -> None:
        """Flood round ``round_no`` once (idempotent)."""
        if round_no in self._injected:
            return
        self._injected.add(round_no)
        for pid in self.byz_pids:
            for kind in self.binary_kinds:
                for value in (0, 1):
                    sim.network.broadcast(pid, Message(kind, round_no, value))
            for kind in self.set_kinds:
                for values in ({0}, {1}, {0, 1}):
                    sim.network.broadcast(
                        pid, Message(kind, round_no, frozenset(values))
                    )

    def max_round(self, sim) -> int:
        return max(process.round for process in sim.correct.values())


class AdaptiveCoinAttack(Scheduler):
    """The §II adaptive adversary for the smallest system (3 correct + 1 Byz).

    Round-``r`` choreography (estimates at round start are ``{v, v, v'}``
    with ``v' = 1 - v``; pick the *victim* A2 and the fast helper A1
    from the majority-``v`` pair, B1 being the minority process):

    1. deliver ``EST(r, v)`` to A1 until its ``bin_values`` opens with
       ``v`` and it commits ``AUX(r, v)``;
    2. feed A1 the minority ESTs so it echoes ``EST(r, v')``;
    3. that echo (plus B1's own and the Byzantine copy) lets B1 reach
       ``bin = {v'}`` first, committing ``AUX(r, v')`` — the two fast
       AUX values now *cover both flavours*;
    4. complete both fast bins and mix their AUX quorums (their own two
       AUX values already differ), so both reach ``values = {0, 1}``
       and adopt the coin;
    5. the coin ``s`` is now revealed: deliver to the victim only
       ``(1-s)``-flavoured ESTs and AUXes — the fast process whose AUX
       is ``1 - s``, the Byzantine copy and the victim's own AUX form a
       uniformly-``{1-s}`` quorum, so the victim adopts ``1 - s``;
    6. flush the round (fairness) and restart with the new split
       ``{s, s, 1-s}``.

    Against MMR14 no process ever decides.  Binding protocols
    (Miller18, ABY22) make step 5 impossible — the scheduler's fallback
    paths then just deliver fairly and the run decides.
    """

    def __init__(self, byzantine: EquivocatingByzantine):
        self.byzantine = byzantine
        self.round = 0
        self._plan: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    def _make_plan(self, sim) -> Dict[str, int]:
        groups: Dict[int, List[int]] = {0: [], 1: []}
        for pid, process in sim.correct.items():
            groups[process.est].append(pid)
        v_maj = 0 if len(groups[0]) >= len(groups[1]) else 1
        majority, minority = groups[v_maj], groups[1 - v_maj]
        if not minority:
            # Estimates already uniform: the attack has failed; fall
            # back to fair delivery (flush handles it).
            return {"victim": -1, "a1": -1, "b1": -1, "v": v_maj}
        return {
            "victim": majority[0],
            "a1": majority[-1],
            "b1": minority[0],
            "v": v_maj,
        }

    def _state(self, sim, pid: int):
        return sim.correct[pid]._round_state(self.round)

    def _coin_read(self, sim, pid: int) -> bool:
        return self.round in sim.correct[pid].coin_reads

    @staticmethod
    def _flavour(message: Message, value: int) -> bool:
        """Does the message carry exactly the wanted binary flavour?"""
        if isinstance(message.value, frozenset):
            return message.value == frozenset({value})
        return message.value == value

    def _find(self, sim, recipient: int, kind: Optional[str] = None,
              value: Optional[int] = None) -> Optional[Envelope]:
        """First pending round-``r`` envelope matching the filters."""
        for envelope in sim.network.pending(recipient=recipient):
            message = envelope.message
            if message.round != self.round:
                continue
            if kind is not None and message.kind != kind:
                continue
            if value is not None and not self._flavour(message, value):
                continue
            return envelope
        return None

    def _any_for(self, sim, recipient: int) -> Optional[Envelope]:
        for envelope in sim.network.pending(recipient=recipient):
            if envelope.message.round <= self.round:
                return envelope
        return None

    # ------------------------------------------------------------------
    def next_envelope(self, sim) -> Optional[Envelope]:
        # Iterative round loop: a round advance (step 6) restarts the
        # choreography for the next round instead of recursing — a long
        # steered run (the attack holds MMR14 for *unboundedly* many
        # rounds) must not creep toward Python's recursion limit.
        while True:
            envelope = self._next_in_round(sim)
            if envelope is not None:
                return envelope
            if any(
                process.round <= self.round
                for process in sim.correct.values()
            ):
                return None  # someone is stuck despite full delivery
            self.round += 1
            self._plan = None

    def _next_in_round(self, sim) -> Optional[Envelope]:
        """One round's choreography; None once the round is drained."""
        self.byzantine.inject_round(sim, self.round)
        if self._plan is None:
            self._plan = self._make_plan(sim)
        plan = self._plan
        victim, a1, b1 = plan["victim"], plan["a1"], plan["b1"]
        v_maj = plan["v"]
        v_min = 1 - v_maj

        if victim >= 0:
            # Steps 1-4: drive the fast pair to mixed AUX quorums.
            for pid, own in ((a1, v_maj), (b1, v_min)):
                state = self._state(sim, pid)
                if not state.aux_sent:
                    envelope = self._find(sim, pid, "EST", own)
                    if envelope is not None:
                        return envelope
                if state.bin_values != {0, 1}:
                    envelope = self._find(sim, pid, "EST")
                    if envelope is not None:
                        return envelope
                if not self._coin_read(sim, pid):
                    # Mix the AUX quorum: prefer the flavour not yet
                    # justified at this recipient.
                    seen = {
                        val
                        for val in state.aux_from.values()
                        if val in state.bin_values
                    }
                    for wanted in (v_min, v_maj):
                        if wanted not in seen:
                            envelope = self._find(sim, pid, "AUX", wanted)
                            if envelope is not None:
                                return envelope
                    envelope = self._find(sim, pid, "AUX")
                    if envelope is not None:
                        return envelope
                    # CONF/REPORT protocols need their extra stage fed.
                    envelope = self._any_for(sim, pid)
                    if envelope is not None:
                        return envelope
            # Step 5: steer the victim once the coin is revealed.
            if not self._coin_read(sim, victim):
                s = sim.coin.peek(self.round)
                if s is not None:
                    wanted = 1 - s
                    for kind in ("EST", "AUX"):
                        envelope = self._find(sim, victim, kind, wanted)
                        if envelope is not None:
                            return envelope
                # Binding protocols leave nothing steerable: concede.
                envelope = self._any_for(sim, victim)
                if envelope is not None:
                    return envelope

        # Step 6: flush the round (fairness); None hands control back to
        # the round loop above, which advances or ends the run.
        for envelope in sim.network.pending():
            if envelope.message.round <= self.round:
                return envelope
        return None
