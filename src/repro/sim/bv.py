"""BV-broadcast (binary-value broadcast) — the MMR14 building block.

From §II of the paper: each process broadcasts a binary value; when a
value is received from ``t + 1`` distinct processes and was not yet
broadcast, it is echoed; when received from ``2t + 1`` distinct
processes it joins ``bin_values``.  Guarantees (with ``n > 3t``):

* *Justification*: every value in ``bin_values`` was proposed by a
  correct process;
* *Uniformity*: a value in one correct ``bin_values`` eventually joins
  every correct ``bin_values``;
* *Obligation*: values proposed by ``t + 1`` correct processes
  eventually join every correct ``bin_values``.

Implemented as a mixin over the per-round :class:`RoundState`; the
MMR14 / Miller18 / ABY22 processes all reuse it.
"""

from __future__ import annotations

from repro.sim.network import Message
from repro.sim.process import CorrectProcess, RoundState

EST = "EST"


class BVBroadcastMixin(CorrectProcess):
    """BV-broadcast message handling over RoundState bookkeeping."""

    def _round_state(self, round_no: int) -> RoundState:
        raise NotImplementedError

    def _bv_broadcast(self, round_no: int, value: int) -> None:
        """Broadcast EST(round, value) unless already done."""
        state = self._round_state(round_no)
        if value in state.est_sent:
            return
        state.est_sent.add(value)
        self.network.broadcast(self.pid, Message(EST, round_no, value))

    def _bv_handle(self, sender: int, message: Message) -> None:
        """Process an incoming EST message (echo + bin_values rules)."""
        if message.value not in (0, 1):
            return  # Byzantine garbage: binary protocol, drop
        state = self._round_state(message.round)
        state.est_from[message.value].add(sender)
        support = len(state.est_from[message.value])
        # Echo after t+1 distinct supporters.
        if support >= self.t + 1 and message.value not in state.est_sent:
            self._bv_broadcast(message.round, message.value)
            # The echo counts this process itself as a supporter.
            state.est_from[message.value].add(self.pid)
        # Deliver into bin_values after 2t+1 distinct supporters.
        if len(state.est_from[message.value]) >= 2 * self.t + 1:
            state.bin_values.add(message.value)
