"""The common-coin abstraction (ε-Good oracle).

The paper's model ``BAMP_{n,t}[n > 3t, CC]`` enriches the network with
a *common coin*: one shared sequence of random bits ``b_0, b_1, ...``
that every correct process reads identically.  An ε-Good coin yields
*each* value with probability at least ε; the paper's protocols use
*strong* coins (ε = 1/2), the default here.  For ε < 1/2 the oracle
models the worst admissible coin with an unbiased adversary: each
round a fair meta-flip picks a favored side, and the disfavored value
still comes up with probability exactly ε — so both values appear
with probability ≥ ε in every round (as the definition demands) while
the marginal stays 1/2.  (Historically ``get`` returned 1 with
probability ε outright, which for ε < 1/2 gave value 1 a *smaller*
probability than the definition's lower bound promises value 0;
``tests/sim/test_coin_stats.py`` pins the corrected semantics.)

Alternatively, a :class:`~repro.core.coinspec.CoinSpec` gives the
oracle the exact same coin models the checkers verify against:
``biased:p1`` draws 1 with probability ``p1``; ``failing:δ`` /
``disagreeing:ρ`` rounds may yield *no common value at all*, in which
case each process privately reads its own independent fair bit (split
views) — ``peek`` then reports None, as there is nothing common for
the adversary to learn either.

Crucially for the §II attack, the oracle records *when* each round's
coin was first accessed: the adaptive adversary learns the value the
moment the first correct process queries it — and not before.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.coinspec import CoinLike, resolve_coin_spec


class CommonCoin:
    """A lazily-sampled shared coin sequence with access tracking.

    Args:
        seed: RNG seed; identical seeds give identical coin sequences.
        epsilon: the ε-Good bound for the legacy float interface; the
            default 1/2 is the strong coin (and keeps the exact
            pre-CoinSpec sample sequence under the same seed).
        spec: a :class:`~repro.core.coinspec.CoinSpec` (or spec
            string); overrides ``epsilon``-based sampling with the
            spec's model.  ``PerfectCoin`` reproduces the default
            path bit-for-bit.
    """

    def __init__(self, seed: int = 0, epsilon: float = 0.5,
                 spec: CoinLike = None):
        if not 0.0 < epsilon <= 0.5:
            raise ValueError("epsilon must be in (0, 0.5] for a binary coin")
        if spec is not None and epsilon != 0.5:
            raise ValueError("pass either spec= or a non-default epsilon=, "
                             "not both")
        self.epsilon = epsilon
        self.spec = resolve_coin_spec(spec) if spec is not None else None
        self._seed = seed
        self._rng = random.Random(seed)
        self._values: Dict[int, Optional[int]] = {}
        self._private: Dict[Tuple[int, int], int] = {}
        self._first_access: Dict[int, int] = {}
        self.accesses: List[tuple] = []

    # ------------------------------------------------------------------
    def _sample(self, round_no: int) -> Optional[int]:
        """Draw the round's common value (None = no common value)."""
        if self.spec is not None:
            return self.spec.sample_round(self._rng)
        if self.epsilon == 0.5:
            # The strong coin: single draw, bit-identical to the
            # historical sequence under the same seed.
            return 1 if self._rng.random() < 0.5 else 0
        # Worst admissible ε-good coin, unbiased adversary: a fair
        # meta-flip picks the favored side, the disfavored value still
        # appears with probability exactly ε.
        favored = 1 if self._rng.random() < 0.5 else 0
        if self._rng.random() < self.epsilon:
            return 1 - favored
        return favored

    def _private_bit(self, round_no: int, pid: int) -> int:
        """Process ``pid``'s independent view of a no-common-value round.

        Deterministic in (seed, round, pid) so re-reads are stable, and
        independent of the shared ``_rng`` stream so the number of
        *readers* never perturbs later rounds' common draws.
        """
        key = (round_no, pid)
        if key not in self._private:
            mix = (self._seed * 1_000_003 + round_no) * 1_000_003 + pid
            self._private[key] = 1 if random.Random(mix).random() < 0.5 else 0
        return self._private[key]

    def get(self, round_no: int, pid: int) -> int:
        """Read the round's coin as process ``pid`` (records the access)."""
        if round_no not in self._values:
            self._values[round_no] = self._sample(round_no)
        if round_no not in self._first_access:
            self._first_access[round_no] = pid
        self.accesses.append((round_no, pid))
        value = self._values[round_no]
        if value is None:
            return self._private_bit(round_no, pid)
        return value

    # ------------------------------------------------------------------
    def revealed(self, round_no: int) -> bool:
        """Has any process opened this round's coin yet?"""
        return round_no in self._first_access

    def peek(self, round_no: int) -> Optional[int]:
        """Adversary view: the value *if already revealed*, else None.

        The adaptive adversary of §II only learns the coin when the
        first correct process accesses it; honest schedulers never call
        this.  A revealed round without a common value (a failed or
        split round) also reads None — there is no one value to learn.
        """
        if round_no in self._first_access:
            return self._values[round_no]
        return None

    def first_accessor(self, round_no: int) -> Optional[int]:
        return self._first_access.get(round_no)
