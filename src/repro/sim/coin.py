"""The common-coin abstraction (ε-Good oracle).

The paper's model ``BAMP_{n,t}[n > 3t, CC]`` enriches the network with
a *common coin*: one shared sequence of random bits ``b_0, b_1, ...``
that every correct process reads identically.  An ε-Good coin yields
each value with probability at least ε; the paper's protocols use
*strong* coins (ε = 1/2), the default here.

Crucially for the §II attack, the oracle records *when* each round's
coin was first accessed: the adaptive adversary learns the value the
moment the first correct process queries it — and not before.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class CommonCoin:
    """A lazily-sampled shared coin sequence with access tracking."""

    def __init__(self, seed: int = 0, epsilon: float = 0.5):
        if not 0.0 < epsilon <= 0.5:
            raise ValueError("epsilon must be in (0, 0.5] for a binary coin")
        self.epsilon = epsilon
        self._rng = random.Random(seed)
        self._values: Dict[int, int] = {}
        self._first_access: Dict[int, int] = {}
        self.accesses: List[tuple] = []

    def get(self, round_no: int, pid: int) -> int:
        """Read the round's coin as process ``pid`` (records the access)."""
        if round_no not in self._values:
            # P(1) = epsilon for the minority side; strong coin = 1/2.
            self._values[round_no] = 1 if self._rng.random() < self.epsilon else 0
        if round_no not in self._first_access:
            self._first_access[round_no] = pid
        self.accesses.append((round_no, pid))
        return self._values[round_no]

    # ------------------------------------------------------------------
    def revealed(self, round_no: int) -> bool:
        """Has any process opened this round's coin yet?"""
        return round_no in self._first_access

    def peek(self, round_no: int) -> Optional[int]:
        """Adversary view: the value *if already revealed*, else None.

        The adaptive adversary of §II only learns the coin when the
        first correct process accesses it; honest schedulers never call
        this.
        """
        if round_no in self._first_access:
            return self._values[round_no]
        return None

    def first_accessor(self, round_no: int) -> Optional[int]:
        return self._first_access.get(round_no)
