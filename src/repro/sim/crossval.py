"""Sim-vs-checker cross-validation: the standing statistical gate.

The repo models every benchmark protocol twice — the counter-system
MDP (§III-E semantics, sampled under a :class:`~repro.counter.
adversary.RandomAdversary`) and the message-level simulator (driven at
fleet scale by :mod:`repro.sim.fleet`).  This module turns the PR-5
single-protocol agreement test into a library: termination-round
extractors for both layers over the *whole* registry, and the
chi-square machinery that compares them per (protocol, coin) cell.

What is (and is not) comparable across layers:

* **termination** — both layers must terminate with agreeing frequency
  under random scheduling (2×2 decided/undecided homogeneity);
* **shape** — decision rounds are geometric *past the modal round* in
  both layers.  Under Byzantine noise a run first spends a short
  transient unanimizing the correct estimates (no decision is possible
  before that), so the raw decision round is transient + geometric and
  a plain geometric fit rejects it wholesale.  Memorylessness holds
  conditionally: given no decision by the modal round, the remaining
  wait is geometric.  The gate therefore re-bases every group at its
  mode (:func:`geometric_tail`) and fits the tail.  Under a biased
  coin the pooled distribution is additionally a two-rate mixture —
  each decided *value*'s subsample is geometric on its own (a
  unanimized estimate is absorbing; it decides exactly when the coin
  lands on it), so the fit splits per value;
* **rate** — only the simulator's tail rate is pinned to the coin
  lottery (P(coin = v) for value-v decisions), because its round
  structure matches the folklore argument directly;
* **failed coins** — the one deliberate semantic divergence: a failed
  model round *publishes nothing*, parking the coin automaton on
  ``Tbot``/``Cbot`` and blocking every coin-guarded rule forever,
  while the simulator's oracle serves per-process private bits and the
  run proceeds.  Failing cells therefore do not get a homogeneity
  check; instead every undecided MDP path must be parked on a failed
  coin, and the simulator must still terminate;
* **category A** — Rabin83 terminates by estimate *convergence*, which
  is not memoryless (the first common-coin round unanimizes with
  probability ~1 at ``n = 11, t = 1``), so A cells check termination
  and round-support agreement, not a geometric fit.

All tolerances live in module constants so a calibration run can tune
them in one place; everything is seeded, so the gate guards modelling
drift, not sampling noise.
"""

from __future__ import annotations

import collections
import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.counter.adversary import RandomAdversary
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols.registry import by_name
from repro.sim.fleet import FleetReport, run_fleet
from repro.sim.registry import sim_by_name

#: χ² critical values at α = 0.01 by degrees of freedom.
CHI2_CRIT = {1: 6.63, 2: 9.21, 3: 11.34, 4: 13.28, 5: 15.09, 6: 16.81,
             7: 18.48, 8: 20.09}

#: minimum termination frequency either layer must show (non-failing).
TERMINATION_MIN = 0.95
#: maximum |sim − mdp| termination-frequency gap (non-failing cells).
TERMINATION_GAP = 0.05
#: sim-layer tail decision rate must sit within
#: [lottery − RATE_SLACK_BELOW, lottery + RATE_TOLERANCE]: residual
#: unanimization transient in the tail can only *slow* decisions (it
#: deflates p̂, never inflates it), so the band is wider below.  The
#: drag is worst for high-rate groups, whose geometric wait is too
#: short to dominate the transient.
RATE_TOLERANCE = 0.16
RATE_SLACK_BELOW = 0.30
#: per-value geometric fits need at least this many samples.
MIN_SUBSAMPLE = 25
#: geometric GOF bin counts per layer (tail-binned beyond).
SIM_GOF_BINS = 4
MDP_GOF_BINS = 8


@dataclass
class LayerSample:
    """One layer's sampled termination outcomes for a cell."""

    #: (0-based termination round, agreed value or None) per run
    outcomes: List[Tuple[int, Optional[int]]]
    runs: int
    #: undecided runs whose coin automaton parked on Tbot/Cbot
    parked: int = 0

    @property
    def rounds(self) -> List[int]:
        return [round_no for round_no, _value in self.outcomes]

    @property
    def undecided(self) -> int:
        return self.runs - len(self.outcomes)

    @property
    def termination_frequency(self) -> float:
        return len(self.outcomes) / self.runs if self.runs else 0.0

    def rounds_for(self, value: int) -> List[int]:
        return [r for r, v in self.outcomes if v == value]


# ----------------------------------------------------------------------
# Extractors


def sim_layer(
    protocol: str,
    coin: CoinLike = None,
    runs: int = 150,
    max_steps: int = 20_000,
    base_seed: int = 0,
    processes: int = 1,
) -> LayerSample:
    """The simulator's termination outcomes, via a fleet run."""
    report = run_fleet(
        protocol, coin=coin, runs=runs, max_steps=max_steps,
        base_seed=base_seed, processes=processes,
    )
    return sample_from_report(report)


def sample_from_report(report: FleetReport) -> LayerSample:
    return LayerSample(outcomes=report.decision_outcomes(),
                       runs=report.runs)


def mdp_layer(
    protocol: str,
    coin: CoinLike = None,
    runs: int = 150,
    max_steps: int = 12_000,
    base_seed: int = 0,
) -> LayerSample:
    """Sampled termination outcomes of the counter-system MDP.

    Mirrors the fleet's setup: the checker entry's small valuation and
    the same maximally-split input placement the simulator uses.

    Paths stop at the first failed toss (a ``Tbot``/``Cbot`` counter
    going positive) as well as on termination.  A failing coin's
    automaton returns to ``J2`` after every toss, so a random adversary
    can walk it through unboundedly many rounds ahead of the processes;
    the config then grows a layer per round and per-step cost becomes
    quadratic.  Stopping at the park keeps the cell classification
    consistent — a parked path counts as undecided ∧ parked, and
    failing-coin cells assert exactly that (no termination floor, no
    homogeneity or rate pin), while the decided-before-park rounds that
    feed the goodness-of-fit stay geometric as the winning arm of a
    decide-vs-park race of memoryless competitors.  Perfect and biased
    coins have no ``Tbot``/``Cbot`` locations, so the predicate is
    inert for them.
    """
    entry = by_name(protocol)
    system = CounterSystem(entry.build_model(coin=coin),
                           entry.small_valuation)
    proto = sim_by_name(protocol)
    inputs = proto.mixed_inputs()
    placement = {
        "J0": sum(1 for value in inputs if value == 0),
        "J1": sum(1 for value in inputs if value == 1),
    }
    if system.n_coins:
        placement[system.coin_start[0].name] = system.n_coins
    config = system.make_config(placement)
    terminated = _terminated_probe(system, entry.category)
    parked_probe = _parked_probe(system)

    outcomes: List[Tuple[int, Optional[int]]] = []
    parked = 0
    for seed in range(base_seed, base_seed + runs):
        path = sample_path(
            system, config, RandomAdversary(seed=seed),
            random.Random(seed), max_steps=max_steps,
            stop=lambda c: terminated(c) is not None or parked_probe(c),
        )
        outcome = terminated(path.last)
        if outcome is not None:
            outcomes.append(outcome)
        elif parked_probe(path.last):
            parked += 1
    return LayerSample(outcomes=outcomes, runs=runs, parked=parked)


def _terminated_probe(system: CounterSystem, category: str):
    """config -> (0-based round, value) | None, per category semantics."""
    processes = system.n_processes
    if category == "A":
        def probe(config):
            # Convergence: a fully-voted layer with unanimous votes.
            for round_no in range(config.rounds):
                v0 = system.value_of(config, "v0", round_no)
                v1 = system.value_of(config, "v1", round_no)
                if v0 + v1 == processes and (v0 == 0 or v1 == 0):
                    return round_no, (0 if v1 == 0 else 1)
            return None
        return probe

    d0, d1 = system.loc_index["D0"], system.loc_index["D1"]
    block = system.block

    def probe(config):
        data = config.data
        for round_no in range(config.rounds):
            base = round_no * block
            in_d0, in_d1 = data[base + d0], data[base + d1]
            if in_d0 + in_d1 == processes:
                return round_no, (0 if in_d1 == 0 else 1)
        return None
    return probe


def _parked_probe(system: CounterSystem):
    """config -> did the coin park on a failed-toss location?"""
    indices = [
        system.loc_index[name]
        for name in ("Tbot", "Cbot")
        if name in system.loc_index
    ]
    if not indices:
        return lambda config: False
    block = system.block

    def probe(config):
        data = config.data
        return any(
            data[round_no * block + index]
            for round_no in range(config.rounds)
            for index in indices
        )
    return probe


# ----------------------------------------------------------------------
# Statistics


def chi2_geometric(
    rounds: List[int], bins: int
) -> Tuple[float, float, int]:
    """χ² of ``rounds`` against Geometric(p̂), equal-probability bins.

    p̂ is the moment estimate 1 / (1 + mean).  Bin edges sit at the
    *fitted* distribution's quantiles, so every bin's expected count is
    ≈ ``n / bins`` regardless of the rate — unit-width bins break down
    on low-rate samples (a p̂ ≈ 0.01 MDP layer spreads 100 runs over
    hundreds of rounds, leaving per-round expected counts ≪ 5 where χ²
    diverges on pure noise).  Returns ``(statistic, p̂, used_bins)``;
    ``used_bins`` can land below ``bins`` when quantile edges collide
    at high rates (df = used_bins - 1 with the moment estimate).
    """
    n = len(rounds)
    p_hat = 1.0 / (1.0 + sum(rounds) / n)
    survival = 1.0 - p_hat  # P(X >= k) = survival ** k
    edges: List[int] = []
    if 0.0 < survival < 1.0:
        for k in range(1, bins):
            # Smallest boundary b with P(X < b) >= k / bins.
            boundary = max(
                1,
                math.ceil(
                    math.log(1.0 - k / bins) / math.log(survival)
                ),
            )
            if not edges or boundary > edges[-1]:
                edges.append(boundary)
    statistic = 0.0
    lows = [0] + edges
    for index, low in enumerate(lows):
        high = edges[index] if index < len(edges) else None
        observed = sum(
            1 for x in rounds if x >= low and (high is None or x < high)
        )
        expected = n * (
            survival ** low - (survival ** high if high is not None else 0.0)
        )
        statistic += (observed - expected) ** 2 / max(expected, 1e-9)
    return statistic, p_hat, len(lows)


def geometric_tail(rounds: List[int]) -> Tuple[List[int], int]:
    """``rounds`` re-based at their mode: ``([r - mode | r >= mode], mode)``.

    Decision rounds under Byzantine noise are a unanimization transient
    plus a geometric wait; the transient mass concentrates at the modal
    round, so the tail past the mode recovers the memoryless part.  On
    seeded data ``Counter.most_common`` breaks ties deterministically.
    """
    mode = collections.Counter(rounds).most_common(1)[0][0]
    return [r - mode for r in rounds if r >= mode], mode


def chi2_homogeneity_2x2(
    a_success: int, a_total: int, b_success: int, b_total: int
) -> float:
    """2×2 χ² homogeneity of two success/failure columns (0 if equal)."""
    total = a_total + b_total
    successes = a_success + b_success
    failures = total - successes
    if successes == 0 or failures == 0:
        return 0.0
    statistic = 0.0
    for observed_s, observed_f, column in (
        (a_success, a_total - a_success, a_total),
        (b_success, b_total - b_success, b_total),
    ):
        for observed, margin in ((observed_s, successes),
                                 (observed_f, failures)):
            expected = margin * column / total
            statistic += (observed - expected) ** 2 / max(expected, 1e-9)
    return statistic


def exact_lottery(protocol: str, coin: CoinLike) -> Dict[Optional[int], Fraction]:
    """The built model's toss lottery: P(coin = 0 / 1 / None-failed)."""
    model = by_name(protocol).build_model(coin=resolve_coin_spec(coin))
    toss = next(rule for rule in model.coin.rules if rule.name == "rb")
    by_value: Dict[Optional[int], Fraction] = {
        0: Fraction(0), 1: Fraction(0), None: Fraction(0)
    }
    for target, probability in toss.branches:
        if target.endswith("0"):
            by_value[0] += probability
        elif target.endswith("1"):
            by_value[1] += probability
        else:  # Tbot: the failed toss
            by_value[None] += probability
    return by_value


# ----------------------------------------------------------------------
# The per-cell gate


@dataclass
class CellVerdict:
    """One (protocol, coin) cell's cross-validation outcome."""

    protocol: str
    coin: str
    sim: LayerSample
    mdp: LayerSample
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def check_cell(
    protocol: str,
    coin: CoinLike = None,
    *,
    sim_sample: Optional[LayerSample] = None,
    mdp_sample: Optional[LayerSample] = None,
    runs: int = 150,
) -> CellVerdict:
    """Cross-validate one (protocol, coin) cell; see the module docs
    for which checks apply where.  Pre-computed samples can be passed
    in (the registry-wide suite shares them across assertions)."""
    spec = resolve_coin_spec(coin)
    category = by_name(protocol).category
    sim = sim_sample if sim_sample is not None else sim_layer(
        protocol, spec, runs=runs
    )
    mdp = mdp_sample if mdp_sample is not None else mdp_layer(
        protocol, spec, runs=runs
    )
    verdict = CellVerdict(protocol=protocol, coin=spec.spec_str(),
                          sim=sim, mdp=mdp)
    fail = verdict.failures.append
    lottery = exact_lottery(protocol, spec)
    failing_coin = lottery[None] > 0

    # Simulator termination: required everywhere (private bits keep
    # failed rounds moving — the sim analogue of the disagreeing axis).
    if sim.termination_frequency < TERMINATION_MIN:
        fail(
            f"sim termination {sim.termination_frequency:.3f} < "
            f"{TERMINATION_MIN} ({sim.undecided} of {sim.runs} undecided)"
        )

    if failing_coin:
        # The model blocks on a failed toss: undecided MDP paths must
        # be *parked*, not merely slow.
        stuck = mdp.undecided
        if stuck and mdp.parked < stuck:
            fail(
                f"{stuck - mdp.parked} of {stuck} undecided MDP paths "
                f"are not parked on Tbot/Cbot — non-termination without "
                f"a failed coin"
            )
    else:
        if mdp.termination_frequency < TERMINATION_MIN:
            fail(
                f"mdp termination {mdp.termination_frequency:.3f} < "
                f"{TERMINATION_MIN} ({mdp.undecided} of {mdp.runs} "
                f"undecided)"
            )
        gap = abs(sim.termination_frequency - mdp.termination_frequency)
        if gap > TERMINATION_GAP:
            fail(f"termination frequency gap {gap:.3f} > {TERMINATION_GAP}")
        statistic = chi2_homogeneity_2x2(
            len(sim.outcomes), sim.runs, len(mdp.outcomes), mdp.runs
        )
        if statistic >= CHI2_CRIT[1]:
            fail(f"2x2 termination homogeneity χ²={statistic:.2f} >= "
                 f"{CHI2_CRIT[1]}")

    if category != "A":
        _check_geometric_shape(verdict, lottery, fail)
    return verdict


def _check_geometric_shape(verdict: CellVerdict, lottery, fail) -> None:
    """Geometric decision-round checks for the deciding categories.

    Each group's rounds are re-based at their mode (the unanimization
    transient, see :func:`geometric_tail`) and the tail is fitted.  A
    biased coin makes the pooled distribution a two-rate mixture
    (value-v decisions arrive at rate ~P(coin = v)), so the fit splits
    per decided value; the fair case pools.  The sim tail rate is
    pinned to the lottery only when the coin publishes a common value
    every round — with a failing coin the simulator's private bits
    decouple the decision rate from the common lottery by design.
    """
    biased = lottery[0] != lottery[1]
    failing = lottery[None] > 0
    for layer_name, layer, bins in (
        ("sim", verdict.sim, SIM_GOF_BINS),
        ("mdp", verdict.mdp, MDP_GOF_BINS),
    ):
        if biased:
            groups = [(f"value {v}", layer.rounds_for(v), float(lottery[v]))
                      for v in (0, 1)]
        else:
            groups = [("pooled", layer.rounds, 0.5)]
        for group_name, rounds, expected_rate in groups:
            if len(rounds) < MIN_SUBSAMPLE:
                continue
            tail, _mode = geometric_tail(rounds)
            if len(tail) < MIN_SUBSAMPLE:
                continue
            effective_bins = min(bins, max(2, len(tail) // 12))
            statistic, p_hat, used_bins = chi2_geometric(
                tail, effective_bins
            )
            critical = CHI2_CRIT[max(1, used_bins - 1)]
            if statistic >= critical:
                fail(
                    f"{layer_name} {group_name} tail rounds reject the "
                    f"geometric fit: χ²={statistic:.2f} >= {critical}"
                )
            if layer_name == "sim" and not failing:
                low = expected_rate - RATE_SLACK_BELOW
                high = expected_rate + RATE_TOLERANCE
                if not low <= p_hat <= high:
                    fail(
                        f"sim {group_name} tail rate {p_hat:.3f} "
                        f"outside [{low:.2f}, {high:.2f}] around the "
                        f"lottery probability {expected_rate:.3f}"
                    )
