"""Concurrent Monte Carlo fleets over the executable substrate.

One *fleet* is thousands of independent :class:`~repro.sim.runner.
Simulation` instances of a single (protocol, coin, scheduler) cell.
Two nested levels of concurrency:

* **in-process**: an asyncio cooperative runner interleaves many
  simulation event loops in one interpreter — each run yields control
  every ``yield_every`` deliveries, so a bounded window of
  ``concurrency`` runs is always in flight (the shape of the asyncio
  broadcast stacks this layer imitates);
* **across cores**: the seed list is sharded over the existing
  :class:`~repro.api.supervisor.SupervisedPool` workers, so a fleet
  inherits the sweep infrastructure's timeouts, bounded retries and
  crash-resilience for free — a worker OOM-killed mid-shard surfaces
  as per-seed ``error`` records, never a crashed experiment.

The product is a :class:`FleetReport`: per-run records (seed, outcome,
termination round, safety checks) plus derived statistics — the
termination-probability-by-round curve with Wilson score intervals,
expected rounds *with* the completion fraction (the two travel
together; see :class:`~repro.sim.runner.RoundStats`), and
agreement/validity violation counts with the offending seeds for
replay.  Reports round-trip through JSON (``to_dict``/``from_dict``)
and are **seed-reproducible**: every run's RNG streams derive from
``base_seed + i`` via :func:`~repro.sim.runner.split_seed`, so the
same invocation yields the same report regardless of sharding, worker
count or interleaving order.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import asdict, dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.coinspec import CoinLike, resolve_coin_spec
from repro.sim.registry import SimProtocol, sim_by_name
from repro.sim.runner import Simulation, split_seed

#: bump when the report schema changes shape
FLEET_REPORT_VERSION = 1

#: z for 99% Wilson score intervals (matches the α=0.01 gate tests).
_Z99 = 2.5758293035489004

#: deliveries between cooperative yields of one interleaved run
DEFAULT_YIELD_EVERY = 64
#: simulations concurrently in flight per interpreter
DEFAULT_CONCURRENCY = 128


def wilson_interval(successes: int, total: int, z: float = _Z99):
    """Wilson score interval for a binomial proportion."""
    if total == 0:
        return 0.0, 1.0
    p = successes / total
    denom = 1.0 + z * z / total
    centre = p + z * z / (2 * total)
    spread = z * math.sqrt(p * (1.0 - p) / total + z * z / (4 * total * total))
    # Clamp to [0, 1] and force the interval to contain the point
    # estimate (float rounding can land the p = 1 bound at 1 - ulp).
    low = min(max(0.0, (centre - spread) / denom), p)
    high = max(min(1.0, (centre + spread) / denom), p)
    return low, high


@dataclass(frozen=True)
class RunRecord:
    """One simulation's outcome (the report's unit of replay)."""

    seed: int
    decided: bool
    #: 0-based round of the termination witness (None: ran out of budget)
    decision_round: Optional[int]
    #: the agreed value (None: not terminated or agreement violated)
    decision_value: Optional[int]
    rounds_reached: int
    steps: int
    agreement: bool
    validity: bool
    error: Optional[str] = None


@dataclass
class FleetReport:
    """Everything one fleet produced, JSON-round-trippable."""

    protocol: str
    coin: str
    scheduler: str
    n: int
    t: int
    byzantine_count: int
    max_steps: int
    base_seed: int
    records: List[RunRecord] = field(default_factory=list)

    # -- derived statistics --------------------------------------------
    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def ok_records(self) -> List[RunRecord]:
        return [r for r in self.records if r.error is None]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.decided)

    @property
    def completion(self) -> float:
        return self.completed / self.runs if self.runs else 0.0

    def completion_interval(self) -> Tuple[float, float]:
        return wilson_interval(self.completed, self.runs)

    def decision_rounds(self) -> List[int]:
        """0-based termination rounds of the completed runs."""
        return [
            r.decision_round
            for r in self.records
            if r.decision_round is not None
        ]

    def decision_outcomes(self) -> List[Tuple[int, Optional[int]]]:
        """(0-based round, agreed value) pairs of the completed runs."""
        return [
            (r.decision_round, r.decision_value)
            for r in self.records
            if r.decision_round is not None
        ]

    def expected_rounds(self) -> float:
        """Mean 1-based termination round, conditioned on completion.

        ``inf`` when nothing completed; always read together with
        :attr:`completion` — a hanging protocol does not get to launder
        its hangs out of the mean (that was the pre-fleet estimator
        bug).
        """
        rounds = self.decision_rounds()
        if not rounds:
            return float("inf")
        return sum(rounds) / len(rounds) + 1.0

    def expected_rounds_interval(self) -> Tuple[float, float]:
        """Normal-approximation 99% CI around :meth:`expected_rounds`."""
        rounds = self.decision_rounds()
        if len(rounds) < 2:
            return float("inf"), float("inf")
        mean = sum(rounds) / len(rounds)
        var = sum((x - mean) ** 2 for x in rounds) / (len(rounds) - 1)
        half = _Z99 * math.sqrt(var / len(rounds))
        return mean + 1.0 - half, mean + 1.0 + half

    def termination_curve(self, through: Optional[int] = None):
        """P(terminated by round r) with Wilson CIs, r = 1-based.

        Each point: ``{"round": r, "p": ..., "lo": ..., "hi": ...}``
        over *all* runs (errors count as non-terminated — the curve is
        an experiment-level quantity, not a conditional one).
        """
        rounds = self.decision_rounds()
        if through is None:
            through = max(rounds) + 1 if rounds else 0
        curve = []
        for r in range(1, through + 1):
            done = sum(1 for x in rounds if x + 1 <= r)
            lo, hi = wilson_interval(done, self.runs)
            curve.append(
                {
                    "round": r,
                    "p": done / self.runs if self.runs else 0.0,
                    "lo": lo,
                    "hi": hi,
                }
            )
        return curve

    def agreement_violations(self) -> List[int]:
        """Seeds whose run violated agreement (replayable)."""
        return [r.seed for r in self.ok_records if not r.agreement]

    def validity_violations(self) -> List[int]:
        return [r.seed for r in self.ok_records if not r.validity]

    def error_seeds(self) -> List[int]:
        return [r.seed for r in self.records if r.error is not None]

    # -- serialization --------------------------------------------------
    def summary(self) -> dict:
        lo, hi = self.completion_interval()
        elo, ehi = self.expected_rounds_interval()
        return {
            "runs": self.runs,
            "completed": self.completed,
            "completion": self.completion,
            "completion_ci99": [lo, hi],
            "expected_rounds": self.expected_rounds(),
            "expected_rounds_ci99": [elo, ehi],
            "agreement_violations": self.agreement_violations(),
            "validity_violations": self.validity_violations(),
            "errors": self.error_seeds(),
            "termination_curve": self.termination_curve(),
        }

    def to_dict(self) -> dict:
        return {
            "kind": "fleet_report",
            "version": FLEET_REPORT_VERSION,
            "protocol": self.protocol,
            "coin": self.coin,
            "scheduler": self.scheduler,
            "n": self.n,
            "t": self.t,
            "byzantine_count": self.byzantine_count,
            "max_steps": self.max_steps,
            "base_seed": self.base_seed,
            "records": [asdict(r) for r in self.records],
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetReport":
        if data.get("kind") != "fleet_report":
            raise ValueError(
                f"not a fleet report: kind={data.get('kind')!r}"
            )
        records = [RunRecord(**r) for r in data["records"]]
        return cls(
            protocol=data["protocol"],
            coin=data["coin"],
            scheduler=data["scheduler"],
            n=data["n"],
            t=data["t"],
            byzantine_count=data["byzantine_count"],
            max_steps=data["max_steps"],
            base_seed=data["base_seed"],
            records=records,
        )


# ----------------------------------------------------------------------
# Driving one run as a resumable generator (shared by the sync and the
# asyncio paths: the generator yields at cooperative-switch points and
# *returns* the finished record).


def _drive(
    proto: SimProtocol,
    coin: str,
    scheduler_name: str,
    seed: int,
    max_steps: int,
    byzantine_noise: bool,
    yield_every: int,
) -> Iterator[None]:
    sim = Simulation(
        proto.process_cls,
        proto.n,
        proto.t,
        proto.mixed_inputs(),
        coin_seed=split_seed(seed, "coin"),
        byzantine_count=proto.f,
        coin=coin,
    )
    scheduler = proto.make_scheduler(
        sim, scheduler_name, split_seed(seed, "scheduler"),
        byzantine_noise=byzantine_noise,
    )
    stop = proto.stop_predicate()
    byzantine = getattr(scheduler, "byzantine", None)
    sim.start()
    for step in range(max_steps):
        if proto.decides and sim.all_decided():
            break
        if stop is not None and stop(sim):
            break
        if byzantine is not None:
            byzantine.inject_round(sim, byzantine.max_round(sim))
        envelope = scheduler.next_envelope(sim)
        if envelope is None:
            break
        sim.deliver(envelope)
        if (step + 1) % yield_every == 0:
            yield
    decision_round = proto.termination_round(sim)
    return RunRecord(  # noqa: B901 — StopIteration.value carries the record
        seed=seed,
        decided=decision_round is not None,
        decision_round=decision_round,
        decision_value=proto.termination_value(sim),
        rounds_reached=max(p.round for p in sim.correct.values()),
        steps=sim.steps,
        agreement=sim.agreement_holds(),
        validity=sim.validity_holds(),
    )


def _error_record(seed: int, exc: BaseException) -> RunRecord:
    return RunRecord(
        seed=seed,
        decided=False,
        decision_round=None,
        decision_value=None,
        rounds_reached=0,
        steps=0,
        agreement=True,
        validity=True,
        error=f"{type(exc).__name__}: {exc}",
    )


async def _run_one_async(
    semaphore: asyncio.Semaphore, proto: SimProtocol, payload: dict, seed: int
) -> RunRecord:
    async with semaphore:
        stepper = _drive(
            proto,
            payload["coin"],
            payload["scheduler"],
            seed,
            payload["max_steps"],
            payload["byzantine_noise"],
            payload["yield_every"],
        )
        while True:
            try:
                next(stepper)
            except StopIteration as finished:
                return finished.value
            except Exception as exc:  # noqa: BLE001 — per-run isolation
                return _error_record(seed, exc)
            await asyncio.sleep(0)


async def _run_shard_async(payload: dict) -> List[RunRecord]:
    proto = sim_by_name(payload["protocol"])
    semaphore = asyncio.Semaphore(payload["concurrency"])
    return list(
        await asyncio.gather(
            *(
                _run_one_async(semaphore, proto, payload, seed)
                for seed in payload["seeds"]
            )
        )
    )


# -- SupervisedPool glue (module-level, picklable) ---------------------


def _fleet_worker(payload: dict) -> List[dict]:
    """Pool target: run one shard's seeds, return plain record dicts."""
    records = asyncio.run(_run_shard_async(payload))
    return [asdict(record) for record in records]


def _fleet_fallback(payload: dict, exc: BaseException) -> dict:
    return {"failed_seeds": list(payload["seeds"]),
            "error": f"{type(exc).__name__}: {exc}"}


def _fleet_failure(payload: dict, kind: str, detail: str) -> dict:
    return {"failed_seeds": list(payload["seeds"]),
            "error": f"{kind}: {detail}"}


def _shards(seeds: Sequence[int], count: int) -> List[List[int]]:
    """Contiguous near-even shards (merge order restored by seed sort)."""
    count = max(1, min(count, len(seeds)))
    size, extra = divmod(len(seeds), count)
    shards, start = [], 0
    for i in range(count):
        end = start + size + (1 if i < extra else 0)
        shards.append(list(seeds[start:end]))
        start = end
    return shards


def run_fleet(
    protocol: str,
    *,
    coin: CoinLike = None,
    runs: int = 1000,
    scheduler: str = "random",
    max_steps: int = 20_000,
    base_seed: int = 0,
    processes: int = 1,
    byzantine_noise: bool = True,
    concurrency: int = DEFAULT_CONCURRENCY,
    yield_every: int = DEFAULT_YIELD_EVERY,
    task_timeout: Optional[float] = None,
) -> FleetReport:
    """Execute ``runs`` instances of one (protocol, coin, scheduler) cell.

    ``processes <= 1`` keeps everything in this interpreter (one asyncio
    loop interleaving up to ``concurrency`` runs); larger values shard
    the seed list across a :class:`~repro.api.supervisor.SupervisedPool`
    (each worker running the same asyncio runner on its shard).  The
    report is identical either way — records are keyed and re-ordered
    by seed, and every RNG stream derives from the seed alone.
    """
    proto = sim_by_name(protocol)
    spec = resolve_coin_spec(coin)
    if runs < 1:
        raise ValueError(f"need at least one run, got runs={runs}")
    # Validate the scheduler choice before spawning anything.
    proto.make_scheduler(
        Simulation(
            proto.process_cls, proto.n, proto.t, proto.mixed_inputs(),
            byzantine_count=proto.f,
        ),
        scheduler, 0, byzantine_noise=byzantine_noise,
    )
    seeds = [base_seed + i for i in range(runs)]
    payload_base = {
        "protocol": proto.name,
        "coin": spec.spec_str(),
        "scheduler": scheduler,
        "max_steps": max_steps,
        "byzantine_noise": byzantine_noise,
        "concurrency": concurrency,
        "yield_every": yield_every,
    }
    if processes <= 1:
        records = asyncio.run(_run_shard_async({**payload_base, "seeds": seeds}))
    else:
        records = _pooled_records(
            payload_base, seeds, processes, task_timeout
        )
    records.sort(key=lambda record: record.seed)
    return FleetReport(
        protocol=proto.name,
        coin=spec.spec_str(),
        scheduler=scheduler,
        n=proto.n,
        t=proto.t,
        byzantine_count=proto.f,
        max_steps=max_steps,
        base_seed=base_seed,
        records=records,
    )


def _pooled_records(
    payload_base: dict,
    seeds: List[int],
    processes: int,
    task_timeout: Optional[float],
) -> List[RunRecord]:
    from repro.api.supervisor import SupervisedPool

    # A few shards per worker keeps retry granularity small without
    # paying per-run dispatch overhead.
    shards = _shards(seeds, processes * 4)
    jobs: List[List[tuple]] = [[] for _ in range(processes)]
    for index, shard in enumerate(shards):
        jobs[index % processes].append(
            (index, {**payload_base, "seeds": shard})
        )
    with SupervisedPool(
        processes,
        _fleet_worker,
        task_timeout=task_timeout,
        retry=1,
        fallback=_fleet_fallback,
        failure=_fleet_failure,
    ) as pool:
        outcome = pool.run([job for job in jobs if job])
    records: List[RunRecord] = []
    for index, shard in enumerate(shards):
        result = outcome.results.get(index)
        if isinstance(result, list):
            records.extend(RunRecord(**r) for r in result)
        else:
            detail = (
                result.get("error", "shard lost")
                if isinstance(result, dict)
                else f"shard result {result!r}"
            )
            records.extend(
                _error_record(seed, RuntimeError(detail)) for seed in shard
            )
    return records
