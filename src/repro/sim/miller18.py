"""Executable Miller18 — MMR14 with the CONF phase (the Dumbo fix).

Identical to :class:`repro.sim.mmr14.MMR14Process` up to the AUX
snapshot, after which the process broadcasts ``CONF(r, values)`` and
waits for ``n - t`` CONF messages whose value-sets are justified by its
``bin_values[r]`` before touching the coin.  The union ``U`` of the
collected CONF sets replaces ``values``:

* ``U = {v}``: ``est <- v``; decide ``v`` when the coin agrees;
* ``U = {0, 1}``: ``est <- coin``.

By CONF-quorum time the decidable value is *bound*: a ``{v}`` CONF
needs an ``n - t`` unanimous AUX view, and two opposite unanimous
views cannot both gather quorums — so learning the coin no longer lets
the adversary steer a process to the complementary value.  The attack
scheduler that starves MMR14 forever fails here, which
``examples/mmr14_attack.py`` demonstrates end to end.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.sim.bv import EST, BVBroadcastMixin
from repro.sim.mmr14 import AUX
from repro.sim.network import Message
from repro.sim.process import RoundState

CONF = "CONF"


class Miller18Process(BVBroadcastMixin):
    """A correct Miller18 (MMR14 + CONF) process."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rounds: Dict[int, RoundState] = {}

    def _round_state(self, round_no: int) -> RoundState:
        if round_no not in self._rounds:
            self._rounds[round_no] = RoundState()
        return self._rounds[round_no]

    # ------------------------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        self.round = round_no
        self._bv_broadcast(round_no, self.est)
        self._progress()

    def _handle(self, sender: int, message: Message) -> None:
        if message.kind == EST:
            self._bv_handle(sender, message)
        elif message.kind == AUX:
            if message.value not in (0, 1):
                return
            state = self._round_state(message.round)
            if sender not in state.aux_from:
                state.aux_from[sender] = message.value
                state.aux_order.append(sender)
        elif message.kind == CONF:
            values = message.value
            if not isinstance(values, frozenset) or not values <= {0, 1} or not values:
                return
            state = self._round_state(message.round)
            if sender not in state.conf_from:
                state.conf_from[sender] = values
                state.conf_order.append(sender)

    # ------------------------------------------------------------------
    def _progress(self) -> None:
        state = self._round_state(self.round)
        if not state.aux_sent and state.bin_values:
            state.aux_sent = True
            w = min(state.bin_values)
            self.network.broadcast(self.pid, Message(AUX, self.round, w))
        # AUX quorum -> snapshot values and broadcast CONF(values).
        if state.aux_sent and state.values is None:
            justified = [
                sender
                for sender in state.aux_order
                if state.aux_from[sender] in state.bin_values
            ]
            if len(justified) >= self.n - self.t:
                quorum = justified[: self.n - self.t]
                state.values = {state.aux_from[sender] for sender in quorum}
        if state.values is not None and not state.conf_sent:
            state.conf_sent = True
            self.network.broadcast(
                self.pid, Message(CONF, self.round, frozenset(state.values))
            )
        # CONF quorum -> coin.
        if state.conf_sent and not state.done:
            justified = [
                sender
                for sender in state.conf_order
                if state.conf_from[sender] <= state.bin_values
            ]
            if len(justified) >= self.n - self.t:
                quorum = justified[: self.n - self.t]
                union: FrozenSet[int] = frozenset().union(
                    *(state.conf_from[sender] for sender in quorum)
                )
                state.done = True
                self._finish_round(union)

    def _finish_round(self, union: FrozenSet[int]) -> None:
        s = self._read_coin(self.round)
        if len(union) == 1:
            (v,) = union
            self.est = v
            if v == s:
                self._decide(v)
        else:
            self.est = s
        self._begin_round(self.round + 1)
