"""Executable MMR14 (Fig. 1 of the paper), message by message.

Round ``r`` for a correct process:

1. BV-broadcast ``EST(r, est)``;
2. wait until ``bin_values[r]`` is non-empty, then broadcast
   ``AUX(r, w)`` for some ``w`` in ``bin_values[r]``;
3. wait for ``n - t`` AUX messages whose values are justified by
   ``bin_values[r]`` (the *first* such quorum in arrival order — which
   hands the delivery-order choice to the adversary, as the attack
   requires); let ``values`` be the set of their values;
4. read the common coin ``s``;
   * ``values = {v}``: ``est <- v``; decide ``v`` if ``v = s``;
   * ``values = {0, 1}``: ``est <- s``;
5. next round.

Correct processes keep participating after deciding (the usual
termination bookkeeping), matching the threshold-automata model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sim.bv import EST, BVBroadcastMixin
from repro.sim.network import Message
from repro.sim.process import RoundState

AUX = "AUX"


class MMR14Process(BVBroadcastMixin):
    """A correct MMR14 process."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rounds: Dict[int, RoundState] = {}

    def _round_state(self, round_no: int) -> RoundState:
        if round_no not in self._rounds:
            self._rounds[round_no] = RoundState()
        return self._rounds[round_no]

    # ------------------------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        self.round = round_no
        self._bv_broadcast(round_no, self.est)
        self._progress()

    def _handle(self, sender: int, message: Message) -> None:
        if message.kind == EST:
            self._bv_handle(sender, message)
        elif message.kind == AUX:
            if message.value not in (0, 1):
                return
            state = self._round_state(message.round)
            if sender not in state.aux_from:
                state.aux_from[sender] = message.value
                state.aux_order.append(sender)

    # ------------------------------------------------------------------
    def _progress(self) -> None:
        state = self._round_state(self.round)
        # Step 2: AUX once bin_values becomes non-empty.
        if not state.aux_sent and state.bin_values:
            state.aux_sent = True
            w = min(state.bin_values)
            self.network.broadcast(self.pid, Message(AUX, self.round, w))
        # Step 3: first n-t justified AUX messages, in arrival order.
        if state.aux_sent and not state.done:
            justified = [
                sender
                for sender in state.aux_order
                if state.aux_from[sender] in state.bin_values
            ]
            if len(justified) >= self.n - self.t:
                quorum = justified[: self.n - self.t]
                state.values = {state.aux_from[sender] for sender in quorum}
                state.done = True
                self._finish_round(state)

    def _finish_round(self, state: RoundState) -> None:
        s = self._read_coin(self.round)
        if len(state.values) == 1:
            (v,) = state.values
            self.est = v
            if v == s:
                self._decide(v)
        else:
            self.est = s
        self._begin_round(self.round + 1)
