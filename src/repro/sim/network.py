"""Asynchronous reliable point-to-point network (the BAMP substrate).

The computation model of the paper (§I): messages between each pair of
processes are delivered without loss, duplication or modification, but
with *unbounded* delay — the delivery **order is the adversary's**.
:class:`Network` therefore only stores in-flight envelopes; a scheduler
(see :mod:`repro.sim.adversary`) picks which envelope to deliver next,
which is exactly the scheduling power the attack of §II exploits.

Byzantine senders may equivocate: nothing stops a faulty process from
sending different (or multiple, contradictory) messages to different
recipients; correct receivers de-duplicate per (sender, kind, round) as
their protocol prescribes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Message:
    """Protocol payload: kind (EST/AUX/CONF/REPORT/...), round, value."""

    kind: str
    round: int
    value: object

    def __str__(self) -> str:
        return f"{self.kind}({self.round}, {self.value})"


@dataclass(frozen=True)
class Envelope:
    """One in-flight message instance."""

    uid: int
    sender: int
    recipient: int
    message: Message

    def __str__(self) -> str:
        return f"#{self.uid} {self.sender}->{self.recipient} {self.message}"


class Network:
    """In-flight message pool with adversary-controlled delivery."""

    def __init__(self, n: int):
        self.n = n
        self._uid = itertools.count()
        self._pending: Dict[int, Envelope] = {}
        self.delivered_count = 0
        self.sent_count = 0

    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, message: Message) -> Envelope:
        """Queue one point-to-point message."""
        envelope = Envelope(next(self._uid), sender, recipient, message)
        self._pending[envelope.uid] = envelope
        self.sent_count += 1
        return envelope

    def broadcast(self, sender: int, message: Message) -> List[Envelope]:
        """Send to every process (including the sender itself)."""
        return [self.send(sender, dst, message) for dst in range(self.n)]

    # ------------------------------------------------------------------
    def pending(
        self,
        recipient: Optional[int] = None,
        sender: Optional[int] = None,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ) -> List[Envelope]:
        """In-flight envelopes, optionally filtered (uid order).

        Uids are handed out by a monotone counter and ``deliver`` only
        ever *removes* entries, so the dict's insertion order **is** uid
        order — no sort needed (a full scan per scheduler step used to
        make long runs O(m² log m) in messages).
        """
        result = []
        for envelope in self._pending.values():
            if recipient is not None and envelope.recipient != recipient:
                continue
            if sender is not None and envelope.sender != sender:
                continue
            if predicate is not None and not predicate(envelope):
                continue
            result.append(envelope)
        return result

    def deliver(self, envelope: Envelope) -> Envelope:
        """Remove an envelope from flight (the scheduler delivers it)."""
        if envelope.uid not in self._pending:
            raise KeyError(f"envelope {envelope.uid} is not in flight")
        del self._pending[envelope.uid]
        self.delivered_count += 1
        return envelope

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._pending)
