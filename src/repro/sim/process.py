"""Process bases for the executable protocols.

:class:`CorrectProcess` is the event-driven base: the scheduler delivers
one envelope at a time; ``receive`` dispatches to the protocol handler
and then lets the protocol re-evaluate its enabled conditions
(``_progress``).  Per-round bookkeeping lives in per-round dictionaries
so a process can hold late messages for past rounds and early messages
for future rounds, as the asynchronous model demands.

:class:`ByzantineProcess` is an empty shell: its behaviour (arbitrary,
equivocating messages) is injected by the adversary driving the run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.sim.coin import CommonCoin
from repro.sim.network import Message, Network


class CorrectProcess:
    """Base class for correct protocol processes."""

    def __init__(self, pid: int, n: int, t: int, network: Network, coin: CommonCoin,
                 input_value: int):
        self.pid = pid
        self.n = n
        self.t = t
        self.network = network
        self.coin = coin
        self.input = input_value
        self.est = input_value
        self.round = 0
        self.decided: Optional[int] = None
        self.decided_round: Optional[int] = None
        #: rounds whose coin this process has read (attack observability)
        self.coin_reads: Set[int] = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin round 0 (broadcast the initial estimate)."""
        self._begin_round(0)

    def receive(self, sender: int, message: Message) -> None:
        """Deliver one message, then re-evaluate protocol conditions."""
        self._handle(sender, message)
        self._progress()

    # -- protocol hooks -------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        raise NotImplementedError

    def _handle(self, sender: int, message: Message) -> None:
        raise NotImplementedError

    def _progress(self) -> None:
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------
    def _decide(self, value: int) -> None:
        if self.decided is None:
            self.decided = value
            self.decided_round = self.round

    def _read_coin(self, round_no: int) -> int:
        self.coin_reads.add(round_no)
        return self.coin.get(round_no, self.pid)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pid={self.pid}, round={self.round}, "
            f"est={self.est}, decided={self.decided})"
        )


class ByzantineProcess:
    """A fully adversary-controlled process (sends whatever it is told)."""

    def __init__(self, pid: int, n: int, network: Network):
        self.pid = pid
        self.n = n
        self.network = network

    def send(self, recipient: int, message: Message) -> None:
        self.network.send(self.pid, recipient, message)

    def broadcast(self, message: Message) -> None:
        self.network.broadcast(self.pid, message)

    def receive(self, sender: int, message: Message) -> None:
        """Byzantine processes ignore inputs (the adversary sees all)."""


class RoundState:
    """Mutable per-round message bookkeeping shared by the BV protocols."""

    def __init__(self):
        #: value -> set of senders whose EST(value) arrived
        self.est_from: Dict[int, Set[int]] = defaultdict(set)
        #: values this process itself has EST-broadcast (BV echo dedup)
        self.est_sent: Set[int] = set()
        #: the BV-broadcast output set
        self.bin_values: Set[int] = set()
        #: sender -> AUX value (first one kept per sender)
        self.aux_from: Dict[int, int] = {}
        #: arrival order of AUX senders (adversary-visible snapshots)
        self.aux_order: List[int] = []
        self.aux_sent = False
        #: snapshot of the first n-t justified AUX values, once taken
        self.values: Optional[Set[int]] = None
        # CONF/REPORT stages (Miller18 / ABY22)
        self.conf_from: Dict[int, frozenset] = {}
        self.conf_order: List[int] = []
        self.conf_sent = False
        self.report_from: Dict[int, frozenset] = {}
        self.report_order: List[int] = []
        self.report_sent = False
        self.done = False
