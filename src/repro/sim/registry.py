"""Sim-side registry: an executable row for every checker benchmark row.

The checker's :mod:`repro.protocols.registry` carries the 8 counter
models of Table II; this module pairs each name with its message-level
implementation plus everything a fleet run needs to drive it — the
small valuation (shared with the checker so cross-validation compares
like with like), the Byzantine flood kinds its message alphabet uses,
whether it *decides* (category A terminates by estimate convergence
instead) and whether the §II adaptive scheduler understands its round
bookkeeping (it choreographs BV-broadcast state, so category C only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.protocols.registry import by_name as checker_by_name
from repro.protocols.registry import names as checker_names
from repro.sim.aby22 import ABY22Process
from repro.sim.adversary import (
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    RandomScheduler,
    Scheduler,
)
from repro.sim.miller18 import Miller18Process
from repro.sim.mmr14 import MMR14Process
from repro.sim.process import CorrectProcess
from repro.sim.voting import (
    CC85aProcess,
    CC85bProcess,
    FMR05Process,
    KS16Process,
    Rabin83Process,
    VOTE,
    RATIFY,
    converged_round,
)

#: Byzantine flood alphabets: (binary kinds, set kinds).
_BV_KINDS = (("EST", "AUX"), ("CONF", "REPORT"))
_VOTE_KINDS = ((VOTE,), ())
_KS16_KINDS = ((VOTE, RATIFY), ())

_PROCESS: dict = {
    "rabin83": (Rabin83Process, _VOTE_KINDS),
    "cc85a": (CC85aProcess, _VOTE_KINDS),
    "cc85b": (CC85bProcess, _VOTE_KINDS),
    "fmr05": (FMR05Process, _VOTE_KINDS),
    "ks16": (KS16Process, _KS16_KINDS),
    "mmr14": (MMR14Process, _BV_KINDS),
    "miller18": (Miller18Process, _BV_KINDS),
    "aby22": (ABY22Process, _BV_KINDS),
}


@dataclass(frozen=True)
class SimProtocol:
    """One executable benchmark row (sim side of a registry entry)."""

    name: str
    process_cls: Type[CorrectProcess]
    category: str
    n: int
    t: int
    f: int
    #: binary / set message kinds the Byzantine flood strategy forges
    binary_kinds: Tuple[str, ...]
    set_kinds: Tuple[str, ...]

    @property
    def decides(self) -> bool:
        """Category A terminates by convergence, not an explicit decide."""
        return getattr(self.process_cls, "DECIDES", True)

    @property
    def supports_adaptive(self) -> bool:
        """The §II attack steers BV-broadcast rounds (category C only)."""
        return self.category == "C"

    @property
    def n_correct(self) -> int:
        return self.n - self.f

    def mixed_inputs(self) -> List[int]:
        """The canonical maximally-split input vector (⌊nc/2⌋ zeros)."""
        zeros = self.n_correct // 2
        return [0] * zeros + [1] * (self.n_correct - zeros)

    def make_byzantine(self, byz_pids) -> EquivocatingByzantine:
        return EquivocatingByzantine(
            list(byz_pids),
            binary_kinds=self.binary_kinds,
            set_kinds=self.set_kinds,
        )

    def make_scheduler(
        self, sim, name: str, seed: int, byzantine_noise: bool = True
    ) -> Scheduler:
        """A wired scheduler (``"random"`` or ``"adaptive"``) for ``sim``."""
        if name == "adaptive":
            if not self.supports_adaptive:
                raise ValueError(
                    f"the adaptive scheduler steers BV-broadcast round "
                    f"state; {self.name} (category {self.category}) does "
                    f"not speak it — use scheduler='random'"
                )
            return AdaptiveCoinAttack(self.make_byzantine(sim.byzantine))
        if name != "random":
            raise ValueError(
                f"unknown scheduler {name!r}; expected 'random' or 'adaptive'"
            )
        scheduler = RandomScheduler(seed=seed)
        if byzantine_noise and sim.byzantine:
            scheduler.byzantine = self.make_byzantine(sim.byzantine)
        return scheduler

    def stop_predicate(self) -> Optional[Callable]:
        """Extra run() stop condition (category A: estimate convergence)."""
        if self.decides:
            return None
        return lambda sim: converged_round(sim) is not None

    def termination_round(self, sim) -> Optional[int]:
        """0-based round the run's termination witness landed in.

        Deciders: the last correct decision round once *all* correct
        processes decided.  Category A: the first unanimously-voted
        round (see :func:`repro.sim.voting.converged_round`).  None
        while the run has not terminated.
        """
        if not self.decides:
            return converged_round(sim)
        if not sim.all_decided():
            return None
        return max(p.decided_round for p in sim.correct.values())

    def termination_value(self, sim) -> Optional[int]:
        """The agreed value of a terminated run (None: not terminated,
        or — deciders only — an agreement violation split the values)."""
        if not self.decides:
            round_no = converged_round(sim)
            if round_no is None:
                return None
            return next(iter(sim.correct.values())).vote_log[round_no]
        if not sim.all_decided():
            return None
        values = {p.decided for p in sim.correct.values()}
        return values.pop() if len(values) == 1 else None


def sim_by_name(name: str) -> SimProtocol:
    """The executable row for a registry protocol name."""
    entry = checker_by_name(name)  # raises KeyError with the known names
    process_cls, (binary_kinds, set_kinds) = _PROCESS[entry.name]
    valuation = entry.small_valuation
    return SimProtocol(
        name=entry.name,
        process_cls=process_cls,
        category=entry.category,
        n=valuation["n"],
        t=valuation["t"],
        f=valuation["f"],
        binary_kinds=tuple(binary_kinds),
        set_kinds=tuple(set_kinds),
    )


def sim_names() -> Tuple[str, ...]:
    """All executable protocol names (== the checker registry's)."""
    return checker_names()


def sim_benchmark() -> Tuple[SimProtocol, ...]:
    """Every executable row, in registry name order."""
    return tuple(sim_by_name(name) for name in sim_names())
