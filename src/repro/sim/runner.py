"""Simulation driver: wire processes, network, coin and scheduler.

:class:`Simulation` owns one protocol instance; :func:`run` drives it
with a scheduler for a bounded number of deliveries and reports a
:class:`SimResult` (who decided what and when, agreement/validity
checks).  :func:`expected_rounds` measures the mean decision round over
many seeds — the "4 expected rounds" folklore number for the fixed
MMR14-family protocols (§II of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.sim.adversary import EquivocatingByzantine, RandomScheduler, Scheduler
from repro.sim.coin import CommonCoin
from repro.sim.network import Network
from repro.sim.process import ByzantineProcess, CorrectProcess
from repro.version import stable_digest


def split_seed(seed: int, stream: str) -> int:
    """A decorrelated sub-seed for ``stream`` derived from ``seed``.

    ``stable_digest`` (sha256) keyed splitting: the coin stream and the
    scheduler stream of one run must not be the *same* integer seed —
    feeding ``seed`` to both ``random.Random`` constructors correlates
    the coin sequence with the delivery order across every run of a
    sweep.  Stable across processes and ``PYTHONHASHSEED`` (fleet
    shards on different workers derive identical streams).
    """
    return int(stable_digest(f"sim-stream:{stream}:{seed}", length=16), 16)


class Simulation:
    """One protocol run: ``n`` processes, the last ``t_actual`` Byzantine."""

    def __init__(
        self,
        process_cls: Type[CorrectProcess],
        n: int,
        t: int,
        inputs: Sequence[int],
        coin_seed: int = 0,
        byzantine_count: Optional[int] = None,
        epsilon: float = 0.5,
        coin=None,
    ):
        if n < 1:
            raise ValueError(f"need at least one process, got n={n}")
        if t < 0:
            raise ValueError(f"fault budget t must be >= 0, got t={t}")
        faulty = t if byzantine_count is None else byzantine_count
        if faulty < 0:
            raise ValueError(
                f"byzantine_count must be >= 0, got {faulty} (a negative "
                f"count would fabricate more correct processes than n)"
            )
        if faulty > t:
            raise ValueError(
                f"byzantine_count {faulty} cannot exceed the fault budget "
                f"t={t}"
            )
        n_correct = n - faulty
        if n_correct < 1:
            raise ValueError(
                f"no correct processes left: n={n} with {faulty} Byzantine"
            )
        if len(inputs) != n_correct:
            raise ValueError(f"need {n_correct} inputs, got {len(inputs)}")
        self.n = n
        self.t = t
        self.network = Network(n)
        self.coin = CommonCoin(seed=coin_seed, epsilon=epsilon, spec=coin)
        self.correct: Dict[int, CorrectProcess] = {}
        for pid in range(n_correct):
            self.correct[pid] = process_cls(
                pid, n, t, self.network, self.coin, inputs[pid]
            )
        self.byzantine: Dict[int, ByzantineProcess] = {
            pid: ByzantineProcess(pid, n, self.network)
            for pid in range(n_correct, n)
        }
        self.steps = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        for process in self.correct.values():
            process.start()

    def deliver(self, envelope) -> None:
        self.network.deliver(envelope)
        self.steps += 1
        target = self.correct.get(envelope.recipient)
        if target is not None:
            target.receive(envelope.sender, envelope.message)
        else:
            self.byzantine[envelope.recipient].receive(
                envelope.sender, envelope.message
            )

    # ------------------------------------------------------------------
    def decided_values(self) -> Dict[int, Optional[int]]:
        return {pid: p.decided for pid, p in self.correct.items()}

    def all_decided(self) -> bool:
        return all(p.decided is not None for p in self.correct.values())

    def agreement_holds(self) -> bool:
        values = {p.decided for p in self.correct.values() if p.decided is not None}
        return len(values) <= 1

    def validity_holds(self) -> bool:
        proposed = {p.input for p in self.correct.values()}
        return all(
            p.decided is None or p.decided in proposed
            for p in self.correct.values()
        )

    def max_decision_round(self) -> Optional[int]:
        rounds = [
            p.decided_round for p in self.correct.values() if p.decided_round is not None
        ]
        return max(rounds) if rounds else None


@dataclass
class SimResult:
    """Outcome of one bounded run."""

    decided: Dict[int, Optional[int]]
    decision_rounds: Dict[int, Optional[int]]
    agreement: bool
    validity: bool
    all_decided: bool
    steps: int
    rounds_reached: int

    def __str__(self) -> str:
        return (
            f"decided={self.decided} rounds={self.decision_rounds} "
            f"agreement={self.agreement} validity={self.validity} "
            f"steps={self.steps}"
        )


def run(
    sim: Simulation,
    scheduler: Scheduler,
    max_steps: int = 50_000,
    stop_when_decided: bool = True,
    stop: Optional[Callable[[Simulation], bool]] = None,
) -> SimResult:
    """Drive the simulation until decision, quiescence or budget.

    ``stop`` is an extra termination predicate over the live simulation
    — the category-A protocols (no decide action) end their runs on
    estimate *convergence* instead of all-decided.
    """
    sim.start()
    byzantine = getattr(scheduler, "byzantine", None)
    for _ in range(max_steps):
        if stop_when_decided and sim.all_decided():
            break
        if stop is not None and stop(sim):
            break
        if byzantine is not None:
            byzantine.inject_round(sim, byzantine.max_round(sim))
        envelope = scheduler.next_envelope(sim)
        if envelope is None:
            break
        sim.deliver(envelope)
    return SimResult(
        decided=sim.decided_values(),
        decision_rounds={pid: p.decided_round for pid, p in sim.correct.items()},
        agreement=sim.agreement_holds(),
        validity=sim.validity_holds(),
        all_decided=sim.all_decided(),
        steps=sim.steps,
        rounds_reached=max(p.round for p in sim.correct.values()),
    )


@dataclass(frozen=True)
class RoundStats:
    """Decision-round statistics over a batch of Monte Carlo runs.

    ``mean`` is the mean 1-based all-decided round **conditioned on the
    run completing** (``inf`` when nothing completed); a protocol that
    hangs 30% of the time therefore reports the *same* mean as one that
    always decides — which is exactly why :attr:`completion` (the
    fraction of runs that decided within budget) travels with it and
    every consumer must report both.
    """

    mean: float
    completed: int
    runs: int

    @property
    def completion(self) -> float:
        """Fraction of runs that fully decided within the step budget."""
        return self.completed / self.runs if self.runs else 0.0


def expected_rounds_stats(
    process_cls: Type[CorrectProcess],
    n: int,
    t: int,
    inputs: Sequence[int],
    runs: int = 50,
    max_steps: int = 50_000,
    byzantine_count: Optional[int] = None,
    with_byzantine_noise: bool = True,
    coin=None,
    seed_streams: str = "split",
) -> RoundStats:
    """Decision-round statistics over ``runs`` random-scheduler runs.

    ``seed_streams`` picks the RNG wiring: ``"split"`` (default)
    derives decorrelated sub-seeds for the coin and the scheduler via
    :func:`split_seed`; ``"legacy"`` pins the historical pairing that
    fed the *same* integer to both streams (kept for reproducing old
    golden statistical numbers).
    """
    if seed_streams not in ("split", "legacy"):
        raise ValueError(
            f"seed_streams must be 'split' or 'legacy', got {seed_streams!r}"
        )
    total = 0.0
    completed = 0
    for seed in range(runs):
        if seed_streams == "split":
            coin_seed = split_seed(seed, "coin")
            sched_seed = split_seed(seed, "scheduler")
        else:
            coin_seed = sched_seed = seed
        sim = Simulation(
            process_cls, n, t, inputs,
            coin_seed=coin_seed, byzantine_count=byzantine_count, coin=coin,
        )
        scheduler = RandomScheduler(seed=sched_seed)
        if with_byzantine_noise and sim.byzantine:
            scheduler.byzantine = EquivocatingByzantine(list(sim.byzantine))
        result = run(sim, scheduler, max_steps=max_steps)
        if result.all_decided:
            completed += 1
            total += max(result.decision_rounds.values()) + 1
    mean = total / completed if completed else float("inf")
    return RoundStats(mean=mean, completed=completed, runs=runs)


def expected_rounds(
    process_cls: Type[CorrectProcess],
    n: int,
    t: int,
    inputs: Sequence[int],
    runs: int = 50,
    max_steps: int = 50_000,
    byzantine_count: Optional[int] = None,
    with_byzantine_noise: bool = True,
    coin=None,
    seed_streams: str = "split",
) -> float:
    """Mean decision round (1-based) over ``runs`` random-scheduler runs.

    **Conditioned on completion** — non-terminating runs are excluded
    from the mean.  Callers that care about hangs should use
    :func:`expected_rounds_stats`, which reports the completion
    fraction alongside.
    """
    return expected_rounds_stats(
        process_cls, n, t, inputs,
        runs=runs, max_steps=max_steps, byzantine_count=byzantine_count,
        with_byzantine_noise=with_byzantine_noise, coin=coin,
        seed_streams=seed_streams,
    ).mean
