"""Executable one/two-stage voting protocols (categories A and B).

The checker models Rabin83, CC85(a)/(b), FMR05 and KS16 through the
counter abstraction of :mod:`repro.protocols.common`; this module gives
each of them a *message-level* realization over the same substrate the
category-C implementations use (network, scheduler-owned delivery,
Byzantine equivocation, common-coin oracle), so the simulation fleet
can cross-validate every registry row against the checker.

Round ``r`` of the one-stage family (:class:`VotingProcess`):

1. broadcast ``VOTE(r, est)`` (receivers keep the first copy per
   sender per round — equivocation resolves to whichever the scheduler
   delivers first);
2. once ``n - t`` votes arrived, classify the *received counts* on
   every further arrival until a branch fires:

   * **decide-ready** (``c_v >= decide_at``): read the round coin
     ``s``; ``est <- v`` and decide ``v`` iff ``v == s``;
   * **adopt** (``c_v >= adopt_at`` with strict plurality): ``est <- v``
     without touching the coin;
   * **mixed** (genuine support ``c_b >= t + 1`` for both values):
     ``est <-`` the round coin.

3. next round.  Decided processes keep participating (the usual
   termination bookkeeping, matching the counter models' ``D -> J``
   round switches).

The thresholds mirror each model's guards with the counter
abstraction's ``- f`` slack *removed*: the models count correct
processes exactly (a global quantity), while a receiver here counts
received messages, up to ``t`` of which may be Byzantine — so decide
quorums are sized for view intersection (any two decide/adopt views
share a correct sender) rather than for the abstract counters.  The
quorum-intersection safety argument is the classic one: with the
thresholds below, decide-ready views for opposite values cannot
coexist, and a round in which some process decides ``v`` forces every
other correct process to leave the round with ``est = v`` (adopt and
mixed both resolve to the same published coin value ``s = v``).

Category A (Rabin83) has no decide action: termination is estimate
*convergence*, detected by :func:`converged_round` as the first round
whose round-start votes were unanimous (absorbing — a unanimous vote
round blocks the mixed branch at every receiver, so the estimates
never split again).

KS16 (:class:`KS16Process`) adds Bracha's ratification stage: votes
elect a per-process ``RATIFY(r, w)`` value (own value on ``t + 1``
support, the other on an outright majority), and the decide/adopt/mixed
classification runs over the ratify counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.network import Message
from repro.sim.process import CorrectProcess

VOTE = "VOTE"
RATIFY = "RATIFY"


class VoteState:
    """Per-round vote (and ratify) bookkeeping."""

    def __init__(self):
        #: sender -> vote value (first copy kept per sender)
        self.vote_from: Dict[int, int] = {}
        #: sender -> ratify value (KS16's second stage)
        self.ratify_from: Dict[int, int] = {}
        #: the value this process ratified (None until stage 1 fires)
        self.ratified: Optional[int] = None
        self.done = False

    def counts(self, source: Dict[int, int]):
        c0 = sum(1 for value in source.values() if value == 0)
        return c0, len(source) - c0


class VotingProcess(CorrectProcess):
    """One-stage voting skeleton; subclasses bind the thresholds."""

    #: Category A protocols never decide (termination = convergence).
    DECIDES = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rounds: Dict[int, VoteState] = {}
        #: round -> the estimate this process *voted* (round-start est);
        #: unanimity of a fully-voted round is the convergence witness.
        self.vote_log: Dict[int, int] = {}

    def _round_state(self, round_no: int) -> VoteState:
        if round_no not in self._rounds:
            self._rounds[round_no] = VoteState()
        return self._rounds[round_no]

    # -- thresholds (received-count semantics) --------------------------
    def _decide_at(self) -> Optional[int]:
        """Votes of one value that make a view decide-ready (None: never)."""
        return None

    def _adopt_at(self) -> Optional[int]:
        """Votes of one value that adopt it without the coin (None: never)."""
        return None

    def _classify(self, c0: int, c1: int):
        """(branch, value) for the counts, or None to wait for more."""
        decide_at, adopt_at = self._decide_at(), self._adopt_at()
        for value, mine, other in ((0, c0, c1), (1, c1, c0)):
            if decide_at is not None and mine >= decide_at:
                return "decide", value
            if adopt_at is not None and mine >= adopt_at and mine > other:
                return "adopt", value
        if c0 >= self.t + 1 and c1 >= self.t + 1:
            return "coin", None
        return None

    # -- protocol hooks -------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        self.round = round_no
        self.vote_log[round_no] = self.est
        self.network.broadcast(self.pid, Message(VOTE, round_no, self.est))
        self._progress()

    def _handle(self, sender: int, message: Message) -> None:
        if message.kind != VOTE or message.value not in (0, 1):
            return
        state = self._round_state(message.round)
        if sender not in state.vote_from:
            state.vote_from[sender] = message.value

    def _progress(self) -> None:
        state = self._round_state(self.round)
        if state.done:
            return
        c0, c1 = state.counts(state.vote_from)
        if c0 + c1 < self.n - self.t:
            return
        outcome = self._classify(c0, c1)
        if outcome is None:
            return
        state.done = True
        self._apply(outcome)
        self._begin_round(self.round + 1)

    def _apply(self, outcome) -> None:
        branch, value = outcome
        if branch == "decide":
            s = self._read_coin(self.round)
            self.est = value
            if self.DECIDES and value == s:
                self._decide(value)
        elif branch == "adopt":
            self.est = value
        else:  # mixed view: the coin is the estimate
            self.est = self._read_coin(self.round)


class Rabin83Process(VotingProcess):
    """Rabin83 (category A): adopt a clear majority or take the coin."""

    DECIDES = False

    def _adopt_at(self) -> int:
        # The model's (n+t)/2-majority guard 2*v_v >= n + t + 2 in
        # received-count form (ceiling division).
        return -(-(self.n + self.t + 2) // 2)


class CC85aProcess(VotingProcess):
    """Chor-Coan 85 variant (a): unanimous-view decide, t < n/4."""

    def _decide_at(self) -> int:
        return self.n - self.t

    def _adopt_at(self) -> int:
        return self.n - self._decide_at() + self.t + 1


class CC85bProcess(VotingProcess):
    """Chor-Coan 85 variant (b): n - 2t decide quorum, t < n/6."""

    def _decide_at(self) -> int:
        return self.n - 2 * self.t

    def _adopt_at(self) -> int:
        return self.n - self._decide_at() + self.t + 1


class FMR05Process(VotingProcess):
    """Friedman-Mostefaoui-Raynal 05: decide or coin, no adopt branch."""

    def _decide_at(self) -> int:
        return self.n - 2 * self.t


class KS16Process(VotingProcess):
    """KS16: Bracha's protocol with the local coins replaced by a
    common coin — a vote stage electing a ratify value, then the
    decide/adopt/mixed classification over the ratify counts."""

    def _decide_at(self) -> int:
        return self.n - self.t

    def _adopt_at(self) -> int:
        return self.n - self._decide_at() + self.t + 1

    def _handle(self, sender: int, message: Message) -> None:
        if message.value not in (0, 1):
            return
        state = self._round_state(message.round)
        if message.kind == VOTE:
            if sender not in state.vote_from:
                state.vote_from[sender] = message.value
        elif message.kind == RATIFY:
            if sender not in state.ratify_from:
                state.ratify_from[sender] = message.value

    def _progress(self) -> None:
        state = self._round_state(self.round)
        if state.done:
            return
        if state.ratified is None:
            # Stage 1: ratify own value on t+1 support, or switch on an
            # outright majority of all n for the other value.
            c0, c1 = state.counts(state.vote_from)
            own = self.est
            mine, other = (c0, c1) if own == 0 else (c1, c0)
            if mine >= self.t + 1:
                state.ratified = own
            elif other >= (self.n + 2) // 2:
                state.ratified = 1 - own
            else:
                return
            self.network.broadcast(
                self.pid, Message(RATIFY, self.round, state.ratified)
            )
        # Stage 2: classify the ratify counts.
        c0, c1 = state.counts(state.ratify_from)
        if c0 + c1 < self.n - self.t:
            return
        outcome = self._classify(c0, c1)
        if outcome is None:
            return
        state.done = True
        self._apply(outcome)
        self._begin_round(self.round + 1)


def converged_round(sim) -> Optional[int]:
    """First fully-voted round with unanimous round-start votes.

    The convergence witness for the non-deciding protocols: once every
    correct process broadcast the *same* estimate in round ``r``, the
    mixed branch is disabled at every receiver (the only ``1 - v``
    votes are the <= t Byzantine ones, below the ``t + 1`` genuine
    support the mixed guard demands), so unanimity persists forever.
    Returns None while no such round exists yet.
    """
    logs = [
        process.vote_log
        for process in sim.correct.values()
        if hasattr(process, "vote_log")
    ]
    if len(logs) != len(sim.correct):
        return None
    round_no = 0
    while all(round_no in log for log in logs):
        if len({log[round_no] for log in logs}) == 1:
            return round_no
        round_no += 1
    return None
