"""Exact linear-arithmetic solving (the SMT-backend substitute).

The parameterized checker reduces every schema to a conjunction of
linear constraints over non-negative integers; this package decides
them with an exact Fraction-based phase-1 simplex
(:func:`~repro.solver.simplex.lp_feasible`) and branch & bound
(:func:`~repro.solver.ilp.ilp_feasible`).
"""

from repro.solver.ilp import SAT, UNKNOWN, UNSAT, IlpResult, ilp_feasible
from repro.solver.linear import EQ, GE, LinConstraint, LinearProblem, constraint
from repro.solver.simplex import SimplexResult, lp_feasible

__all__ = [
    "EQ",
    "GE",
    "IlpResult",
    "LinConstraint",
    "LinearProblem",
    "SAT",
    "SimplexResult",
    "UNKNOWN",
    "UNSAT",
    "constraint",
    "ilp_feasible",
    "lp_feasible",
]
