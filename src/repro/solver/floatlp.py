"""Floating-point LP feasibility via scipy (HiGHS) — the fast pruning path.

The schema DFS asks thousands of "is this prefix still realizable?"
questions; answering each with the exact Fraction simplex is needlessly
slow.  HiGHS answers in microseconds; we only ever use the *infeasible*
answer for pruning, and leaf verdicts are confirmed by the exact solver
(see :mod:`repro.checker.parameterized`), so a numerically optimistic
"feasible" merely costs time.  Returns ``None`` (no answer) on any
solver hiccup, which callers treat as "do not prune".
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.solver.linear import EQ, LinearProblem

try:  # scipy is an optional accelerator; the exact solver always works.
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - environment without scipy
    _HAVE_SCIPY = False


def float_solve(problem: LinearProblem):
    """Feasibility plus a float vertex.

    Returns ``(feasible, assignment)`` where ``feasible`` is ``True`` /
    ``False`` / ``None`` (undecided) and ``assignment`` maps variables to
    floats when feasible.
    """
    if not _HAVE_SCIPY:
        return None, None
    variables = problem.variables()
    if not variables:
        return True, {}
    index = {name: j for j, name in enumerate(variables)}
    n = len(variables)
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    a_eq: List[List[float]] = []
    b_eq: List[float] = []
    for item in problem.constraints:
        row = [0.0] * n
        for name, coeff in item.coeffs:
            row[index[name]] = float(coeff)
        if item.sense == EQ:
            a_eq.append(row)
            b_eq.append(-float(item.const))
        else:
            # coeffs.x + const >= 0  <=>  -coeffs.x <= const
            a_ub.append([-value for value in row])
            b_ub.append(float(item.const))
    try:
        result = linprog(
            c=np.zeros(n),
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(0, None)] * n,
            method="highs",
        )
    except Exception:  # pragma: no cover - numerical blow-up
        return None, None
    if result.status == 0:
        assignment = {name: float(result.x[index[name]]) for name in variables}
        return True, assignment
    if result.status == 2:
        return False, None
    return None, None


def float_feasible(problem: LinearProblem) -> Optional[bool]:
    """Feasibility over non-negative reals; ``None`` when undecided."""
    feasible, _assignment = float_solve(problem)
    return feasible


def rounded_integer_model(problem: LinearProblem) -> Optional[dict]:
    """Try to turn the float vertex into an exact integer model.

    Counter-system polytopes usually have integral vertices; rounding
    the HiGHS solution and *exactly* re-checking it against the
    constraints resolves most SAT leaves without touching the (slow)
    exact branch & bound.  Returns a verified model or ``None``.
    """
    feasible, assignment = float_solve(problem)
    if not feasible or assignment is None:
        return None
    for rounder in (round, lambda v: int(v) + (v - int(v) > 1e-9)):
        candidate = {
            name: max(0, int(rounder(value))) for name, value in assignment.items()
        }
        if problem.check(candidate):
            return candidate
    return None
