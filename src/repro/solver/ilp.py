"""Integer feasibility by branch & bound over the exact simplex.

The schema encoder needs *integer* solutions (counters, rule counts and
parameters are naturals).  We branch on a fractional coordinate of the
LP vertex: ``x <= floor(v)`` / ``x >= floor(v) + 1``, exploring the
floor side first (counter systems usually have small witnesses).  The
search is complete for bounded problems; since parameters are unbounded
above, a node budget caps the search and reports ``UNKNOWN`` — callers
(the parameterized checker) treat that as "no verdict at this schema".

The returned model is verified against the original constraints before
being handed back, so a SAT answer is always trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.errors import SolverError
from repro.solver.linear import LinearProblem, constraint
from repro.solver.simplex import lp_feasible

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass
class IlpResult:
    """Outcome of an integer feasibility check."""

    status: str
    model: Optional[Dict[str, int]] = None
    nodes: int = 0
    pivots: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == SAT


def _fractional_variable(assignment: Dict[str, Fraction]) -> Optional[str]:
    for name in sorted(assignment):
        if assignment[name].denominator != 1:
            return name
    return None


def ilp_feasible(
    problem: LinearProblem,
    max_nodes: int = 5_000,
) -> IlpResult:
    """Decide integer feasibility of ``problem`` (non-negative integers)."""
    stack: List[LinearProblem] = [problem]
    nodes = 0
    pivots = 0
    exhausted = True
    while stack:
        nodes += 1
        if nodes > max_nodes:
            exhausted = False
            break
        node = stack.pop()
        relaxation = lp_feasible(node)
        pivots += relaxation.pivots
        if not relaxation.feasible:
            continue
        branch_var = _fractional_variable(relaxation.assignment)
        if branch_var is None:
            model = {
                name: int(value)
                for name, value in relaxation.assignment.items()
            }
            # Defensive re-check: a SAT verdict must satisfy the input.
            if not problem.check(model):
                raise SolverError(
                    "internal error: integral vertex fails the constraints"
                )
            return IlpResult(SAT, model, nodes, pivots)
        value = relaxation.assignment[branch_var]
        floor = value.numerator // value.denominator
        # Explore x <= floor first (pushed last): small witnesses first.
        stack.append(node.extended([constraint({branch_var: 1}, -(floor + 1))]))
        stack.append(node.extended([constraint({branch_var: -1}, floor)]))
    if exhausted:
        return IlpResult(UNSAT, None, nodes, pivots)
    return IlpResult(UNKNOWN, None, nodes, pivots)
