"""Linear integer arithmetic problems.

The schema encoder (§V reduction) produces conjunctions of linear
constraints over non-negative integer variables: rule-execution counts,
location counters at context boundaries, shared-variable values and the
environment parameters.  :class:`LinearProblem` collects such
constraints; :mod:`repro.solver.simplex` decides rational feasibility
and :mod:`repro.solver.ilp` integer feasibility.

All variables are implicitly constrained to be **non-negative** — every
quantity in a counter system is.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import SolverError

Number = Union[int, Fraction]

GE = ">="
EQ = "=="


def _coerce(coeffs: Mapping[str, Number]) -> Dict[str, Fraction]:
    return {name: Fraction(value) for name, value in coeffs.items() if value != 0}


@dataclass(frozen=True)
class LinConstraint:
    """``sum(coeffs[v] * v) + const  (>=|==)  0``."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    const: Fraction
    sense: str

    def __post_init__(self) -> None:
        if self.sense not in (GE, EQ):
            raise SolverError(f"unknown constraint sense {self.sense!r}")

    def evaluate(self, assignment: Mapping[str, Number]) -> Fraction:
        total = Fraction(self.const)
        for name, coeff in self.coeffs:
            total += coeff * Fraction(assignment.get(name, 0))
        return total

    def satisfied(self, assignment: Mapping[str, Number]) -> bool:
        value = self.evaluate(assignment)
        return value >= 0 if self.sense == GE else value == 0

    def __str__(self) -> str:
        terms = " + ".join(f"{coeff}*{name}" for name, coeff in self.coeffs) or "0"
        return f"{terms} + {self.const} {self.sense} 0"


def constraint(
    coeffs: Mapping[str, Number], const: Number = 0, sense: str = GE
) -> LinConstraint:
    """Build a canonical constraint."""
    canonical = tuple(sorted(_coerce(coeffs).items()))
    return LinConstraint(canonical, Fraction(const), sense)


class LinearProblem:
    """A conjunction of linear constraints over non-negative variables."""

    def __init__(self, constraints: Optional[Iterable[LinConstraint]] = None):
        self.constraints: List[LinConstraint] = list(constraints or [])

    # ------------------------------------------------------------------
    def add(self, item: LinConstraint) -> "LinearProblem":
        self.constraints.append(item)
        return self

    def ge(self, coeffs: Mapping[str, Number], const: Number = 0) -> "LinearProblem":
        """Add ``coeffs . x + const >= 0``."""
        return self.add(constraint(coeffs, const, GE))

    def le(self, coeffs: Mapping[str, Number], const: Number = 0) -> "LinearProblem":
        """Add ``coeffs . x + const <= 0`` (negated into a GE constraint)."""
        negated = {name: -Fraction(value) for name, value in coeffs.items()}
        return self.add(constraint(negated, -Fraction(const), GE))

    def eq(self, coeffs: Mapping[str, Number], const: Number = 0) -> "LinearProblem":
        """Add ``coeffs . x + const == 0``."""
        return self.add(constraint(coeffs, const, EQ))

    # ------------------------------------------------------------------
    def variables(self) -> Tuple[str, ...]:
        names = set()
        for item in self.constraints:
            for name, _coeff in item.coeffs:
                names.add(name)
        return tuple(sorted(names))

    def extended(self, extra: Iterable[LinConstraint]) -> "LinearProblem":
        """A copy with additional constraints (used by branch & bound)."""
        return LinearProblem(self.constraints + list(extra))

    def check(self, assignment: Mapping[str, Number]) -> bool:
        """Does a (non-negative) assignment satisfy every constraint?"""
        for name in self.variables():
            if Fraction(assignment.get(name, 0)) < 0:
                return False
        return all(item.satisfied(assignment) for item in self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __str__(self) -> str:
        return "\n".join(str(item) for item in self.constraints)
