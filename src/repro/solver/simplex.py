"""Exact rational feasibility via phase-1 simplex.

The only question the schema checker ever asks an LP is *"is this
conjunction of linear constraints feasible over non-negative
rationals?"* — we answer it with a textbook phase-1 simplex over
:class:`fractions.Fraction` (no floating-point error, no licensing, no
SMT dependency).  Bland's anti-cycling rule guarantees termination.

Standard form construction: each constraint ``a.x + c >= 0`` becomes
``a.x - s = -c`` with a fresh slack ``s >= 0``; equalities pass through.
Rows are sign-normalized to a non-negative right-hand side and seeded
with artificial variables, whose sum is minimized; the problem is
feasible iff that optimum is zero, and the final basis then yields a
vertex assignment (used by branch & bound to pick fractional variables).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import SolverError
from repro.solver.linear import EQ, GE, LinearProblem

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass
class SimplexResult:
    """Outcome of a rational feasibility check."""

    feasible: bool
    #: a satisfying vertex (only when feasible); variables absent are 0.
    assignment: Dict[str, Fraction]
    pivots: int = 0


def lp_feasible(problem: LinearProblem) -> SimplexResult:
    """Decide feasibility of ``problem`` over non-negative rationals."""
    variables = list(problem.variables())
    var_index = {name: j for j, name in enumerate(variables)}
    n_vars = len(variables)

    rows: List[List[Fraction]] = []
    senses: List[str] = []
    rhs: List[Fraction] = []
    for item in problem.constraints:
        row = [ZERO] * n_vars
        for name, coeff in item.coeffs:
            row[var_index[name]] = coeff
        rows.append(row)
        senses.append(item.sense)
        rhs.append(-item.const)  # a.x + c >= 0  <=>  a.x >= -c
    if not rows:
        return SimplexResult(True, {})

    # --- standard form: A x' = b with x' >= 0 --------------------------
    n_slacks = sum(1 for sense in senses if sense == GE)
    total = n_vars + n_slacks
    tableau: List[List[Fraction]] = []
    slack_cursor = 0
    for row, sense, b in zip(rows, senses, rhs):
        full = row + [ZERO] * n_slacks + [b]
        if sense == GE:
            full[n_vars + slack_cursor] = -ONE  # surplus: a.x - s = b
            slack_cursor += 1
        tableau.append(full)

    # Normalize to b >= 0 so artificials can seed a feasible basis.
    for row in tableau:
        if row[-1] < 0:
            for j in range(len(row)):
                row[j] = -row[j]

    # --- artificials + phase-1 objective --------------------------------
    m = len(tableau)
    art_base = total
    for i, row in enumerate(tableau):
        artificial = [ZERO] * m
        artificial[i] = ONE
        row[-1:-1] = artificial  # insert before RHS column
    width = total + m + 1
    basis = [art_base + i for i in range(m)]

    # Objective row: minimize sum of artificials.  With the artificial
    # basis, the reduced-cost row is the negated column sums of the
    # non-artificial part (textbook initialization).
    objective = [ZERO] * width
    for row in tableau:
        for j in range(width):
            objective[j] += row[j]
    for j in range(total, total + m):
        objective[j] = ZERO  # reduced costs of basic artificials are 0

    pivots = 0
    max_pivots = 20_000 + 200 * width
    while True:
        # Bland's rule: smallest index with positive reduced cost.
        entering = -1
        for j in range(total + m):
            if objective[j] > 0:
                entering = j
                break
        if entering < 0:
            break
        # Ratio test, again breaking ties by smallest basis index.
        leaving = -1
        best: Optional[Fraction] = None
        for i, row in enumerate(tableau):
            if row[entering] <= 0:
                continue
            ratio = row[-1] / row[entering]
            if best is None or ratio < best or (
                ratio == best and basis[i] < basis[leaving]
            ):
                best = ratio
                leaving = i
        if leaving < 0:
            raise SolverError("phase-1 objective unbounded; malformed tableau")
        _pivot(tableau, objective, basis, leaving, entering)
        pivots += 1
        if pivots > max_pivots:
            raise SolverError("simplex exceeded pivot budget (cycling?)")

    infeasibility = objective[-1]
    if infeasibility != 0:
        return SimplexResult(False, {}, pivots)

    assignment: Dict[str, Fraction] = {}
    for i, var in enumerate(basis):
        if var < n_vars:
            assignment[variables[var]] = tableau[i][-1]
    return SimplexResult(True, assignment, pivots)


def _pivot(
    tableau: List[List[Fraction]],
    objective: List[Fraction],
    basis: List[int],
    leaving: int,
    entering: int,
) -> None:
    """Standard tableau pivot: make ``entering`` basic in row ``leaving``."""
    row = tableau[leaving]
    factor = row[entering]
    tableau[leaving] = [value / factor for value in row]
    row = tableau[leaving]
    for i, other in enumerate(tableau):
        if i == leaving or other[entering] == 0:
            continue
        scale = other[entering]
        tableau[i] = [a - scale * b for a, b in zip(other, row)]
    if objective[entering] != 0:
        scale = objective[entering]
        for j in range(len(objective)):
            objective[j] -= scale * row[j]
    basis[leaving] = entering
