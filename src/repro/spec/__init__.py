"""Specifications: LTL−X propositions, query shapes and the paper's
property library (Inv1/Inv2, C1/C2/C2′, CB0–CB4, per-category bundles).
"""

from repro.spec.obligations import (
    ObligationSet,
    agreement_obligations,
    obligations_for,
    termination_obligations,
    validity_obligations,
)
from repro.spec.properties import PropertyLibrary
from repro.spec.propositions import Prop, PropKind, none_at, some_at
from repro.spec.queries import GameQuery, ReachQuery

__all__ = [
    "GameQuery",
    "ObligationSet",
    "Prop",
    "PropKind",
    "PropertyLibrary",
    "ReachQuery",
    "agreement_obligations",
    "none_at",
    "obligations_for",
    "some_at",
    "termination_obligations",
    "validity_obligations",
]
