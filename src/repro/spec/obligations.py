"""Per-category proof obligations (§V-B, Propositions 1–5).

The paper divides common-coin protocols into three categories and gives
each a sufficient-condition bundle for Agreement, Validity and
Almost-Sure Termination.  :func:`obligations_for` assembles the full
bundle for one protocol model:

========  ==========================================================
Category  Almost-sure termination conditions
========  ==========================================================
(A)       C1 (probabilistic, Lemma 2) and C2 (non-probabilistic)
(B)       C1 and C2′ (both probabilistic, Lemma 2)
(C)       CB0–CB4 (binding, on the refined model) and C2′ —
          binding + coin independence yields C1 (Proposition 5)
========  ==========================================================

All bundles additionally include the Theorem 2 side conditions for the
single-round system: non-blocking and fair termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.system import SystemModel
from repro.errors import CheckError
from repro.spec.properties import PropertyLibrary
from repro.spec.queries import GameQuery, ReachQuery


@dataclass(frozen=True)
class ObligationSet:
    """Everything to discharge for one protocol and one consensus property."""

    protocol: str
    #: "agreement" | "validity" | "termination"
    target: str
    reach_queries: Tuple[ReachQuery, ...] = ()
    game_queries: Tuple[GameQuery, ...] = ()
    #: names of Theorem 2 side conditions to establish once per protocol
    side_conditions: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.reach_queries) + len(self.game_queries)


def agreement_obligations(model: SystemModel) -> ObligationSet:
    """Inv1 for both values (Proposition 1)."""
    lib = PropertyLibrary(model)
    return ObligationSet(
        protocol=model.name,
        target="agreement",
        reach_queries=lib.agreement_queries(),
        side_conditions=("non_blocking", "fair_termination"),
    )


def validity_obligations(model: SystemModel) -> ObligationSet:
    """Inv2 for both values (Proposition 1)."""
    lib = PropertyLibrary(model)
    return ObligationSet(
        protocol=model.name,
        target="validity",
        reach_queries=lib.validity_queries(),
        side_conditions=("non_blocking", "fair_termination"),
    )


def termination_obligations(model: SystemModel) -> ObligationSet:
    """The category-specific A.S.-termination bundle (§V-B)."""
    lib = PropertyLibrary(model)
    category = model.category
    if category == "A":
        return ObligationSet(
            protocol=model.name,
            target="termination",
            reach_queries=(lib.c2(0), lib.c2(1)),
            game_queries=(lib.c1(),),
            side_conditions=("non_blocking", "fair_termination"),
        )
    if category == "B":
        return ObligationSet(
            protocol=model.name,
            target="termination",
            game_queries=(lib.c1(), lib.c2prime(0), lib.c2prime(1)),
            side_conditions=("non_blocking", "fair_termination"),
        )
    if category == "C":
        return ObligationSet(
            protocol=model.name,
            target="termination",
            reach_queries=lib.binding_queries(),
            game_queries=(lib.c2prime(0), lib.c2prime(1)),
            side_conditions=("non_blocking", "fair_termination"),
        )
    raise CheckError(
        f"{model.name}: protocol has no termination category "
        f"(got {category!r}); cannot build termination obligations"
    )


def obligations_for(model: SystemModel, target: str) -> ObligationSet:
    """Dispatch by target: agreement / validity / termination."""
    if target == "agreement":
        return agreement_obligations(model)
    if target == "validity":
        return validity_obligations(model)
    if target == "termination":
        return termination_obligations(model)
    raise CheckError(f"unknown verification target {target!r}")
