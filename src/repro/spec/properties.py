"""The paper's property library (Table III and §V).

:class:`PropertyLibrary` derives, from a protocol's
:class:`~repro.core.system.SystemModel`, the location sets
``I_v, B_v, F_v, D_v, E_v`` (and the crusader sets ``M``/``N`` for
category (C)) and builds the paper's proof obligations:

* round invariants **Inv1**, **Inv2** (⇒ Agreement, Validity —
  Proposition 1);
* termination conditions **C1**, **C2**, **C2′** (Propositions 2, 3);
* binding conditions **CB0–CB4** (Propositions 4, 5, run on the
  Fig. 6-refined model).

Formulas are rendered in the exact shorthand of Table III, e.g.::

    (Inv1)  A F (EX{D0}) → G (¬EX{E1, D1})
    (Inv2)  A ALL{I0} → G (¬EX{E1, D1})
    (C1)    A F (EX{D0, E0}) → G (¬EX{D1, E1})
    (CB0)   A F (EX{M0}) → G (¬EX{M1})
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.locations import LocKind
from repro.core.system import SystemModel
from repro.errors import CheckError
from repro.spec.propositions import Prop, some_at
from repro.spec.queries import GameQuery, ReachQuery


class PropertyLibrary:
    """Builds the paper's verification queries for one protocol model."""

    def __init__(self, model: SystemModel):
        self.model = model
        process = model.process
        self._initial: Dict[int, Tuple[str, ...]] = {}
        self._final: Dict[int, Tuple[str, ...]] = {}
        self._decision: Dict[int, Tuple[str, ...]] = {}
        for v in (0, 1):
            self._initial[v] = tuple(
                loc.name for loc in process.locations_of(LocKind.INITIAL, value=v)
            )
            self._final[v] = tuple(
                loc.name for loc in process.locations_of(LocKind.FINAL, value=v)
            )
            self._decision[v] = tuple(
                loc.name
                for loc in process.locations_of(LocKind.FINAL, value=v, decision=True)
            )
        borders = process.locations_of(LocKind.BORDER)
        self._start_by_value: Dict[int, Tuple[str, ...]] = {}
        start_pool = borders if borders else process.locations_of(LocKind.INITIAL)
        for v in (0, 1):
            self._start_by_value[v] = tuple(
                loc.name for loc in start_pool if loc.value == v
            )

    # ------------------------------------------------------------------
    # Location sets
    # ------------------------------------------------------------------
    def initial_locs(self, value: int) -> Tuple[str, ...]:
        """``I_v``."""
        return self._initial[value]

    def final_locs(self, value: int) -> Tuple[str, ...]:
        """``F_v``."""
        return self._final[value]

    def decision_locs(self, value: int) -> Tuple[str, ...]:
        """``D_v``."""
        return self._decision[value]

    def estimate_locs(self, value: int) -> Tuple[str, ...]:
        """``E_v = F_v \\ D_v`` — finals that did not decide."""
        decisions = set(self._decision[value])
        return tuple(name for name in self._final[value] if name not in decisions)

    def undecided_finals(self, value: int) -> Tuple[str, ...]:
        """``F \\ D_v`` — every final except the ``v`` decisions."""
        result = list(self.estimate_locs(0)) + list(self.estimate_locs(1))
        result += list(self._decision[1 - value])
        return tuple(result)

    def crusader(self, role: str) -> str:
        """Name of a crusader location (``M0``/``M1``/``Mbot``/``N*``)."""
        try:
            return self.model.crusader_locations[role]
        except KeyError:
            raise CheckError(
                f"{self.model.name}: model does not define crusader location "
                f"{role!r} (category-C queries need the refined model)"
            ) from None

    def all_start_with(self, value: int) -> Dict[str, int]:
        """Init filter pinning every process to start with ``value``."""
        return {name: 0 for name in self._start_by_value[1 - value]}

    # ------------------------------------------------------------------
    # Safety: round invariants
    # ------------------------------------------------------------------
    def inv1(self, value: int) -> ReachQuery:
        """(Inv1): a ``v`` decision forbids any ``1-v`` final, same round."""
        dv = self._decision[value]
        other = self._final[1 - value]
        return ReachQuery(
            name=f"inv1[{value}]",
            formula=(
                f"A F (EX{{{', '.join(dv)}}}) → "
                f"G (¬EX{{{', '.join(other)}}})"
            ),
            events=(some_at(*dv), some_at(*other)),
            note="round invariant 1 (Agreement via Proposition 1)",
        )

    def inv2(self, value: int) -> ReachQuery:
        """(Inv2): all start ``v`` ⇒ none ends ``1-v`` in that round."""
        other = self._final[1 - value]
        start = self._initial[value]
        return ReachQuery(
            name=f"inv2[{value}]",
            formula=(
                f"A ALL{{{', '.join(start)}}} → "
                f"G (¬EX{{{', '.join(other)}}})"
            ),
            events=(some_at(*other),),
            init_filter=self.all_start_with(value),
            note="round invariant 2 (Validity via Proposition 1)",
        )

    def agreement_queries(self) -> Tuple[ReachQuery, ...]:
        return (self.inv1(0), self.inv1(1))

    def validity_queries(self) -> Tuple[ReachQuery, ...]:
        return (self.inv2(0), self.inv2(1))

    # ------------------------------------------------------------------
    # Termination conditions
    # ------------------------------------------------------------------
    def c1(self) -> GameQuery:
        """(C1): positive-probability lower bound on a uniform round end.

        Via Lemma 2 this is the E-query "for every round-rigid adversary
        some coin resolution ends the round uniform"; its violation is
        an adversary strategy forcing both values into final locations
        against every coin outcome.
        """
        f0, f1 = self._final[0], self._final[1]
        return GameQuery(
            name="c1",
            formula=(
                f"A F (EX{{{', '.join(f0)}}}) → G (¬EX{{{', '.join(f1)}}})"
            ),
            events=(some_at(*f0), some_at(*f1)),
            note="termination condition C1 (probability bound, Lemma 2)",
        )

    def c2(self, value: int) -> ReachQuery:
        """(C2): uniform start stays uniform (category-A protocols)."""
        query = self.inv2(value)
        return ReachQuery(
            name=f"c2[{value}]",
            formula=query.formula,
            events=query.events,
            init_filter=query.init_filter,
            note="termination condition C2 (same formula as Inv2)",
        )

    def c2prime(self, value: int) -> GameQuery:
        """(C2′): uniform start ⇒ all decide ``v`` with positive probability.

        Violation: an adversary strategy that, from an all-``v`` start,
        forces some process to finish without deciding ``v`` no matter
        how the coin falls.
        """
        bad = self.undecided_finals(value)
        start = self._initial[value]
        return GameQuery(
            name=f"c2'[{value}]",
            formula=(
                f"A ALL{{{', '.join(start)}}} → "
                f"G (¬EX{{{', '.join(bad)}}})"
            ),
            events=(some_at(*bad),),
            init_filter=self.all_start_with(value),
            note="termination condition C2' (probabilistic decide, Lemma 2)",
        )

    # ------------------------------------------------------------------
    # Binding conditions (category C)
    # ------------------------------------------------------------------
    def cb(self, index: int) -> ReachQuery:
        """(CB0)–(CB4) from §V-B (need the Fig. 6-refined model)."""
        m0, m1 = self.crusader("M0"), self.crusader("M1")
        if index == 0:
            first, second, label = m0, (m1,), "M0 then never M1"
        elif index == 1:
            first, second, label = m1, (m0,), "M1 then never M0"
        elif index == 2:
            first, second, label = self.crusader("N0"), (m1,), "N0 then never M1"
        elif index == 3:
            first, second, label = self.crusader("N1"), (m0,), "N1 then never M0"
        elif index == 4:
            first, second, label = self.crusader("Nbot"), (m0, m1), (
                "Nbot then never M0/M1"
            )
        else:
            raise CheckError(f"no binding condition CB{index}")
        return ReachQuery(
            name=f"cb{index}",
            formula=(
                f"A F (EX{{{first}}}) → G (¬EX{{{', '.join(second)}}})"
            ),
            events=(some_at(first), some_at(*second)),
            note=f"binding condition CB{index} ({label})",
        )

    def binding_queries(self) -> Tuple[ReachQuery, ...]:
        return tuple(self.cb(i) for i in range(5))
