"""Atomic propositions over location counters.

The paper's Table III uses two shorthands over a location set ``S``:

* ``EX{S}`` — at least one automaton is in a location of ``S``
  (``∨_{ℓ∈S} κ[ℓ] ≠ 0``);
* ``ALL{S}`` — all automata are inside ``S``
  (``∧_{ℓ∈L\\S} κ[ℓ] = 0``).

Both are instances of two linear atoms closed under negation:

* :func:`some_at` — ``Σ_{ℓ∈S} κ[ℓ] >= bound``;
* :func:`none_at` — ``Σ_{ℓ∈S} κ[ℓ] = 0``.

``ALL{S}`` is encoded as ``none_at(complement of S)`` by the property
builders, which know the relevant location universe (the process
automaton's locations — the coin automaton never counts as a process).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Tuple


class PropKind(enum.Enum):
    #: Sum of the counters over ``locations`` is at least ``bound``.
    SOME = "some"
    #: Sum of the counters over ``locations`` equals zero.
    NONE = "none"


@dataclass(frozen=True)
class Prop:
    """A linear atomic proposition over round-local location counters."""

    kind: PropKind
    locations: Tuple[str, ...]
    bound: int = 1

    def __post_init__(self) -> None:
        if self.kind is PropKind.SOME and self.bound < 1:
            raise ValueError("SOME propositions need a bound >= 1")

    # ------------------------------------------------------------------
    def holds(self, system, config, round_no: int = 0) -> bool:
        """Evaluate against an explicit configuration.

        ``system`` is a :class:`repro.counter.system.CounterSystem`
        providing the location index.
        """
        total = 0
        for name in self.locations:
            total += config.counter(round_no, system.loc_index[name])
        if self.kind is PropKind.SOME:
            return total >= self.bound
        return total == 0

    def compile(self, system, round_no: int = 0) -> "Callable[[object], bool]":
        """Compile to an index-based closure over the flat state layout.

        Resolves the location names against ``system``'s index maps
        *once* and returns a predicate reading absolute offsets out of
        ``config.data`` — the explicit checker evaluates events on every
        successor state, so per-call name lookups dominate otherwise.
        The closure assumes configurations produced by ``system`` (same
        flat block layout) and tracking at least ``round_no + 1``
        rounds, which holds for every reachable state the checker
        feeds it.
        """
        offsets = tuple(
            round_no * system.block + system.loc_index[name]
            for name in self.locations
        )
        if self.kind is PropKind.SOME:
            bound = self.bound
            if len(offsets) == 1:
                only = offsets[0]

                def holds_some_one(config) -> bool:
                    return config.data[only] >= bound

                return holds_some_one

            def holds_some(config) -> bool:
                data = config.data
                total = 0
                for offset in offsets:
                    total += data[offset]
                return total >= bound

            return holds_some

        def holds_none(config) -> bool:
            data = config.data
            for offset in offsets:
                if data[offset]:
                    return False
            return True

        return holds_none

    def negated(self) -> "Prop":
        """Logical negation — stays within the two-atom fragment.

        ``¬(Σ >= 1)`` is ``Σ = 0`` and vice versa; bounds > 1 negate to
        ``Σ <= bound - 1``, which the fragment only supports for
        ``bound == 1`` (the only case the paper's formulas need).
        """
        if self.kind is PropKind.SOME:
            if self.bound != 1:
                raise ValueError("cannot negate SOME with bound > 1 in fragment")
            return Prop(PropKind.NONE, self.locations)
        return Prop(PropKind.SOME, self.locations, 1)

    def __str__(self) -> str:
        inner = ", ".join(self.locations)
        if self.kind is PropKind.SOME:
            if self.bound == 1:
                return f"EX{{{inner}}}"
            return f"#[{inner}] >= {self.bound}"
        return f"¬EX{{{inner}}}"


def some_at(*locations: str, bound: int = 1) -> Prop:
    """``Σ κ[ℓ] >= bound`` over the given locations (default: EX)."""
    return Prop(PropKind.SOME, tuple(locations), bound)


def none_at(*locations: str) -> Prop:
    """``Σ κ[ℓ] = 0`` over the given locations (i.e. ``¬EX{S}``)."""
    return Prop(PropKind.NONE, tuple(locations))
