"""Verification query shapes (§V of the paper).

Every proof obligation the paper discharges with ByMC reduces to one of
two shapes over the single-round system:

* :class:`ReachQuery` — an **A-query**: a non-probabilistic formula
  ``A(F p → G q)`` or ``A(init-premise → G q)``.  Its *violation* is a
  finite schedule that witnesses every *event* in :attr:`events` (in any
  order), starting from an initial configuration allowed by
  :attr:`init_filter`.  All safety conditions (Inv1, Inv2, C2,
  CB0–CB4) are A-queries.

* :class:`GameQuery` — an **E-query** arising from Lemma 2:
  ``∀ adversary ∃ path ⊨ φ``.  Its violation is an adversary *strategy*
  that forces every event in :attr:`events` against all resolutions of
  the coin's probabilistic branches.  The probabilistic termination
  conditions (C1, C2′) are E-queries.

``init_filter`` pins the number of processes placed in given start
locations (e.g. ``{"J1": 0}`` models the premise "no correct process
starts the round with estimate 1").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.spec.propositions import Prop


@dataclass(frozen=True)
class ReachQuery:
    """An A-query; violated by a multi-event reachability witness."""

    name: str
    formula: str
    events: Tuple[Prop, ...]
    init_filter: Optional[Dict[str, int]] = None
    #: Human note, e.g. which paper property this discharges.
    note: str = ""

    def __str__(self) -> str:
        return f"{self.name}: {self.formula}"


@dataclass(frozen=True)
class GameQuery:
    """An E-query; violated by a coin-proof adversary strategy."""

    name: str
    formula: str
    events: Tuple[Prop, ...]
    init_filter: Optional[Dict[str, int]] = None
    note: str = ""

    def __str__(self) -> str:
        return f"{self.name}: {self.formula}"


def implication_formula(premise: str, conclusion: str) -> str:
    """Pretty ``A premise → conclusion`` string in the paper's style."""
    return f"A {premise} → {conclusion}"
