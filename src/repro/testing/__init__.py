"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection layer
behind the chaos suite: a seeded, picklable
:class:`~repro.testing.faults.FaultPlan` installed in sweep workers via
the pool initializer can kill a worker as it picks up a task, hang a
task past the supervisor timeout, inject ``OSError``/delays into
:class:`~repro.counter.store.GraphStore` / :class:`~repro.api.sweep.
ResultCache` I/O, and corrupt a graph segment's checksummed body.

It lives under ``src`` (not ``tests/``) because the hooks it drives are
compiled into the production I/O paths — a plan must be importable by
pool workers wherever the package is installed — and because operators
can use it to rehearse failure drills against a real deployment.  With
no plan installed every hook is a no-op costing one module-global
``None`` check.
"""

from repro.testing.faults import FaultPlan, FaultRule

__all__ = ["FaultPlan", "FaultRule"]
