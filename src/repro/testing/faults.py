"""Deterministic fault injection for chaos-testing sweeps.

The substrate of the standing chaos suite
(``tests/api/test_sweep_faults.py``): a :class:`FaultPlan` is a plain,
picklable value describing *which* failures to inject *where* —
installed process-wide by :func:`install` (the sweep runner does this
in pool workers via its initializer, never in the supervisor process,
which must survive to observe the failure).  Production code calls the
two hook functions at its I/O boundaries:

* :func:`fire` — may kill the calling process, sleep (hang/delay), or
  raise ``OSError``;
* :func:`transform` — may corrupt a byte blob (flip its last byte, so
  a checksummed graph segment fails verification on load).

With no plan installed both are no-ops guarded by a single module-
global ``None`` check, so the hooks are free on the happy path.

Determinism
-----------
A rule fires on the *nth* matching hit and at most ``times`` times.
Hit counting is either per-process (``scope="worker"``: each pool
worker counts its own hits — "kill a worker on its Nth task") or
global across every process of a sweep (``scope="global"``): global
hits are claimed through atomic ``O_CREAT | O_EXCL`` marker files
under the plan's ``scratch`` directory, so exactly one process
observes hit *k* no matter how many race for it, and a respawned
worker never re-fires a trigger that already fired — which is what
lets a chaos sweep with kills and hangs *terminate* with bit-identical
verdicts instead of crash-looping.  ``seed`` namespaces the markers,
so two plans may share one scratch directory.

Hook points wired into the code base::

    worker.task              detail=task_id   (supervised pool worker,
                                               before running a task)
    graph_store.load         detail=entry key (GraphStore.load_into)
    graph_store.flush        detail=entry key (GraphStore.flush; also
                                               the ``corrupt`` point)
    result_cache.get         detail=entry key (ResultCache.get)
    result_cache.put         detail=entry key (ResultCache.put)

Every store/cache hook sits *inside* the surrounding best-effort
``try`` block, so an injected ``OSError`` exercises exactly the
recorded-miss-not-crash contract the real failure would.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "FaultPlan",
    "FaultRule",
    "active",
    "fire",
    "install",
    "transform",
]

#: Actions :func:`fire` understands (``corrupt`` goes via :func:`transform`).
ACTIONS = ("kill", "hang", "delay", "oserror", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One injected failure: *what* happens *where*, and *when*.

    Attributes:
        point: hook name this rule listens on (see the module doc).
        action: ``"kill"`` (SIGKILL the calling process), ``"hang"`` /
            ``"delay"`` (sleep ``seconds`` — hang long enough for the
            supervisor timeout, delay briefly), ``"oserror"`` (raise
            ``OSError``), or ``"corrupt"`` (flip the blob's last byte;
            only consulted by :func:`transform`).
        match: substring the hook's ``detail`` must contain ("" = any).
        nth: fire on the nth *matching* hit (1-based).
        times: how many consecutive hits fire (0 = every hit >= nth).
        seconds: sleep duration for ``hang`` / ``delay``.
        scope: ``"global"`` (hits counted across all processes via the
            plan's scratch markers) or ``"worker"`` (each process
            counts privately).
    """

    point: str
    action: str
    match: str = ""
    nth: int = 1
    times: int = 1
    seconds: float = 60.0
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.scope not in ("global", "worker"):
            raise ValueError(f"unknown fault scope {self.scope!r}")

    def fires_on(self, hit: int) -> bool:
        if hit < self.nth:
            return False
        return not self.times or hit < self.nth + self.times

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "action": self.action,
            "match": self.match,
            "nth": self.nth,
            "times": self.times,
            "seconds": self.seconds,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            point=data["point"],
            action=data["action"],
            match=data.get("match", ""),
            nth=int(data.get("nth", 1)),
            times=int(data.get("times", 1)),
            seconds=float(data.get("seconds", 60.0)),
            scope=data.get("scope", "global"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultRule`\\ s plus shared scratch state.

    ``scratch`` is a directory (created on demand) holding the atomic
    hit markers of every ``scope="global"`` rule; it must be shared by
    all processes of the sweep under test (a pytest ``tmp_path`` is
    perfect).  ``seed`` namespaces the markers so plans can share a
    scratch directory — and is folded into nothing else, keeping plans
    deterministic by construction rather than by sampling.
    """

    rules: Tuple[FaultRule, ...] = ()
    scratch: str = ""
    seed: int = 0

    # -- convenience builders (each returns a new plan) ---------------
    def _with(self, rule: FaultRule) -> "FaultPlan":
        return FaultPlan(self.rules + (rule,), self.scratch, self.seed)

    def kill_task(self, match: str, nth: int = 1, times: int = 1,
                  scope: str = "global") -> "FaultPlan":
        """SIGKILL the worker as it picks up a matching task."""
        return self._with(FaultRule("worker.task", "kill", match, nth,
                                    times, scope=scope))

    def hang_task(self, match: str, seconds: float = 60.0,
                  times: int = 1) -> "FaultPlan":
        """Stall a matching task well past any supervisor timeout."""
        return self._with(FaultRule("worker.task", "hang", match, 1,
                                    times, seconds))

    def break_io(self, point: str, match: str = "", times: int = 1,
                 nth: int = 1) -> "FaultPlan":
        """Raise ``OSError`` from a store/cache hook point."""
        return self._with(FaultRule(point, "oserror", match, nth, times))

    def delay_io(self, point: str, seconds: float, match: str = "",
                 times: int = 1) -> "FaultPlan":
        """Sleep inside a store/cache hook point."""
        return self._with(FaultRule(point, "delay", match, 1, times,
                                    seconds))

    def corrupt_segment(self, match: str = "", nth: int = 1,
                        times: int = 1) -> "FaultPlan":
        """Flip a byte of a flushed graph segment (checksum breaks)."""
        return self._with(FaultRule("graph_store.flush", "corrupt",
                                    match, nth, times))

    # -- JSON round trip (``harness serve --fault-plan FILE``) --------
    def to_dict(self) -> dict:
        """JSON form, so a plan can cross a process boundary as a file
        (the service daemon loads one at startup for chaos drills)."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "scratch": self.scratch,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule) for rule in data.get("rules", [])
            ),
            scratch=data.get("scratch", ""),
            seed=int(data.get("seed", 0)),
        )


# ----------------------------------------------------------------------
# Process-wide installation + hit counting
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
#: Per-process hit counters, keyed by rule index (``scope="worker"``).
_WORKER_HITS: Dict[int, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-wide plan."""
    global _ACTIVE
    _ACTIVE = plan
    _WORKER_HITS.clear()


def active() -> Optional[FaultPlan]:
    """The currently-installed plan, or None."""
    return _ACTIVE


def _claim_hit(plan: FaultPlan, rule_index: int, rule: FaultRule) -> int:
    """The 1-based hit number this event is, within the rule's scope.

    Global hits are claimed via ``O_CREAT | O_EXCL`` marker files:
    exactly one process wins marker *k*, so the numbering is a total
    order across every worker of the sweep — and survives worker
    respawns, because the markers outlive the processes.
    """
    if rule.scope == "worker":
        _WORKER_HITS[rule_index] = _WORKER_HITS.get(rule_index, 0) + 1
        return _WORKER_HITS[rule_index]
    root = Path(plan.scratch or ".")
    root.mkdir(parents=True, exist_ok=True)
    k = 0
    while True:
        marker = root / f"fault-{plan.seed}-r{rule_index}-hit{k}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            k += 1
            continue
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return k + 1


def _matching(point: str, detail: str):
    plan = _ACTIVE
    if plan is None:
        return
    for index, rule in enumerate(plan.rules):
        if rule.point != point:
            continue
        if rule.match and rule.match not in detail:
            continue
        yield index, rule


def fire(point: str, detail: str = "") -> None:
    """Run every matching non-``corrupt`` rule's action at this point.

    No-op without an installed plan.  ``kill`` never returns;
    ``oserror`` raises (callers place the hook inside their existing
    best-effort handling, so injection exercises the same path a real
    failure would); ``hang`` / ``delay`` sleep and return.
    """
    plan = _ACTIVE
    if plan is None:
        return
    for index, rule in _matching(point, detail):
        if rule.action == "corrupt":
            continue
        if not rule.fires_on(_claim_hit(plan, index, rule)):
            continue
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.action in ("hang", "delay"):
            time.sleep(rule.seconds)
        elif rule.action == "oserror":
            raise OSError(
                f"injected fault at {point}"
                + (f" ({detail})" if detail else "")
            )


def transform(point: str, detail: str, blob: bytes) -> bytes:
    """Apply matching ``corrupt`` rules to ``blob`` (identity otherwise)."""
    plan = _ACTIVE
    if plan is None:
        return blob
    for index, rule in _matching(point, detail):
        if rule.action != "corrupt":
            continue
        if rule.fires_on(_claim_hit(plan, index, rule)) and blob:
            blob = blob[:-1] + bytes([blob[-1] ^ 0xFF])
    return blob
