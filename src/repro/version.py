"""Source-tree version digest shared by every on-disk cache.

Both persistent caches — the sweep runner's :class:`~repro.api.sweep.
ResultCache` and the counter engine's :class:`~repro.counter.store.
GraphStore` — key their entries by a digest of every ``repro`` source
file, so *any* engine change invalidates everything that could have
been computed differently.  The digest lives here, below both users,
because the graph store sits in :mod:`repro.counter` and must not
import :mod:`repro.api` (which imports the checkers, which import the
counter engine).

Computed at most once per process: pool workers are seeded with the
parent's digest through :func:`seed_code_version`, so a sweep never
re-hashes the source tree once per worker start.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

__all__ = ["code_version", "seed_code_version", "stable_digest"]


def stable_digest(data: Union[bytes, str], length: int = 16) -> str:
    """Truncated sha256 hex digest of ``data`` (str is UTF-8 encoded).

    The one keying primitive every on-disk cache shares: stable across
    processes and ``PYTHONHASHSEED`` values (unlike ``hash()``, which is
    salted), so two fleet members derive identical entry keys from
    identical identities.
    """
    if isinstance(data, str):
        data = data.encode()
    return hashlib.sha256(data).hexdigest()[:length]

#: Memoised source-tree digest; workers inherit the parent's value via
#: the pool initializer instead of re-hashing the tree per process.
_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (the caches' version key)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def seed_code_version(version: str) -> None:
    """Adopt a precomputed source digest (pool-worker initializer)."""
    global _CODE_VERSION
    _CODE_VERSION = version
