"""The ``python -m repro.harness cache {info,prune,clear}`` subcommand."""

import json
import os
import time

import pytest

from repro import api
from repro.counter.store import GraphStore
from repro.counter.system import CounterSystem, clear_shared_caches
from repro.harness.__main__ import main
from repro.protocols import ks16


def _age(path, seconds=3600):
    ancient = time.time() - seconds
    os.utime(path, (ancient, ancient))


@pytest.fixture
def populated(tmp_path):
    """A cache root holding results, one graph, and crashed-writer orphans."""
    clear_shared_caches()
    api.sweep(protocols=("cc85a",), targets=("validity",),
              cache_dir=str(tmp_path), graph_store=str(tmp_path / "graphs"))
    for orphan in (tmp_path / "leftover.json.1.aa.tmp",
                   tmp_path / "graphs" / "leftover.graph.2.bb.tmp"):
        orphan.write_bytes(b"{")
        _age(orphan)
    return tmp_path


def _run(capsys, *argv) -> str:
    assert main(["harness", *argv]) == 0
    return capsys.readouterr().out


class TestInfo:
    def test_info_reports_entries_and_orphans(self, populated, capsys):
        out = _run(capsys, "cache", "info", "--dir", str(populated))
        assert "result entries      1" in out
        assert "graph entries       1" in out
        assert "temp orphans        2" in out
        assert "cc85a" in out  # the per-graph header line
        assert "0 stale" in out

    def test_info_counts_stale_versions(self, populated, capsys):
        store = GraphStore(populated / "graphs", version="0ld0ld0ld0ld0ld0")
        system = CounterSystem(ks16.model(), {"n": 4, "t": 1, "f": 1})
        system.successor_groups(next(system.initial_configs()))
        assert store.flush(system)
        out = _run(capsys, "cache", "info", "--dir", str(populated))
        assert "graph entries       2" in out
        assert "1 stale" in out
        assert "[stale]" in out

    def test_info_on_missing_dir_is_fine(self, tmp_path, capsys):
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path / "nope"))
        assert "result entries      0" in out

    def test_info_and_prune_survive_non_object_json_entry(self, tmp_path, capsys):
        # A key-shaped entry whose JSON parses to a *list* must read as
        # unversioned (stale), not crash the maintenance commands.
        (tmp_path / ("b2" * 16 + ".json")).write_text("[1, 2]")
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "1 stale" in out
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 1 of 1" in out

    def test_info_survives_corrupt_graph_header(self, tmp_path, capsys):
        # A .graph whose header line parses to non-dict JSON (or is
        # binary garbage) must be counted but never described/crash.
        (tmp_path / "evil-aaaa-bbbb-cccc.graph").write_bytes(
            b"repro-graph 1 [1, 2]\njunk")
        (tmp_path / "junk-aaaa-bbbb-cccc.graph").write_bytes(b"\x00\x01")
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "graph entries       2" in out


class TestPrune:
    def test_prune_drops_orphans_and_stale_only(self, populated, capsys):
        # Add one stale-version entry of each kind.
        stale_result = populated / ("0" * 32 + ".json")
        stale_result.write_text(json.dumps(
            {"task_id": "t", "protocol": "p", "engine": "explicit",
             "_code_version": "0ld"}))
        out = _run(capsys, "cache", "prune", "--dir", str(populated))
        assert "removed 3 of 3" in out
        # Fresh entries survive and still serve hits.
        clear_shared_caches()
        report = api.sweep(protocols=("cc85a",), targets=("validity",),
                           cache_dir=str(populated),
                           graph_store=str(populated / "graphs"))
        assert report.cache_hits == 1

    def test_prune_drops_unversioned_results(self, tmp_path, capsys):
        (tmp_path / ("a1" * 16 + ".json")).write_text('{"task_id": "t"}')
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 1 of 1" in out

    def test_non_cache_json_is_never_touched(self, tmp_path, capsys):
        # A saved sweep report (or any other JSON) living in the cache
        # root is not a cache entry: info must not count it, and
        # prune/clear must not delete it.
        report = tmp_path / "report.json"
        report.write_text('{"results": []}')
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "result entries      0" in out
        _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        _run(capsys, "cache", "clear", "--dir", str(tmp_path))
        assert report.exists()

    def test_prune_spares_a_live_writers_temp_file(self, tmp_path, capsys):
        live = tmp_path / "entry.json.77.cc.tmp"
        live.write_text("{")  # fresh mtime: a writer mid-flush
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 0 of 0" in out
        assert live.exists()


class TestClear:
    def test_clear_removes_everything(self, populated, capsys):
        _run(capsys, "cache", "clear", "--dir", str(populated))
        leftovers = [p for p in populated.rglob("*") if p.is_file()]
        assert leftovers == []


class TestServiceFiles:
    """The daemon's journal + state breadcrumb under maintenance."""

    @pytest.fixture
    def with_service_state(self, tmp_path):
        from repro.service.registry import (
            SERVICE_JOURNAL_NAME, ServiceJournal, write_state_file,
        )

        journal = ServiceJournal(tmp_path / SERVICE_JOURNAL_NAME,
                                 api.code_version())
        journal.load()
        journal.append("k", "task", {"task_id": "t", "verdict": "holds",
                                     "error": ""})
        journal.close()
        write_state_file(tmp_path, {"pid": 4242, "host": "127.0.0.1",
                                    "port": 8123, "processes": 2})
        return tmp_path

    def test_info_reports_service_files_and_daemon(self, with_service_state,
                                                   capsys):
        out = _run(capsys, "cache", "info", "--dir", str(with_service_state))
        assert "service files       2" in out
        assert ("daemon pid 4242 on 127.0.0.1:8123 (2 workers) — "
                "running or unclean shutdown") in out

    def test_prune_spares_service_files(self, with_service_state, capsys):
        # A running (or resumable) daemon's files are never prune fodder.
        _run(capsys, "cache", "prune", "--dir", str(with_service_state))
        leftovers = {p.name for p in with_service_state.iterdir()}
        assert leftovers == {"service-journal.jsonl", "service-state.json"}

    def test_clear_removes_service_files(self, with_service_state, capsys):
        out = _run(capsys, "cache", "clear", "--dir", str(with_service_state))
        assert "removed 2 of 2" in out
        assert [p for p in with_service_state.rglob("*") if p.is_file()] == []


def _segmented_store(root, segments=3):
    """A graph key with several delta segments under ``root``."""
    store = GraphStore(root, version=api.code_version())
    system = CounterSystem(ks16.model(), {"n": 4, "t": 1, "f": 1})
    frontier = list(system.initial_configs())
    seen = set(frontier)
    for step in range(segments):
        limit = 40 * (step + 1)
        while frontier and len(seen) < limit:
            config = frontier.pop()
            system.rule_options(config)
            for group in system.successor_groups(config):
                for _action, successor in group:
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
        assert store.flush(system)
    return store


class TestCompact:
    def test_compact_squashes_dir_segments(self, tmp_path, capsys):
        store = _segmented_store(tmp_path / "graphs")
        key = store.backend.keys()[0]
        assert store.backend.stats()[key][0] == 3
        out = _run(capsys, "cache", "compact", "--dir", str(tmp_path))
        assert "1 of 1 keys squashed" in out
        assert "3 -> 1 segments" in out
        assert store.backend.stats()[key][0] == 1

    def test_compact_of_empty_root_is_fine(self, tmp_path, capsys):
        out = _run(capsys, "cache", "compact", "--dir", str(tmp_path))
        assert "0 of 0 keys" in out


class TestSQLiteMaintenance:
    @pytest.fixture
    def spec(self, tmp_path):
        return f"sqlite:{tmp_path / 'graphs.db'}"

    def _populate(self, spec, version=None):
        store = GraphStore(spec, version=version or api.code_version())
        system = CounterSystem(ks16.model(), {"n": 4, "t": 1, "f": 1})
        system.successor_groups(next(system.initial_configs()))
        assert store.flush(system)
        return store

    def test_info_lists_keys_and_stale(self, spec, capsys):
        self._populate(spec)
        self._populate(spec, version="0ld0ld0ld0ld0ld0")
        out = _run(capsys, "cache", "info", "--dir", spec)
        assert "graph keys          2" in out
        assert "1 stale" in out
        assert "[stale]" in out
        assert "ks16" in out

    def test_prune_drops_stale_versions_only(self, spec, capsys):
        fresh = self._populate(spec)
        self._populate(spec, version="0ld0ld0ld0ld0ld0")
        out = _run(capsys, "cache", "prune", "--dir", spec)
        assert "1 keys" in out
        assert len(fresh.backend.keys()) == 1

    def test_info_on_missing_store_does_not_create_it(self, tmp_path, capsys):
        # Maintenance is read-only diagnostics: a typo'd path must not
        # silently materialise an empty database file.
        path = tmp_path / "nope.db"
        out = _run(capsys, "cache", "info", "--dir", f"sqlite:{path}")
        assert "no such store" in out
        assert not path.exists()

    def test_non_database_file_is_a_diagnostic_not_a_traceback(
        self, tmp_path, capsys
    ):
        junk = tmp_path / "junk.db"
        junk.write_text("this is not a database")
        assert main(["harness", "cache", "info",
                     "--dir", f"sqlite:{junk}"]) == 1
        assert "unreadable" in capsys.readouterr().out

    def test_foreign_database_is_refused_and_left_untouched(
        self, tmp_path, capsys
    ):
        # A real SQLite database belonging to some other application
        # must be refused read-only: no segments table/index creation,
        # no journal-mode switch.
        import sqlite3

        foreign = tmp_path / "app.db"
        conn = sqlite3.connect(foreign)
        conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        before = foreign.read_bytes()
        for action in ("info", "prune", "compact", "clear"):
            assert main(["harness", "cache", action,
                         "--dir", f"sqlite:{foreign}"]) == 1
            assert "not a graph store" in capsys.readouterr().out
        assert foreign.read_bytes() == before, "foreign database mutated"
        assert not (tmp_path / "app.db-wal").exists()

    def test_compact_and_clear(self, spec, capsys):
        store = _segmented_store(spec)
        out = _run(capsys, "cache", "compact", "--dir", spec)
        assert "1 of 1 keys squashed" in out
        key = store.backend.keys()[0]
        assert store.backend.stats()[key][0] == 1
        _run(capsys, "cache", "clear", "--dir", spec)
        assert store.backend.keys() == []
