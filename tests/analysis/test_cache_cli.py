"""The ``python -m repro.harness cache {info,prune,clear}`` subcommand."""

import json
import os
import time

import pytest

from repro import api
from repro.counter.store import GraphStore
from repro.counter.system import CounterSystem, clear_shared_caches
from repro.harness.__main__ import main
from repro.protocols import ks16


def _age(path, seconds=3600):
    ancient = time.time() - seconds
    os.utime(path, (ancient, ancient))


@pytest.fixture
def populated(tmp_path):
    """A cache root holding results, one graph, and crashed-writer orphans."""
    clear_shared_caches()
    api.sweep(protocols=("cc85a",), targets=("validity",),
              cache_dir=str(tmp_path), graph_store=str(tmp_path / "graphs"))
    for orphan in (tmp_path / "leftover.json.1.aa.tmp",
                   tmp_path / "graphs" / "leftover.graph.2.bb.tmp"):
        orphan.write_bytes(b"{")
        _age(orphan)
    return tmp_path


def _run(capsys, *argv) -> str:
    assert main(["harness", *argv]) == 0
    return capsys.readouterr().out


class TestInfo:
    def test_info_reports_entries_and_orphans(self, populated, capsys):
        out = _run(capsys, "cache", "info", "--dir", str(populated))
        assert "result entries      1" in out
        assert "graph entries       1" in out
        assert "temp orphans        2" in out
        assert "cc85a" in out  # the per-graph header line
        assert "0 stale" in out

    def test_info_counts_stale_versions(self, populated, capsys):
        store = GraphStore(populated / "graphs", version="0ld0ld0ld0ld0ld0")
        system = CounterSystem(ks16.model(), {"n": 4, "t": 1, "f": 1})
        system.successor_groups(next(system.initial_configs()))
        assert store.flush(system)
        out = _run(capsys, "cache", "info", "--dir", str(populated))
        assert "graph entries       2" in out
        assert "1 stale" in out
        assert "[stale]" in out

    def test_info_on_missing_dir_is_fine(self, tmp_path, capsys):
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path / "nope"))
        assert "result entries      0" in out

    def test_info_and_prune_survive_non_object_json_entry(self, tmp_path, capsys):
        # A key-shaped entry whose JSON parses to a *list* must read as
        # unversioned (stale), not crash the maintenance commands.
        (tmp_path / ("b2" * 16 + ".json")).write_text("[1, 2]")
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "1 stale" in out
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 1 of 1" in out

    def test_info_survives_corrupt_graph_header(self, tmp_path, capsys):
        # A .graph whose header line parses to non-dict JSON (or is
        # binary garbage) must be counted but never described/crash.
        (tmp_path / "evil-aaaa-bbbb-cccc.graph").write_bytes(
            b"repro-graph 1 [1, 2]\njunk")
        (tmp_path / "junk-aaaa-bbbb-cccc.graph").write_bytes(b"\x00\x01")
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "graph entries       2" in out


class TestPrune:
    def test_prune_drops_orphans_and_stale_only(self, populated, capsys):
        # Add one stale-version entry of each kind.
        stale_result = populated / ("0" * 32 + ".json")
        stale_result.write_text(json.dumps(
            {"task_id": "t", "protocol": "p", "engine": "explicit",
             "_code_version": "0ld"}))
        out = _run(capsys, "cache", "prune", "--dir", str(populated))
        assert "removed 3 of 3" in out
        # Fresh entries survive and still serve hits.
        clear_shared_caches()
        report = api.sweep(protocols=("cc85a",), targets=("validity",),
                           cache_dir=str(populated),
                           graph_store=str(populated / "graphs"))
        assert report.cache_hits == 1

    def test_prune_drops_unversioned_results(self, tmp_path, capsys):
        (tmp_path / ("a1" * 16 + ".json")).write_text('{"task_id": "t"}')
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 1 of 1" in out

    def test_non_cache_json_is_never_touched(self, tmp_path, capsys):
        # A saved sweep report (or any other JSON) living in the cache
        # root is not a cache entry: info must not count it, and
        # prune/clear must not delete it.
        report = tmp_path / "report.json"
        report.write_text('{"results": []}')
        out = _run(capsys, "cache", "info", "--dir", str(tmp_path))
        assert "result entries      0" in out
        _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        _run(capsys, "cache", "clear", "--dir", str(tmp_path))
        assert report.exists()

    def test_prune_spares_a_live_writers_temp_file(self, tmp_path, capsys):
        live = tmp_path / "entry.json.77.cc.tmp"
        live.write_text("{")  # fresh mtime: a writer mid-flush
        out = _run(capsys, "cache", "prune", "--dir", str(tmp_path))
        assert "removed 0 of 0" in out
        assert live.exists()


class TestClear:
    def test_clear_removes_everything(self, populated, capsys):
        _run(capsys, "cache", "clear", "--dir", str(populated))
        leftovers = [p for p in populated.rglob("*") if p.is_file()]
        assert leftovers == []
