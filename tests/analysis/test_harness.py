"""Tests for the table/experiment harness."""

import pytest

from repro.errors import CheckError
from repro.harness import (
    REGISTRY,
    format_table,
    paper_row,
    run_experiment,
    table1,
    table3,
)
from repro.harness.paper_data import TABLE_II


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_paper_reference_lookup(self):
        row = paper_row("mmr14")
        assert row.locations == 17 and row.rules == 29
        assert row.termination_time is None  # the CE row
        with pytest.raises(KeyError):
            paper_row("hotstuff")

    def test_reference_table_has_eight_rows(self):
        assert len(TABLE_II) == 8


class TestTables:
    def test_table1_lists_all_mmr14_rules(self):
        text = table1()
        for name in [f"r{i}" for i in range(1, 28)]:
            assert name in text

    def test_table3_matches_paper_formulas(self):
        text = table3()
        assert "A F (EX{D0}) → G (¬EX{E1, D1})" in text
        assert "A ALL{I0} → G (¬EX{E1, D1})" in text
        assert "A F (EX{Nbot}) → G (¬EX{M0, M1})" in text


class TestExperimentRegistry:
    def test_registry_covers_tables_and_figures(self):
        idents = set(REGISTRY)
        for required in ("table1", "table2", "table3", "table4", "fig4", "attack"):
            assert required in idents

    def test_unknown_experiment_rejected(self):
        with pytest.raises(CheckError):
            run_experiment("table9")

    def test_quick_experiments_run(self):
        assert "r21" in run_experiment("table1")
        assert "digraph" in run_experiment("fig4")
        assert "Inv1" in run_experiment("table3") or "(Inv1)" in run_experiment("table3")


class TestCoinCli:
    """The --coin surface of verify/sweep (local paths)."""

    def test_verify_coin_flag_flips_the_verdict(self, capsys):
        from repro.harness.__main__ import main

        assert main(["harness", "verify", "cc85a", "--target", "agreement",
                     "--max-states", "20000", "--json"]) == 0
        import json as _json
        holds = _json.loads(capsys.readouterr().out)
        assert holds["verdict"] == "holds"
        assert "coin" not in holds["task_id"]

        assert main(["harness", "verify", "cc85a", "--target", "agreement",
                     "--coin", "disagreeing:1/8", "--max-states", "20000",
                     "--json"]) == 0
        split = _json.loads(capsys.readouterr().out)
        assert split["verdict"] == "violated"
        assert "coin=disagreeing:1/8" in split["task_id"]

    def test_sweep_coin_axis(self, capsys):
        from repro.harness.__main__ import main

        assert main(["harness", "sweep", "--protocols", "cc85a",
                     "--targets", "agreement", "--coin", "perfect",
                     "--coin", "biased:1/4", "--max-states", "20000",
                     "--json"]) == 0
        import json as _json
        report = _json.loads(capsys.readouterr().out)
        ids = [r["task_id"] for r in report["results"]]
        assert ids == [
            "cc85a[f=1,n=4,t=1]/agreement@explicit",
            "cc85a[f=1,n=4,t=1;coin=biased:1/4]/agreement@explicit",
        ]

    def test_bad_coin_spec_is_a_usage_error(self):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit, match="bad --coin"):
            main(["harness", "verify", "cc85a", "--coin", "weighted:1/4"])

    def test_verify_usage_lists_sorted_registry_names(self, capsys):
        from repro.harness.__main__ import main
        from repro.protocols.registry import names

        with pytest.raises(SystemExit):
            main(["harness", "verify", "--help"])
        flat = " ".join(capsys.readouterr().out.split())
        assert "registry name: " + ", ".join(names()) in flat
