"""Tests for rendering and the Table IV analysis."""

import pytest

from repro.analysis.milestone_table import schema_count_for, table_iv_rows
from repro.analysis.render import ascii_summary, to_dot
from repro.protocols import aby22, mmr14, naive_voting
from repro.spec.properties import PropertyLibrary


class TestAsciiSummary:
    def test_lists_locations_and_rules(self):
        text = ascii_summary(naive_voting.automaton())
        assert "naive-voting" in text
        assert "[I ] I0 value=0" in text
        assert "[F ] D0 value=0 decision" in text
        assert "r3:" in text

    def test_coin_automaton_rendered(self):
        text = ascii_summary(mmr14.model().coin)
        assert "rb" in text and "T0:1/2" in text


class TestDot:
    def test_process_dot_shape_conventions(self):
        dot = to_dot(mmr14.model().process)
        assert '"J0" [shape=diamond];' in dot
        assert '"D0" [shape=doublecircle];' in dot
        assert "style=dashed" in dot  # round switches

    def test_coin_dot_probabilities(self):
        dot = to_dot(mmr14.model().coin)
        assert "p=1/2" in dot

    def test_dot_is_wellformed(self):
        dot = to_dot(naive_voting.automaton(), "Fig3")
        assert dot.startswith('digraph "Fig3"')
        assert dot.rstrip().endswith("}")


class TestTableIV:
    def test_rows_cover_both_formulas(self):
        rows = table_iv_rows(levels=range(3))
        assert len(rows) == 6
        assert {row.formula for row in rows} == {"(CB0)", "(Inv2)"}

    def test_counts_strictly_decrease_with_milestones(self):
        rows = [r for r in table_iv_rows(levels=range(3)) if r.formula == "(CB0)"]
        counts = [r.max_nschemas for r in rows]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1] * 10

    def test_cb0_dominates_inv2(self):
        """Two F-events generate more schemas than one (paper's pattern)."""
        model = aby22.variant(4)
        lib = PropertyLibrary(model)
        _m, cb0 = schema_count_for(model, lib.cb(0))
        _m, inv2 = schema_count_for(model, lib.inv2(0))
        assert cb0 > inv2
