"""Engine adapters: golden equivalence, limits, and custom queries."""

import json
from pathlib import Path

import pytest

from repro import api
from repro.errors import CheckError
from repro.protocols import cc85, mmr14

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "checker" / "data" / "seed_verdicts.json")
    .read_text()
)

#: Protocols whose full bundles are cheap enough for tier-1 (the slow
#: trio is covered by the gated sweep test in test_sweep.py).
FAST_PROTOCOLS = ("cc85a", "cc85b", "fmr05", "ks16", "aby22")


def stable_projection(outcome: api.ObligationOutcome) -> dict:
    return {
        "queries": [
            [q.query, q.verdict, q.states_explored] for q in outcome.queries
        ],
        "sides": dict(outcome.side_conditions),
    }


class TestExplicitEngine:
    @pytest.mark.parametrize("name", FAST_PROTOCOLS)
    def test_matches_seed_verdicts(self, name):
        result = api.verify(name, limits=api.Limits(max_states=150_000))
        assert result.engine == "explicit"
        for outcome in result.obligations:
            assert stable_projection(outcome) == GOLDEN[name][outcome.target]

    def test_state_budget_reports_limit(self):
        result = api.verify("cc85b", target="agreement",
                            limits=api.Limits(max_states=100))
        outcome = result.outcome("agreement")
        assert outcome.verdict == "unknown"
        assert outcome.limit_tripped == "max_states"

    def test_wall_clock_reports_limit(self):
        # A deadline already in the past trips at the first periodic
        # check; cc85b agreement explores far more than the check stride.
        result = api.verify("cc85b", target="agreement",
                            limits=api.Limits(max_seconds=0.0))
        outcome = result.outcome("agreement")
        assert outcome.verdict == "unknown"
        assert outcome.limit_tripped == "max_seconds"

    def test_wall_clock_covers_side_conditions(self):
        # Once the bundle deadline expires, side conditions are skipped
        # (distinguishable from genuine failure) instead of launching
        # more exploration; the verdict degrades to unknown.
        result = api.verify("cc85b", target="agreement",
                            limits=api.Limits(max_seconds=0.0))
        outcome = result.outcome("agreement")
        assert outcome.side_conditions == {}
        assert outcome.skipped_side_conditions == {
            "non_blocking": "max_seconds",
            "fair_termination": "max_seconds",
        }
        assert outcome.verdict == "unknown"
        assert "max_seconds" in outcome.limits_tripped

    def test_state_budget_covers_side_conditions(self):
        # An overflowing max_states must not report a side condition as
        # established — the incomplete search is recorded as skipped.
        result = api.verify("cc85a", target="validity",
                            limits=api.Limits(max_states=10))
        outcome = result.outcome("validity")
        assert outcome.skipped_side_conditions == {
            "non_blocking": "max_states",
            "fair_termination": "max_states",
        }
        assert outcome.verdict == "unknown"

    def test_custom_query_on_custom_model(self):
        from repro.spec.properties import PropertyLibrary

        model = mmr14.refined_model()
        result = api.verify(
            model=model,
            valuation={"n": 4, "t": 1, "f": 1},
            queries=(PropertyLibrary(model).cb(2),),
        )
        (query,) = result.queries
        assert query.verdict == "violated"
        assert query.counterexample is not None
        assert result.outcome("custom").verdict == "violated"

    def test_custom_model_needs_valuation(self):
        with pytest.raises(CheckError):
            api.verify(model=cc85.model_a(), target="validity")


class TestParameterizedEngine:
    def test_safety_holds_parametrically(self):
        result = api.verify("cc85a", targets=("validity",),
                            engine="parameterized")
        outcome = result.outcome("validity")
        assert outcome.verdict == "holds"
        assert outcome.nschemas > 0
        assert result.valuation == {}  # quantifies over all valuations

    def test_game_queries_reported_unknown(self):
        # Category B termination is all E-queries: explicit-only.
        result = api.verify("cc85a", target="termination",
                            engine="parameterized")
        outcome = result.outcome("termination")
        assert outcome.verdict == "unknown"
        assert all(q.verdict == "unknown" for q in outcome.queries)
        assert all("explicit engine" in q.detail for q in outcome.queries)

    def test_node_budget_reports_limit(self):
        result = api.verify("cc85a", targets=("agreement",),
                            engine="parameterized",
                            limits=api.Limits(max_nodes=10))
        outcome = result.outcome("agreement")
        assert outcome.verdict == "unknown"
        assert outcome.limit_tripped == "max_nodes"

    def test_wall_clock_reports_limit(self):
        # cc85a's inv1 DFS needs ~27k nodes, far beyond the wall-clock
        # check stride, so a zero budget trips deterministically.
        result = api.verify("cc85a", targets=("agreement",),
                            engine="parameterized",
                            limits=api.Limits(max_seconds=0.0))
        outcome = result.outcome("agreement")
        assert outcome.verdict == "unknown"
        assert outcome.limit_tripped == "max_seconds"

    def test_parameterized_witness_replayed(self):
        from repro.spec.properties import PropertyLibrary

        model = mmr14.refined_model()
        result = api.verify(model=model, engine="parameterized",
                            queries=(PropertyLibrary(model).cb(2),))
        (query,) = result.queries
        assert query.verdict == "violated"
        valuation = query.counterexample.valuation
        assert valuation["n"] > valuation["t"]


class TestEngineRegistry:
    def test_builtins_registered(self):
        assert set(api.engine_names()) >= {"explicit", "parameterized"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(CheckError):
            api.engine_for("quantum")

    def test_register_custom_engine(self):
        class EchoEngine:
            name = "echo"

            def run(self, task):
                return api.TaskResult(
                    task_id=task.task_id,
                    protocol=task.protocol_name,
                    engine="echo",
                )

        api.register_engine("echo", EchoEngine)
        try:
            result = api.verify("mmr14", target="validity", engine="echo")
            assert result.engine == "echo"
            assert result.task_id.endswith("@echo")
        finally:
            del api.ENGINES["echo"]


class TestTaskShape:
    def test_task_requires_exactly_one_source(self):
        with pytest.raises(CheckError):
            api.VerificationTask()
        with pytest.raises(CheckError):
            api.VerificationTask(protocol="mmr14", model=mmr14.model)

    def test_unknown_target_rejected(self):
        with pytest.raises(CheckError):
            api.VerificationTask(protocol="mmr14", targets=("liveness",))

    def test_defaults_to_all_targets(self):
        task = api.VerificationTask(protocol="mmr14")
        assert task.targets == api.TARGETS

    def test_task_id_is_deterministic(self):
        a = api.VerificationTask(protocol="mmr14", targets=("validity",))
        b = api.VerificationTask(protocol="mmr14", targets=("validity",))
        assert a.task_id == b.task_id == "mmr14[f=1,n=4,t=1]/validity@explicit"

    def test_termination_uses_refined_model(self):
        task = api.VerificationTask(protocol="mmr14")
        assert task.model_for_target("termination").name != \
            task.model_for_target("agreement").name
