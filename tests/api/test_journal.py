"""RunJournal: crash-tolerant sweep resume bookkeeping."""

import json

from repro import api
from repro.api.journal import JournalRecord, RunJournal, sweep_digest


def _record(index, verdict="holds", error=None, attempts=1):
    return JournalRecord(
        index=index,
        key=f"task-{index}",
        result={"task_id": f"task-{index}", "verdict": verdict,
                **({"error": error} if error else {})},
        attempts=attempts,
    )


def _write_some(path, records, digest="d1", version="v1"):
    journal = RunJournal(path, digest=digest, version=version)
    journal.load(resume=False)
    for record in records:
        journal.append(record)
    journal.close()


class TestRoundTrip:
    def test_appended_records_replay_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0), _record(2, attempts=3)])
        replay = RunJournal(path, digest="d1", version="v1").load(resume=True)
        assert set(replay) == {0, 2}
        assert replay[0].result["verdict"] == "holds"
        assert replay[2].attempts == 3
        assert replay[2].key == "task-2"

    def test_load_without_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0)])
        journal = RunJournal(path, digest="d1", version="v1")
        assert journal.load(resume=False) == {}
        journal.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1  # header only; old records gone
        assert json.loads(lines[0])["magic"] == "repro-sweep-journal"

    def test_error_records_are_not_replayable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0), _record(1, verdict="error",
                                               error="OSError: disk")])
        replay = RunJournal(path, digest="d1", version="v1").load(resume=True)
        assert set(replay) == {0}  # the error task re-executes

    def test_duplicate_index_resolves_last_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0, verdict="unknown"),
                           _record(0, verdict="holds", attempts=2)])
        replay = RunJournal(path, digest="d1", version="v1").load(resume=True)
        assert replay[0].result["verdict"] == "holds"
        assert replay[0].attempts == 2


class TestCrashTolerance:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0)])
        with open(path, "a") as handle:
            handle.write('{"index": 1, "key": "task-1", "resu')  # died here
        replay = RunJournal(path, digest="d1", version="v1").load(resume=True)
        assert set(replay) == {0}

    def test_garbage_file_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("not a journal at all\n")
        journal = RunJournal(path, digest="d1", version="v1")
        assert journal.load(resume=True) == {}
        journal.append(_record(0))
        journal.close()
        # ... and it was rewritten as a fresh, valid journal.
        assert RunJournal(path, digest="d1", version="v1") \
            .load(resume=True).keys() == {0}

    def test_unwritable_path_degrades_to_noop(self, tmp_path):
        journal = RunJournal(tmp_path, digest="d1", version="v1")  # a dir!
        assert journal.load(resume=False) == {}
        journal.append(_record(0))  # must not raise
        journal.close()


class TestHeaderGuards:
    def test_digest_mismatch_discards_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0)], digest="sweep-A")
        replay = RunJournal(path, digest="sweep-B",
                            version="v1").load(resume=True)
        assert replay == {}  # a different sweep must not inherit results

    def test_version_mismatch_discards_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_some(path, [_record(0)], version="v1")
        replay = RunJournal(path, digest="d1",
                            version="v2").load(resume=True)
        assert replay == {}


class TestSweepDigest:
    TASKS = [
        api.VerificationTask(protocol="ks16", targets=("validity",)),
        api.VerificationTask(protocol="cc85a", targets=("validity",)),
    ]

    def test_same_sweep_same_digest(self):
        assert sweep_digest(self.TASKS, "v1") == sweep_digest(self.TASKS, "v1")

    def test_task_list_order_and_membership_matter(self):
        reordered = list(reversed(self.TASKS))
        assert sweep_digest(self.TASKS, "v1") != sweep_digest(reordered, "v1")
        assert sweep_digest(self.TASKS, "v1") != \
            sweep_digest(self.TASKS[:1], "v1")

    def test_limits_and_version_matter(self):
        budgeted = [
            api.VerificationTask(protocol="ks16", targets=("validity",),
                                 limits=api.Limits(max_states=100)),
            self.TASKS[1],
        ]
        assert sweep_digest(self.TASKS, "v1") != sweep_digest(budgeted, "v1")
        assert sweep_digest(self.TASKS, "v1") != sweep_digest(self.TASKS, "v2")
